//! CSV reading and writing.
//!
//! The paper's experiments run on real datasets (MLB pitching
//! statistics, KDD Cup 1999); a user adopting this library brings their
//! own data the same way. This module reads RFC-4180-style CSV into a
//! [`Table`] with per-column type inference (`Int → Float → Bool →
//! Str`, narrowest type that fits every field) and writes tables back
//! out, so populations round-trip through files.
//!
//! Supported: quoted fields with `""` escapes, embedded delimiters and
//! newlines inside quotes, a configurable delimiter, CRLF input, lone
//! CR as a record terminator (classic-Mac files; a stray CR mid-line
//! splits the record instead of silently gluing fields), and blank
//! lines (skipped). Deliberately not supported (columns are dense,
//! §`column`): nullable fields — an empty field forces its column to
//! `Str`.

use crate::column::Column;
use crate::error::{TableError, TableResult};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::DataType;
use std::sync::Arc;

/// CSV reading options.
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header of column names (default
    /// true; without a header, columns are named `c0`, `c1`, …).
    pub has_header: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            has_header: true,
        }
    }
}

/// Parse CSV text into a [`Table`] with inferred column types.
///
/// # Errors
///
/// Returns an error for empty input, ragged records, unterminated
/// quotes, or duplicate header names.
///
/// # Examples
///
/// ```
/// use lts_table::csv::{read_csv_str, CsvOptions};
/// let t = read_csv_str("x,y,tag\n1,2.5,a\n2,3.5,b\n", CsvOptions::default()).unwrap();
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.floats("y").unwrap(), &[2.5, 3.5]);
/// ```
pub fn read_csv_str(input: &str, options: CsvOptions) -> TableResult<Table> {
    let records = parse_records(input, options.delimiter)?;
    if records.is_empty() {
        return Err(TableError::Empty);
    }
    let (header, data) = if options.has_header {
        let mut it = records.into_iter();
        let header = it.next().expect("nonempty");
        (header, it.collect::<Vec<_>>())
    } else {
        let width = records[0].len();
        let names: Vec<String> = (0..width).map(|i| format!("c{i}")).collect();
        (names, records)
    };

    let width = header.len();
    for (i, rec) in data.iter().enumerate() {
        if rec.len() != width {
            return Err(TableError::LengthMismatch {
                expected: width,
                found: rec.len(),
            });
        }
        let _ = i;
    }

    let mut columns = Vec::with_capacity(width);
    let mut fields = Vec::with_capacity(width);
    for (c, name) in header.iter().enumerate() {
        let raw: Vec<&str> = data.iter().map(|rec| rec[c].as_str()).collect();
        let (dt, column) = infer_column(&raw);
        fields.push(Field::new(name.clone(), dt));
        columns.push(column);
    }
    Table::new(Schema::new(fields)?, columns)
}

/// Read a CSV file into a [`Table`].
///
/// # Errors
///
/// Same as [`read_csv_str`], plus I/O failures (surfaced as
/// [`TableError::InvalidExpression`] with the OS message — the table
/// engine has no dedicated I/O error variant and CSV is its only I/O).
pub fn read_csv_path(path: impl AsRef<std::path::Path>, options: CsvOptions) -> TableResult<Table> {
    let text =
        std::fs::read_to_string(path.as_ref()).map_err(|e| TableError::InvalidExpression {
            message: format!("reading {}: {e}", path.as_ref().display()),
        })?;
    read_csv_str(&text, options)
}

/// Serialize a table as CSV (header + one record per row), quoting
/// fields only when needed.
pub fn write_csv_string(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<&str> = table
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_field(&mut out, n);
    }
    out.push('\n');
    for row in 0..table.len() {
        for (c, _) in names.iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            let v = table
                .column(c)
                .and_then(|col| col.get(row))
                .expect("in-range row/col");
            match v {
                crate::value::Value::Float(x) => out.push_str(&format!("{x:?}")),
                crate::value::Value::Str(s) => push_field(&mut out, &s),
                other => out.push_str(&other.to_string()),
            }
        }
        out.push('\n');
    }
    out
}

fn push_field(out: &mut String, field: &str) {
    let needs_quotes = field
        .chars()
        .any(|c| c == ',' || c == '"' || c == '\n' || c == '\r');
    if needs_quotes {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Split input into records of fields, honoring quotes.
fn parse_records(input: &str, delimiter: char) -> TableResult<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    let mut quote_start = 0usize;
    let mut pos = 0usize;

    while let Some(ch) = chars.next() {
        let at = pos;
        pos += ch.len_utf8();
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        field.push('"');
                        chars.next();
                        pos += 1;
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match ch {
            '"' if field.is_empty() => {
                in_quotes = true;
                quote_start = at;
                any = true;
            }
            c if c == delimiter => {
                record.push(std::mem::take(&mut field));
                any = true;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    // CRLF: swallow the CR; the LF ends the record.
                } else {
                    // A lone CR (classic-Mac line ending or a stray
                    // CR mid-line) terminates the record. Swallowing
                    // it silently — the old behavior — glued the
                    // surrounding fields together: `a\rb` parsed as
                    // `ab` with no error.
                    if any || !field.is_empty() || !record.is_empty() {
                        record.push(std::mem::take(&mut field));
                        records.push(std::mem::take(&mut record));
                        any = false;
                    }
                }
            }
            '\n' => {
                if any || !field.is_empty() || !record.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    any = false;
                }
            }
            other => {
                field.push(other);
                any = true;
            }
        }
    }
    if in_quotes {
        return Err(TableError::Parse {
            position: quote_start,
            message: "unterminated quoted field".into(),
        });
    }
    if any || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Infer the narrowest dense type that fits every raw field, and build
/// the column.
fn infer_column(raw: &[&str]) -> (DataType, Column) {
    if !raw.is_empty() && raw.iter().all(|s| s.parse::<i64>().is_ok()) {
        return (
            DataType::Int,
            Column::Int(raw.iter().map(|s| s.parse().expect("checked")).collect()),
        );
    }
    if !raw.is_empty()
        && raw
            .iter()
            .all(|s| !s.is_empty() && s.parse::<f64>().is_ok())
    {
        return (
            DataType::Float,
            Column::Float(raw.iter().map(|s| s.parse().expect("checked")).collect()),
        );
    }
    let as_bool = |s: &str| -> Option<bool> {
        if s.eq_ignore_ascii_case("true") {
            Some(true)
        } else if s.eq_ignore_ascii_case("false") {
            Some(false)
        } else {
            None
        }
    };
    if !raw.is_empty() && raw.iter().all(|s| as_bool(s).is_some()) {
        return (
            DataType::Bool,
            Column::Bool(raw.iter().map(|s| as_bool(s).expect("checked")).collect()),
        );
    }
    (
        DataType::Str,
        Column::Str(raw.iter().map(|&s| Arc::<str>::from(s)).collect()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn reads_typed_columns() {
        let t = read_csv_str(
            "id,score,ok,name\n1,2.5,true,alice\n2,3.0,false,bob\n",
            CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().fields()[0].data_type, DataType::Int);
        assert_eq!(t.schema().fields()[1].data_type, DataType::Float);
        assert_eq!(t.schema().fields()[2].data_type, DataType::Bool);
        assert_eq!(t.schema().fields()[3].data_type, DataType::Str);
        assert_eq!(t.floats("score").unwrap(), &[2.5, 3.0]);
    }

    #[test]
    fn integers_widen_to_float_when_mixed() {
        let t = read_csv_str("x\n1\n2.5\n", CsvOptions::default()).unwrap();
        assert_eq!(t.schema().fields()[0].data_type, DataType::Float);
        assert_eq!(t.floats("x").unwrap(), &[1.0, 2.5]);
    }

    #[test]
    fn quoted_fields_with_escapes_and_newlines() {
        let t = read_csv_str(
            "a,b\n\"x,\"\"y\"\"\",\"line1\nline2\"\nplain,second\n",
            CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        let col = t.column_by_name("a").unwrap();
        assert_eq!(col.get(0).unwrap(), Value::str("x,\"y\""));
        let col = t.column_by_name("b").unwrap();
        assert_eq!(col.get(0).unwrap(), Value::str("line1\nline2"));
    }

    #[test]
    fn crlf_and_missing_trailing_newline() {
        let t = read_csv_str("x,y\r\n1,2\r\n3,4", CsvOptions::default()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.column_by_name("y").unwrap().as_ints().unwrap(), &[2, 4]);
    }

    #[test]
    fn headerless_and_custom_delimiter() {
        let t = read_csv_str(
            "1;2\n3;4\n",
            CsvOptions {
                delimiter: ';',
                has_header: false,
            },
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.column_by_name("c0").unwrap().as_ints().unwrap(), &[1, 3]);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = read_csv_str("x\n1\n\n2\n", CsvOptions::default()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().fields()[0].data_type, DataType::Int);
    }

    #[test]
    fn empty_field_forces_string_column() {
        let t = read_csv_str("x,y\n1,\n2,3\n", CsvOptions::default()).unwrap();
        assert_eq!(t.schema().fields()[0].data_type, DataType::Int);
        assert_eq!(t.schema().fields()[1].data_type, DataType::Str);
        assert_eq!(
            t.column_by_name("y").unwrap().get(0).unwrap(),
            Value::str("")
        );
    }

    #[test]
    fn trailing_crlf_adds_no_phantom_record() {
        // File ends in CRLF; a trailing CRLF-only "line" is skipped.
        let t = read_csv_str("x,y\r\n1,2\r\n", CsvOptions::default()).unwrap();
        assert_eq!(t.len(), 1);
        let t = read_csv_str("x,y\r\n1,2\r\n\r\n", CsvOptions::default()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.column_by_name("y").unwrap().as_ints().unwrap(), &[2]);
    }

    #[test]
    fn blank_line_only_input_is_empty_not_a_panic() {
        for input in ["\n", "\n\n\n", "\r\n\r\n", "\r", "\r\r"] {
            assert!(
                matches!(
                    read_csv_str(input, CsvOptions::default()),
                    Err(TableError::Empty)
                ),
                "input {input:?} must parse as empty"
            );
        }
    }

    #[test]
    fn lone_quote_at_eof_is_a_parse_error_not_a_panic() {
        for input in ["x\n\"", "x\n1\n\"", "\"", "a,b\n1,\"unclosed"] {
            let got = read_csv_str(input, CsvOptions::default());
            assert!(
                matches!(got, Err(TableError::Parse { .. })),
                "input {input:?}: expected parse error, got {got:?}"
            );
        }
        // A *closed* quote at EOF is a field, not an error (it then
        // fails loudly on record width, not silently).
        assert!(matches!(
            read_csv_str("a,b\n\"\"", CsvOptions::default()),
            Err(TableError::LengthMismatch {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn delimiter_in_unquoted_last_field_errors_loudly() {
        // `1,x,y` under an `a,b` header is a ragged record — a typed
        // error, never a silent drop or merge of the extra field.
        assert!(matches!(
            read_csv_str("a,b\n1,x,y\n", CsvOptions::default()),
            Err(TableError::LengthMismatch {
                expected: 2,
                found: 3
            })
        ));
        // Quoting the delimiter keeps it in the field.
        let t = read_csv_str("a,b\n1,\"x,y\"\n", CsvOptions::default()).unwrap();
        assert_eq!(
            t.column_by_name("b").unwrap().get(0).unwrap(),
            Value::str("x,y")
        );
    }

    #[test]
    fn lone_cr_terminates_the_record() {
        // Classic-Mac line endings parse as records…
        let t = read_csv_str("x\r1\r2\r", CsvOptions::default()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.column_by_name("x").unwrap().as_ints().unwrap(), &[1, 2]);
        // …and a stray CR mid-line splits the record (surfacing as a
        // ragged-record error) instead of silently gluing `1` and `2`
        // into `12`.
        assert!(matches!(
            read_csv_str("a,b\n1\r2,3\n", CsvOptions::default()),
            Err(TableError::LengthMismatch { .. })
        ));
        // Quoted CRs are data, not terminators.
        let t = read_csv_str("a\n\"line1\rline2\"\n", CsvOptions::default()).unwrap();
        assert_eq!(
            t.column_by_name("a").unwrap().get(0).unwrap(),
            Value::str("line1\rline2")
        );
    }

    #[test]
    fn errors_are_typed() {
        assert!(matches!(
            read_csv_str("", CsvOptions::default()),
            Err(TableError::Empty)
        ));
        assert!(matches!(
            read_csv_str("a,b\n1\n", CsvOptions::default()),
            Err(TableError::LengthMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(matches!(
            read_csv_str("a\n\"unterminated\n", CsvOptions::default()),
            Err(TableError::Parse { .. })
        ));
        assert!(read_csv_path("/nonexistent/file.csv", CsvOptions::default()).is_err());
    }

    #[test]
    fn round_trip_preserves_values() {
        let src = "i,f,s\n-3,0.125,hello\n7,2.5,\"wor,ld\"\n";
        let t = read_csv_str(src, CsvOptions::default()).unwrap();
        let text = write_csv_string(&t);
        let t2 = read_csv_str(&text, CsvOptions::default()).unwrap();
        assert_eq!(t.len(), t2.len());
        for c in 0..2 {
            for r in 0..t.len() {
                assert_eq!(
                    t.column(c).unwrap().get(r).unwrap(),
                    t2.column(c).unwrap().get(r).unwrap()
                );
            }
        }
    }
}
