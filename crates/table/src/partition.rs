//! Partitioned tables and the parallel scan executor.
//!
//! Every scan in this workspace used to be one serial pass over one
//! monolithic [`Table`]. This module splits a table into `N` contiguous
//! row-range **partitions** — zero-copy: partitions share the table's
//! column storage through an [`Arc`] and each holds only a row range —
//! and drives the vectorized kernels of [`crate::vector`] over the
//! partitions in parallel (via the vendored rayon shim). It is the
//! substrate for partition-parallel predicate evaluation (the
//! `eval_batch` of [`crate::query::ExprPredicate`],
//! [`crate::query::CountQuery::exact_count`]) and for partition-aligned
//! stratification in `lts_strata`.
//!
//! # Determinism contract
//!
//! A partitioned scan is **bit-identical** to the single-partition
//! serial scan, for every partition count and every thread count:
//!
//! * each row's value/NULL/error is computed by the same per-row-pure
//!   kernels regardless of which partition evaluates it;
//! * per-partition results are merged back **in partition order**, so
//!   the concatenated output equals the serial output element for
//!   element, and the error surfaced by a boolean collapse is the first
//!   failing row *in row order* — exactly the serial semantics;
//! * nothing here consumes randomness, so estimators built on top
//!   produce per-seed bit-identical estimates at any partition/thread
//!   count (the same guarantee the parallel trial runner established).
//!
//! The contract is enforced by property tests over random schemas,
//! expressions, and partition counts (`tests/vector_agreement.rs`) and
//! by a CI step diffing `BENCH_partitioned_scan.json` estimate fields
//! between `RAYON_NUM_THREADS=1` and default-thread runs.

use crate::error::{TableError, TableResult};
use crate::expr::Expr;
use crate::table::Table;
use crate::vector::{eval_bool_columnar, eval_columnar_sel, Batch, RowSel};
use rayon::prelude::*;
use std::ops::Range;
use std::sync::Arc;

/// Below this many rows per chunk, a cheap (subquery-free) expression
/// scan is not worth a worker thread.
pub const MIN_PARTITION_ROWS: usize = 4096;

/// Contiguous row-range bounds for an `n_rows` table split into
/// `n_partitions` near-equal parts: `bounds[p]..bounds[p + 1]` is
/// partition `p`, `bounds[0] == 0`, `bounds[n_partitions] == n_rows`.
/// Sizes differ by at most one row; the split depends only on
/// `(n_rows, n_partitions)`, never on thread count.
pub fn partition_bounds(n_rows: usize, n_partitions: usize) -> Vec<usize> {
    let parts = n_partitions.max(1);
    (0..=parts)
        .map(|p| ((p as u128 * n_rows as u128) / parts as u128) as usize)
        .collect()
}

/// A [`Table`] split into contiguous row-range partitions that share
/// the table's column storage (`Arc`, zero-copy).
///
/// Carries a **version stamp**: a monotone counter owners bump whenever
/// they swap or mutate the backing data. Derived artifacts (fitted
/// proxy models, sampling designs, cached estimates — see the serving
/// layer in `lts-serve`) record the version they were built against and
/// treat a mismatch as a cache invalidation signal. The stamp is pure
/// metadata; it never affects scan results.
#[derive(Debug, Clone)]
pub struct PartitionedTable {
    table: Arc<Table>,
    bounds: Vec<usize>,
    version: u64,
}

impl PartitionedTable {
    /// Split `table` into `n_partitions` near-equal row ranges
    /// (clamped to at least 1; empty tables get one empty partition).
    pub fn new(table: Arc<Table>, n_partitions: usize) -> Self {
        let bounds = partition_bounds(table.len(), n_partitions);
        Self {
            table,
            bounds,
            version: 0,
        }
    }

    /// Split `table` by a machine-derived heuristic: one partition per
    /// worker thread, but never fewer than [`MIN_PARTITION_ROWS`] rows
    /// per partition. **Note:** the partition count (and therefore any
    /// per-partition artifact layout) depends on the host; for
    /// bit-reproducible artifacts across hosts, fix the count with
    /// [`PartitionedTable::new`] (scan *results* are identical either
    /// way — see the module's determinism contract).
    pub fn auto(table: Arc<Table>) -> Self {
        let parts = (table.len() / MIN_PARTITION_ROWS).clamp(1, rayon::current_num_threads());
        Self::new(table, parts)
    }

    /// Build from explicit bounds (`bounds[0] == 0`, ascending, last
    /// element `== table.len()`).
    ///
    /// # Errors
    ///
    /// Returns an error when the bounds are not a monotone cover of
    /// `0..table.len()`.
    pub fn from_bounds(table: Arc<Table>, bounds: Vec<usize>) -> TableResult<Self> {
        let ok = bounds.len() >= 2
            && bounds[0] == 0
            && *bounds.last().expect("len >= 2") == table.len()
            && bounds.windows(2).all(|w| w[0] <= w[1]);
        if !ok {
            return Err(TableError::InvalidExpression {
                message: format!(
                    "partition bounds {bounds:?} do not cover 0..{}",
                    table.len()
                ),
            });
        }
        Ok(Self {
            table,
            bounds,
            version: 0,
        })
    }

    /// The shared underlying table.
    pub fn table(&self) -> &Arc<Table> {
        &self.table
    }

    /// The version stamp of the backing data (0 for a fresh split).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Set the version stamp (builder style).
    #[must_use]
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// Replace the backing table and bump the version stamp, preserving
    /// the partition count. Callers holding artifacts derived from the
    /// previous version must discard them (the serving layer's model
    /// and result caches key on this stamp).
    pub fn replace_table(&mut self, table: Arc<Table>) {
        let parts = self.n_partitions();
        self.bounds = partition_bounds(table.len(), parts);
        self.table = table;
        self.version += 1;
    }

    /// Bump the version stamp in place (e.g. after external mutation of
    /// the data the columns were derived from).
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The partition bounds (`n_partitions() + 1` entries).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Row range of partition `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p >= n_partitions()`.
    pub fn range(&self, p: usize) -> Range<usize> {
        self.bounds[p]..self.bounds[p + 1]
    }

    /// Total rows across all partitions (= the table's length).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the underlying table has no rows.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Evaluate `expr` over every partition in parallel, returning one
    /// [`Batch`] per partition, in partition order. Row `k` of
    /// partition `p` is table row `self.range(p).start + k`.
    ///
    /// Each partition scan borrows its column sub-slices zero-copy
    /// ([`RowSel::Range`]) and runs the same branch-free kernels as a
    /// whole-table scan.
    pub fn par_eval_batches(&self, expr: &Expr) -> Vec<Batch<'_>> {
        let table: &Table = &self.table;
        (0..self.n_partitions())
            .into_par_iter()
            .map(|p| {
                let r = self.range(p);
                eval_columnar_sel(
                    expr,
                    table,
                    RowSel::Range {
                        start: r.start,
                        end: r.end,
                    },
                )
            })
            .collect()
    }

    /// Evaluate `expr` as a predicate over the whole table via the
    /// parallel partition scan: the concatenated labels are
    /// element-identical to
    /// [`eval_bool_columnar`]`(expr, table, None)`.
    ///
    /// # Errors
    ///
    /// Returns the first failing row's error, in row order (partitions
    /// are merged in order, so this matches the serial scan exactly).
    pub fn par_eval_bool(&self, expr: &Expr) -> TableResult<Vec<bool>> {
        let mut out = Vec::with_capacity(self.len());
        for batch in self.par_eval_batches(expr) {
            out.extend(batch.truthy()?);
        }
        Ok(out)
    }

    /// Count the rows satisfying `expr`, scanning partitions in
    /// parallel. Identical (value and error) to counting the serial
    /// scan's labels.
    ///
    /// # Errors
    ///
    /// Returns the first failing row's error, in row order.
    pub fn par_count(&self, expr: &Expr) -> TableResult<usize> {
        let mut total = 0usize;
        for batch in self.par_eval_batches(expr) {
            total += batch.truthy()?.into_iter().filter(|&l| l).count();
        }
        Ok(total)
    }
}

/// Does the expression contain a correlated aggregate subquery
/// anywhere? Subquery rows cost a full inner-table scan each, so even
/// small batches are worth parallelizing.
fn has_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Subquery(_) => true,
        Expr::Literal(_) | Expr::Column(_) | Expr::Outer(_) => false,
        Expr::Unary(_, e) => has_subquery(e),
        Expr::Binary(_, l, r) => has_subquery(l) || has_subquery(r),
        Expr::Call(_, args) => args.iter().any(has_subquery),
    }
}

/// `Some(start..end)` when `ids` is exactly the contiguous ascending
/// run `start, start+1, …, end-1`. Runs whose end would overflow
/// `usize` (only possible with out-of-range ids) are not runs.
fn contiguous_run(ids: &[usize]) -> Option<Range<usize>> {
    let &first = ids.first()?;
    let end = first.checked_add(ids.len())?;
    for (k, &i) in ids.iter().enumerate() {
        if i != first + k {
            return None;
        }
    }
    Some(first..end)
}

/// Evaluate `expr` as a predicate over the listed row ids with
/// partition-parallel chunking: the id list is split into contiguous
/// chunks, each chunk is evaluated by a worker (contiguous ascending
/// runs — e.g. a full-population scan — take the zero-copy
/// [`RowSel::Range`] path), and results are merged back in chunk
/// order. Element- and error-identical to
/// [`eval_bool_columnar`]`(expr, table, Some(idxs))` for every thread
/// count.
///
/// # Errors
///
/// Returns the first failing row's error, in id order.
pub fn par_eval_bool_ids(expr: &Expr, table: &Table, idxs: &[usize]) -> TableResult<Vec<bool>> {
    let threads = rayon::current_num_threads();
    // Subquery-free expressions are cheap per row: only chunk when
    // every worker gets a full quantum. Subquery rows are each a full
    // inner scan, so tiny batches already amortize a thread.
    let min_chunk = if has_subquery(expr) {
        8
    } else {
        MIN_PARTITION_ROWS
    };
    let n_chunks = threads.min(idxs.len() / min_chunk);
    if threads <= 1 || n_chunks <= 1 {
        return eval_bool_columnar(expr, table, Some(idxs));
    }
    let bounds = partition_bounds(idxs.len(), n_chunks);
    let chunks: Vec<&[usize]> = bounds.windows(2).map(|w| &idxs[w[0]..w[1]]).collect();
    let results: Vec<TableResult<Vec<bool>>> = chunks
        .into_par_iter()
        .map(|chunk| {
            let sel = match contiguous_run(chunk) {
                Some(r) => RowSel::Range {
                    start: r.start,
                    end: r.end,
                },
                None => RowSel::Ids(chunk),
            };
            eval_columnar_sel(expr, table, sel).truthy()
        })
        .collect();
    let mut out = Vec::with_capacity(idxs.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::table_of_floats;
    use crate::value::Value;

    fn t(n: usize) -> Arc<Table> {
        let xs: Vec<f64> = (0..n).map(|i| (i % 101) as f64 / 101.0).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i % 53) as f64 / 53.0).collect();
        Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap())
    }

    #[test]
    fn version_stamp_tracks_replacements() {
        let mut pt = PartitionedTable::new(t(100), 4);
        assert_eq!(pt.version(), 0);
        let stamped = pt.clone().with_version(7);
        assert_eq!(stamped.version(), 7);
        pt.bump_version();
        assert_eq!(pt.version(), 1);
        // Swapping the backing table bumps the stamp and re-derives the
        // bounds for the new length at the same partition count.
        pt.replace_table(t(60));
        assert_eq!(pt.version(), 2);
        assert_eq!(pt.n_partitions(), 4);
        assert_eq!(*pt.bounds().last().unwrap(), 60);
        // The stamp is metadata only: scan results are unaffected.
        let expr = Expr::col("x").lt(Expr::lit(0.5));
        assert_eq!(
            pt.par_count(&expr).unwrap(),
            PartitionedTable::new(Arc::clone(pt.table()), 4)
                .par_count(&expr)
                .unwrap()
        );
    }

    #[test]
    fn bounds_cover_and_balance() {
        assert_eq!(partition_bounds(10, 3), vec![0, 3, 6, 10]);
        assert_eq!(partition_bounds(4, 4), vec![0, 1, 2, 3, 4]);
        assert_eq!(partition_bounds(0, 2), vec![0, 0, 0]);
        assert_eq!(partition_bounds(5, 1), vec![0, 5]);
        // Clamped: zero partitions behaves as one.
        assert_eq!(partition_bounds(5, 0), vec![0, 5]);
        // Near-equal: sizes differ by at most 1.
        let b = partition_bounds(1000, 7);
        let sizes: Vec<usize> = b.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partitioned_scan_matches_serial_for_all_counts() {
        let table = t(997); // deliberately not a multiple of anything
        let e = Expr::col("x")
            .gt(Expr::lit(0.25))
            .and(Expr::col("y").le(Expr::lit(0.75)));
        let serial = eval_bool_columnar(&e, &table, None).unwrap();
        for parts in [1, 2, 3, 4, 7, 16, 997, 2000] {
            let pt = PartitionedTable::new(Arc::clone(&table), parts);
            assert_eq!(pt.par_eval_bool(&e).unwrap(), serial, "parts={parts}");
            assert_eq!(
                pt.par_count(&e).unwrap(),
                serial.iter().filter(|&&l| l).count()
            );
        }
    }

    #[test]
    fn batches_expose_partition_local_rows() {
        let table = t(100);
        let pt = PartitionedTable::new(Arc::clone(&table), 3);
        assert_eq!(pt.n_partitions(), 3);
        let e = Expr::col("x").mul(Expr::lit(2.0));
        let batches = pt.par_eval_batches(&e);
        assert_eq!(batches.len(), 3);
        for (p, b) in batches.iter().enumerate() {
            let r = pt.range(p);
            assert_eq!(b.len(), r.len());
            for k in 0..b.len() {
                let want = table.floats("x").unwrap()[r.start + k] * 2.0;
                assert_eq!(b.value_at(k).unwrap(), Value::Float(want));
            }
        }
    }

    #[test]
    fn error_surfaces_first_in_row_order() {
        // NaN comparison errors on specific rows; the partitioned scan
        // must surface the same first error as the serial scan.
        let xs = [1.0, f64::NAN, 3.0, f64::NAN, 5.0];
        let table = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
        let e = Expr::col("x").lt(Expr::lit(2.0));
        let serial = eval_bool_columnar(&e, &table, None);
        for parts in [1, 2, 5] {
            let pt = PartitionedTable::new(Arc::clone(&table), parts);
            assert_eq!(pt.par_eval_bool(&e), serial, "parts={parts}");
            assert_eq!(pt.par_count(&e).unwrap_err(), serial.clone().unwrap_err());
        }
    }

    #[test]
    fn par_eval_bool_ids_matches_serial() {
        let table = t(20_000);
        let e = Expr::col("x").gt(Expr::lit(0.5));
        // Full-population contiguous scan (the exact_count shape).
        let all: Vec<usize> = (0..table.len()).collect();
        assert_eq!(
            par_eval_bool_ids(&e, &table, &all).unwrap(),
            eval_bool_columnar(&e, &table, Some(&all)).unwrap()
        );
        // Scattered ids with duplicates and an out-of-range id.
        let mut ids: Vec<usize> = (0..12_000).map(|i| (i * 7919) % 20_000).collect();
        ids.push(3);
        ids.push(usize::MAX); // out of range → error must match serial
        assert_eq!(
            par_eval_bool_ids(&e, &table, &ids),
            eval_bool_columnar(&e, &table, Some(&ids))
        );
    }

    #[test]
    fn from_bounds_validates() {
        let table = t(10);
        assert!(PartitionedTable::from_bounds(Arc::clone(&table), vec![0, 4, 10]).is_ok());
        assert!(PartitionedTable::from_bounds(Arc::clone(&table), vec![0, 11]).is_err());
        assert!(PartitionedTable::from_bounds(Arc::clone(&table), vec![1, 10]).is_err());
        assert!(PartitionedTable::from_bounds(Arc::clone(&table), vec![0, 7, 4, 10]).is_err());
        assert!(PartitionedTable::from_bounds(Arc::clone(&table), vec![0]).is_err());
    }

    #[test]
    fn auto_respects_minimum_rows() {
        let small = PartitionedTable::auto(t(100));
        assert_eq!(small.n_partitions(), 1);
        let big = PartitionedTable::auto(t(MIN_PARTITION_ROWS * 64));
        assert!(big.n_partitions() >= 1);
        assert!(big.n_partitions() <= rayon::current_num_threads());
    }

    #[test]
    fn empty_table_scans_cleanly() {
        let table = Arc::new(table_of_floats(&[("x", &[])]).unwrap());
        let pt = PartitionedTable::new(Arc::clone(&table), 4);
        let e = Expr::col("x").gt(Expr::lit(0.0));
        assert!(pt.par_eval_bool(&e).unwrap().is_empty());
        assert_eq!(pt.par_count(&e).unwrap(), 0);
    }

    #[test]
    fn contiguous_run_detection() {
        assert_eq!(contiguous_run(&[5, 6, 7]), Some(5..8));
        assert_eq!(contiguous_run(&[5]), Some(5..6));
        assert_eq!(contiguous_run(&[]), None);
        assert_eq!(contiguous_run(&[5, 7]), None);
        assert_eq!(contiguous_run(&[5, 5]), None);
        assert_eq!(contiguous_run(&[5, 4]), None);
        // A run ending past usize::MAX is not a run (no overflow).
        assert_eq!(contiguous_run(&[usize::MAX]), None);
        assert_eq!(contiguous_run(&[usize::MAX - 1, usize::MAX]), None);
        assert_eq!(
            contiguous_run(&[usize::MAX - 1]),
            Some(usize::MAX - 1..usize::MAX)
        );
    }
}
