//! The counting-query decomposition of the paper's §2.
//!
//! A general aggregate query (Q1) is split into:
//!
//! * **Q2** — the object set: `SELECT DISTINCT GL FROM L WHERE θL`
//!   ([`distinct_project`]), which must be cheap to enumerate, and
//! * **Q3** — the per-object predicate
//!   `EXISTS(SELECT GL FROM L, R WHERE θLR AND GL = o.* GROUP BY GL HAVING φ)`,
//!   represented here by predicates over the object table:
//!   [`ExprPredicate`] for arbitrary boolean expressions (possibly with
//!   correlated subqueries) and [`AggThresholdPredicate`] for the common
//!   `(SELECT AGG(...) FROM inner WHERE θ(o, row)) CMP k` shape of
//!   Examples 1 and 2.
//!
//! [`CountQuery`] ties the two together and can compute the exact count
//! by brute force — the expensive path every estimator is trying to avoid.

use crate::error::TableResult;
use crate::expr::{AggFunc, CmpOp, Expr, RowCtx};
use crate::predicate::ObjectPredicate;
use crate::table::{Table, TableBuilder};
use crate::value::Value;
use std::collections::HashSet;
use std::sync::Arc;

/// Q2: `SELECT DISTINCT cols FROM table WHERE filter`.
///
/// Rows are emitted in first-occurrence order, so the result is
/// deterministic. The filter is evaluated as one vectorized pass over
/// the table ([`crate::vector`]); only surviving rows are materialized.
///
/// # Errors
///
/// Returns an error for unknown columns or filter evaluation failures.
pub fn distinct_project(table: &Table, cols: &[&str], filter: Option<&Expr>) -> TableResult<Table> {
    let indices: Vec<usize> = cols
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<TableResult<_>>()?;
    let fields = indices
        .iter()
        .map(|&i| table.schema().field(i).cloned())
        .collect::<TableResult<Vec<_>>>()?;
    let mut builder = TableBuilder::new(crate::schema::Schema::new(fields)?);
    let mask = match filter {
        Some(f) => Some(crate::vector::eval_bool_columnar(f, table, None)?),
        None => None,
    };
    let mut seen = HashSet::new();
    for row in 0..table.len() {
        if let Some(m) = &mask {
            if !m[row] {
                continue;
            }
        }
        let values: Vec<Value> = indices
            .iter()
            .map(|&i| table.get(row, i))
            .collect::<TableResult<_>>()?;
        let key: Vec<_> = values.iter().map(Value::group_key).collect();
        if seen.insert(key) {
            builder.push_row(values)?;
        }
    }
    builder.finish()
}

/// A per-object predicate given by a boolean [`Expr`] over the object row
/// (which may contain correlated aggregate subqueries).
#[derive(Debug, Clone)]
pub struct ExprPredicate {
    expr: Expr,
    name: String,
}

impl ExprPredicate {
    /// Wrap an expression as an object predicate.
    pub fn new(name: impl Into<String>, expr: Expr) -> Self {
        Self {
            expr,
            name: name.into(),
        }
    }

    /// The underlying expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }
}

impl ObjectPredicate for ExprPredicate {
    fn eval(&self, objects: &Table, idx: usize) -> TableResult<bool> {
        self.expr.eval_bool(RowCtx::top(objects, idx))
    }
    /// Batched evaluation through the vectorized engine
    /// ([`crate::vector`]), partition-parallel for large batches
    /// ([`crate::partition::par_eval_bool_ids`]): the id list is split
    /// into contiguous chunks scanned by parallel workers (contiguous
    /// runs — e.g. a full-population scan — borrow column sub-slices
    /// zero-copy) and merged back in order. Result- and error-identical
    /// to the per-row default at every thread count.
    fn eval_batch(&self, objects: &Table, idxs: &[usize]) -> TableResult<Vec<bool>> {
        crate::partition::par_eval_bool_ids(&self.expr, objects, idxs)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// The aggregate-threshold predicate
/// `(SELECT func(arg) FROM inner WHERE filter) cmp threshold`.
///
/// `filter` and `arg` may reference the object row through
/// [`Expr::Outer`]. Evaluation is a nested-loop scan of `inner` — the
/// "no better plan" baseline the paper assumes for such predicates.
#[derive(Debug, Clone)]
pub struct AggThresholdPredicate {
    /// Table scanned by the inner aggregate.
    pub inner: Arc<Table>,
    /// WHERE clause of the inner query (references `Outer` for o).
    pub filter: Expr,
    /// Aggregate function.
    pub func: AggFunc,
    /// Aggregate argument (None for COUNT(*)).
    pub arg: Option<Expr>,
    /// Comparison between the aggregate and the threshold.
    pub cmp: CmpOp,
    /// Threshold value.
    pub threshold: Value,
    name: String,
}

impl AggThresholdPredicate {
    /// Build a `COUNT(*) cmp k` predicate — the shape of Examples 1 & 2.
    pub fn count(
        name: impl Into<String>,
        inner: Arc<Table>,
        filter: Expr,
        cmp: CmpOp,
        k: i64,
    ) -> Self {
        Self {
            inner,
            filter,
            func: AggFunc::Count,
            arg: None,
            cmp,
            threshold: Value::Int(k),
            name: name.into(),
        }
    }

    /// Build a general aggregate-threshold predicate.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        inner: Arc<Table>,
        filter: Expr,
        func: AggFunc,
        arg: Option<Expr>,
        cmp: CmpOp,
        threshold: Value,
    ) -> Self {
        Self {
            inner,
            filter,
            func,
            arg,
            cmp,
            threshold,
            name: name.into(),
        }
    }

    /// The equivalent boolean expression (used for cross-checking).
    pub fn as_expr(&self) -> Expr {
        let sub = Expr::subquery(
            Arc::clone(&self.inner),
            Some(self.filter.clone()),
            self.func,
            self.arg.clone(),
        );
        Expr::Binary(
            crate::expr::BinaryOp::Cmp(self.cmp),
            Box::new(sub),
            Box::new(Expr::Literal(self.threshold.clone())),
        )
    }
}

impl AggThresholdPredicate {
    fn as_subquery(&self) -> crate::expr::AggSubquery {
        crate::expr::AggSubquery {
            table: Arc::clone(&self.inner),
            filter: Some(self.filter.clone()),
            func: self.func,
            arg: self.arg.clone(),
        }
    }

    fn test_aggregate(&self, agg: &Value) -> bool {
        match agg.sql_cmp(&self.threshold) {
            Some(ord) => self.cmp.test(ord),
            None => false, // NULL aggregate fails the HAVING clause.
        }
    }
}

impl ObjectPredicate for AggThresholdPredicate {
    fn eval(&self, objects: &Table, idx: usize) -> TableResult<bool> {
        let sub = self.as_subquery();
        let agg = Expr::Subquery(Box::new(sub)).eval(RowCtx::top(objects, idx))?;
        Ok(self.test_aggregate(&agg))
    }
    /// Batched evaluation: each object's aggregate runs as one
    /// *vectorized* scan of the inner table ([`crate::vector`]) instead
    /// of the interpreted nested loop, which is where exact ground
    /// truth for SQL-form predicates spends all of its time — and the
    /// objects are partitioned across parallel workers when the batch
    /// carries enough inner-scan work to amortize them. Chunks merge
    /// back in id order, so results (and the first surfaced error) are
    /// identical to the sequential loop at every thread count.
    fn eval_batch(&self, objects: &Table, idxs: &[usize]) -> TableResult<Vec<bool>> {
        use rayon::prelude::*;
        let sub = self.as_subquery();
        let eval_one = |i: usize| -> TableResult<bool> {
            let agg = crate::vector::subquery_value(&sub, objects, i)?;
            Ok(self.test_aggregate(&agg))
        };
        let threads = rayon::current_num_threads();
        // Each object costs a full inner scan; parallelize once the
        // total scanned-row volume clears a small quantum.
        let work = idxs.len().saturating_mul(self.inner.len().max(1));
        if threads <= 1 || idxs.len() < 2 || work < 1 << 13 {
            return idxs.iter().map(|&i| eval_one(i)).collect();
        }
        let n_chunks = threads.min(idxs.len());
        let bounds = crate::partition::partition_bounds(idxs.len(), n_chunks);
        let chunks: Vec<&[usize]> = bounds.windows(2).map(|w| &idxs[w[0]..w[1]]).collect();
        let results: Vec<TableResult<Vec<bool>>> = chunks
            .into_par_iter()
            .map(|chunk| chunk.iter().map(|&i| eval_one(i)).collect())
            .collect();
        let mut out = Vec::with_capacity(idxs.len());
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// A counting problem: the object table `O` (already materialized via Q2)
/// plus the per-object predicate `q` (Q3). `C(O, q)` is what every
/// estimator in this workspace approximates.
pub struct CountQuery {
    /// The object set `O`.
    pub objects: Arc<Table>,
    /// The predicate `q`.
    pub predicate: Arc<dyn ObjectPredicate>,
}

impl CountQuery {
    /// Create a counting problem.
    pub fn new(objects: Arc<Table>, predicate: Arc<dyn ObjectPredicate>) -> Self {
        Self { objects, predicate }
    }

    /// Number of objects `N = |O|`.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// The exact count `C(O, q)` by evaluating `q` on every object.
    ///
    /// This is the brute-force ground-truth path. It runs as **one
    /// batched oracle call** over the whole population, so predicates
    /// with a vectorized [`ObjectPredicate::eval_batch`] (expression
    /// predicates, aggregate-threshold predicates) scan column-at-a-time
    /// instead of interpreting row by row — and, through the
    /// partition-parallel batch paths, across every worker thread. The
    /// count is identical at every thread count (see
    /// [`crate::partition`]'s determinism contract).
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation errors.
    pub fn exact_count(&self) -> TableResult<usize> {
        let all: Vec<usize> = (0..self.objects.len()).collect();
        Ok(self
            .predicate
            .eval_batch(&self.objects, &all)?
            .into_iter()
            .filter(|&l| l)
            .count())
    }

    /// Evaluate `q` on a single object.
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation errors.
    pub fn label(&self, idx: usize) -> TableResult<bool> {
        self.predicate.eval(&self.objects, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::table::table_of_floats;
    use crate::value::DataType;

    fn points() -> Arc<Table> {
        // A tiny 2-d point set for skyband/neighbor style predicates.
        Arc::new(
            table_of_floats(&[
                ("x", &[1.0, 2.0, 3.0, 4.0, 2.0]),
                ("y", &[4.0, 3.0, 2.0, 1.0, 3.0]),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn distinct_project_dedups_and_filters() {
        let t = points();
        let out = distinct_project(&t, &["x", "y"], None).unwrap();
        assert_eq!(out.len(), 4); // (2,3) appears twice
        let filtered =
            distinct_project(&t, &["x"], Some(&Expr::col("y").ge(Expr::lit(3.0)))).unwrap();
        // y >= 3 keeps rows 0,1,4 with x = 1,2,2 → distinct {1,2}.
        assert_eq!(filtered.len(), 2);
        assert!(distinct_project(&t, &["nope"], None).is_err());
    }

    #[test]
    fn skyband_predicate_example2() {
        // q(o): (SELECT COUNT(*) FROM D WHERE x>=o.x AND y>=o.y AND (x>o.x OR y>o.y)) < k
        let d = points();
        let dominate = Expr::col("x")
            .ge(Expr::outer("x"))
            .and(Expr::col("y").ge(Expr::outer("y")))
            .and(
                Expr::col("x")
                    .gt(Expr::outer("x"))
                    .or(Expr::col("y").gt(Expr::outer("y"))),
            );
        let q = AggThresholdPredicate::count("skyband", Arc::clone(&d), dominate, CmpOp::Lt, 1);
        // Dominance counts: (1,4):0 (nothing has x>=1,y>=4 strictly better)
        // (2,3): dominated by? (2,3) dup doesn't dominate (needs strict >); (3,2)? x>=2 yes y>=3 no. → 0
        // (3,2): (4,1)? y>=2 no. → 0; (4,1): none → 0; (2,3) dup → 0.
        // With k=1 (skyline), all 5 points qualify.
        let cq = CountQuery::new(Arc::clone(&d), Arc::new(q));
        assert_eq!(cq.exact_count().unwrap(), 5);

        // Make a dominated point: add (1,1), dominated by all four corners.
        let d2 = Arc::new(
            table_of_floats(&[
                ("x", &[1.0, 2.0, 3.0, 4.0, 1.0]),
                ("y", &[4.0, 3.0, 2.0, 1.0, 1.0]),
            ])
            .unwrap(),
        );
        let dominate2 = Expr::col("x")
            .ge(Expr::outer("x"))
            .and(Expr::col("y").ge(Expr::outer("y")))
            .and(
                Expr::col("x")
                    .gt(Expr::outer("x"))
                    .or(Expr::col("y").gt(Expr::outer("y"))),
            );
        let q2 = AggThresholdPredicate::count("skyband", Arc::clone(&d2), dominate2, CmpOp::Lt, 1);
        let cq2 = CountQuery::new(Arc::clone(&d2), Arc::new(q2));
        // (1,1) is dominated by (2,3),(3,2),(1,4)... count >= 1 → excluded.
        assert_eq!(cq2.exact_count().unwrap(), 4);
    }

    #[test]
    fn agg_threshold_matches_expression_form() {
        let d = points();
        let filter = Expr::col("x").ge(Expr::outer("x"));
        let p = AggThresholdPredicate::count("ge-count", Arc::clone(&d), filter, CmpOp::Le, 2);
        let as_expr = ExprPredicate::new("expr-form", p.as_expr());
        for i in 0..d.len() {
            assert_eq!(
                p.eval(&d, i).unwrap(),
                as_expr.eval(&d, i).unwrap(),
                "object {i}"
            );
        }
    }

    #[test]
    fn count_query_label_and_exact() {
        let t = Arc::new(table_of_floats(&[("v", &[1.0, -1.0, 2.0, -2.0])]).unwrap());
        let p = Arc::new(crate::predicate::FnPredicate::new("pos", |t: &Table, i| {
            Ok(t.floats("v")?[i] > 0.0)
        }));
        let cq = CountQuery::new(Arc::clone(&t), p);
        assert_eq!(cq.num_objects(), 4);
        assert_eq!(cq.exact_count().unwrap(), 2);
        assert!(cq.label(0).unwrap());
        assert!(!cq.label(1).unwrap());
    }

    #[test]
    fn distinct_project_on_empty_table() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]).unwrap();
        let t = TableBuilder::new(schema).finish().unwrap();
        let out = distinct_project(&t, &["a"], None).unwrap();
        assert!(out.is_empty());
    }
}
