//! Vectorized (column-at-a-time) expression evaluation.
//!
//! [`Expr::eval`](crate::expr::Expr::eval) interprets one row at a time
//! through boxed [`Value`]s: every row pays a schema lookup per column
//! reference, a heap-ish `Value` round-trip per AST node, and a dynamic
//! type dispatch per operator. [`Column`] storage is already fully
//! columnar, so this module evaluates an [`Expr`] over a whole [`Table`]
//! (or a selection vector of row ids) in typed kernels instead:
//! `Vec<bool>` / `Vec<i64>` / `Vec<f64>` intermediates, branch-free
//! comparison and arithmetic loops, and `AND`/`OR` as mask combination
//! rather than per-row short-circuit interpretation.
//!
//! The paper's cost model (§2) charges only for evaluations of the
//! expensive predicate `q`; everything else — proxy scans, ground-truth
//! counting, stratification setup — must be as close to free as
//! possible. This engine is that free path: the batched labeling
//! pipeline (`ObjectPredicate::eval_batch` → `Labeler::label_batch`)
//! bottoms out here for expression predicates, and correlated aggregate
//! subqueries run one *vectorized* inner scan per outer row instead of a
//! fully interpreted nested loop.
//!
//! # Semantics
//!
//! The vectorized path is **result-identical** to the row-wise
//! evaluator, per row, including errors (see the "Three-valued logic,
//! NULL, and errors" section of [`crate::expr`]). A [`Batch`] therefore
//! carries three layers: typed values, a NULL mask, and a per-row error
//! mask. Kernels evaluate both operands eagerly and then *mask* errors
//! that row-wise short-circuiting would have shadowed (`FALSE AND
//! <error>` is `FALSE`, not an error). Scalar subtrees (literals, outer
//! references) stay scalar — they are computed once and broadcast.
//! The agreement is enforced by property tests over random schemas,
//! expressions, and selection vectors (`tests/vector_agreement.rs`).
//!
//! Only string data falls back to element-at-a-time work inside the
//! kernels (comparison of `Arc<str>` values); everything numeric runs
//! in branch-free loops with placeholder values under the NULL/error
//! masks.
//!
//! # Example
//!
//! ```
//! use lts_table::table::table_of_floats;
//! use lts_table::{vector, Expr};
//!
//! let t = table_of_floats(&[("x", &[0.5, 1.5, 2.5])]).unwrap();
//! let e = Expr::col("x").gt(Expr::lit(1.0));
//! // Whole-table mask…
//! assert_eq!(
//!     vector::eval_bool_columnar(&e, &t, None).unwrap(),
//!     vec![false, true, true]
//! );
//! // …or a selection vector of row ids (duplicates allowed).
//! assert_eq!(
//!     vector::eval_bool_columnar(&e, &t, Some(&[2, 0, 2])).unwrap(),
//!     vec![true, false, true]
//! );
//! ```

use crate::column::Column;
use crate::error::{TableError, TableResult};
use crate::expr::{
    apply_binary, eval_unary, kleene_and, kleene_or, AggFunc, AggSubquery, BinaryOp, CmpOp, Expr,
    Func, UnaryOp,
};
use crate::table::Table;
use crate::value::{DataType, Value};
use std::borrow::Cow;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------

/// Typed values for the selected rows. Whole-table column references
/// borrow storage directly (`Cow::Borrowed` — zero-copy); kernel
/// outputs and selection gathers own their buffers.
#[derive(Debug, Clone)]
enum Data<'a> {
    /// One broadcast value for every row (literals, outer references,
    /// constant-folded subtrees). `Scalar(Value::Null)` means "NULL in
    /// every row".
    Scalar(Value),
    /// Boolean column.
    Bool(Cow<'a, [bool]>),
    /// Integer column.
    Int(Cow<'a, [i64]>),
    /// Float column.
    Float(Cow<'a, [f64]>),
    /// String column.
    Str(Cow<'a, [Arc<str>]>),
}

/// Per-row evaluation failures.
#[derive(Debug, Clone)]
enum Errs {
    /// No row failed.
    None,
    /// Every row failed identically (structural errors: unknown column,
    /// unbound outer row, wrong arity).
    Uniform(TableError),
    /// Sparse per-row failures (aligned with the batch).
    Rows(Vec<Option<TableError>>),
}

/// The columnar result of evaluating an expression over a batch of rows.
///
/// Conceptually `Batch` is `Vec<TableResult<Value>>` stored as three
/// layers — typed values, a NULL mask, and a per-row error mask — so
/// kernels stay branch-free and rows that row-wise evaluation would
/// have failed are faithfully reproduced (see [`Batch::value_at`]).
/// The lifetime ties zero-copy column references to the evaluated
/// table.
#[derive(Debug, Clone)]
pub struct Batch<'a> {
    len: usize,
    data: Data<'a>,
    /// `true` ⇒ the row's value is NULL (data holds a placeholder).
    nulls: Option<Vec<bool>>,
    errs: Errs,
}

impl<'a> Batch<'a> {
    fn scalar(len: usize, v: Value) -> Batch<'a> {
        Batch {
            len,
            data: Data::Scalar(v),
            nulls: None,
            errs: Errs::None,
        }
    }

    fn uniform_err(len: usize, e: TableError) -> Batch<'a> {
        Batch {
            len,
            data: Data::Scalar(Value::Null),
            nulls: None,
            errs: Errs::Uniform(e),
        }
    }

    fn all_null(len: usize, errs: Errs) -> Batch<'a> {
        Batch {
            len,
            data: Data::Scalar(Value::Null),
            nulls: None,
            errs,
        }
    }

    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn err_at(&self, k: usize) -> Option<&TableError> {
        match &self.errs {
            Errs::None => None,
            Errs::Uniform(e) => Some(e),
            Errs::Rows(v) => v[k].as_ref(),
        }
    }

    fn is_null_at(&self, k: usize) -> bool {
        matches!(&self.data, Data::Scalar(Value::Null)) || self.nulls.as_ref().is_some_and(|m| m[k])
    }

    /// The data type shared by the batch's non-NULL values (`None` when
    /// every row is NULL).
    fn dtype(&self) -> Option<DataType> {
        match &self.data {
            Data::Scalar(v) => v.data_type(),
            Data::Bool(_) => Some(DataType::Bool),
            Data::Int(_) => Some(DataType::Int),
            Data::Float(_) => Some(DataType::Float),
            Data::Str(_) => Some(DataType::Str),
        }
    }

    fn has_errs(&self) -> bool {
        !matches!(self.errs, Errs::None)
    }

    /// Materialize row `k` exactly as row-wise evaluation would have
    /// produced it: the row's error, `Value::Null`, or its value.
    ///
    /// # Errors
    ///
    /// Returns the row's evaluation error, if it has one.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn value_at(&self, k: usize) -> TableResult<Value> {
        assert!(
            k < self.len,
            "batch row {k} out of range ({} rows)",
            self.len
        );
        if let Some(e) = self.err_at(k) {
            return Err(e.clone());
        }
        if self.is_null_at(k) {
            return Ok(Value::Null);
        }
        Ok(match &self.data {
            Data::Scalar(v) => v.clone(),
            Data::Bool(v) => Value::Bool(v[k]),
            Data::Int(v) => Value::Int(v[k]),
            Data::Float(v) => Value::Float(v[k]),
            Data::Str(v) => Value::Str(v[k].clone()),
        })
    }

    /// Raw boolean at `k` if the row is a non-NULL, non-error boolean.
    fn bool_raw_at(&self, k: usize) -> Option<bool> {
        if self.is_null_at(k) {
            return None;
        }
        match &self.data {
            Data::Bool(v) => Some(v[k]),
            Data::Scalar(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Three-valued boolean view of a non-error row (`None` = NULL),
    /// erring on non-boolean values exactly like [`Value::as_bool`].
    fn bool3_at(&self, k: usize) -> TableResult<Option<bool>> {
        if self.is_null_at(k) {
            return Ok(None);
        }
        match self.bool_raw_at(k) {
            Some(b) => Ok(Some(b)),
            None => {
                let v = self.value_at(k)?;
                v.as_bool().map(Some)
            }
        }
    }

    /// SQL predicate view of a non-error row: NULL ⇒ `false`.
    fn truthy_at(&self, k: usize) -> TableResult<bool> {
        Ok(self.bool3_at(k)?.unwrap_or(false))
    }

    /// Collapse the batch to predicate labels with SQL semantics
    /// (NULL ⇒ `false`), aligned with the evaluated rows.
    ///
    /// # Errors
    ///
    /// Returns the **first** failing row's error (in row order) — the
    /// same error a row-at-a-time loop would have stopped at.
    pub fn truthy(&self) -> TableResult<Vec<bool>> {
        if let (Data::Bool(v), Errs::None, None) = (&self.data, &self.errs, &self.nulls) {
            return Ok(v.to_vec());
        }
        let mut out = Vec::with_capacity(self.len);
        for k in 0..self.len {
            if let Some(e) = self.err_at(k) {
                return Err(e.clone());
            }
            out.push(self.truthy_at(k)?);
        }
        Ok(out)
    }

    /// Assemble a batch from per-row results (the generic fallback used
    /// by non-vectorizable kernels and subquery aggregation).
    fn from_rows(vals: Vec<TableResult<Value>>) -> Batch<'a> {
        let len = vals.len();
        let dt = vals.iter().find_map(|v| match v {
            Ok(val) => val.data_type(),
            Err(_) => None,
        });
        let mut errs: Option<Vec<Option<TableError>>> = None;
        let mut nulls: Option<Vec<bool>> = None;
        let set_err = |k: usize, e: TableError, errs: &mut Option<Vec<Option<TableError>>>| {
            errs.get_or_insert_with(|| vec![None; len])[k] = Some(e);
        };
        let data = match dt {
            None => {
                // All rows NULL or errors.
                for (k, v) in vals.into_iter().enumerate() {
                    if let Err(e) = v {
                        set_err(k, e, &mut errs);
                    }
                }
                return Batch {
                    len,
                    data: Data::Scalar(Value::Null),
                    nulls: None,
                    errs: errs.map_or(Errs::None, Errs::Rows),
                };
            }
            Some(dt) => {
                let mut bs = Vec::new();
                let mut is = Vec::new();
                let mut fs = Vec::new();
                let mut ss = Vec::new();
                for (k, v) in vals.into_iter().enumerate() {
                    let val = match v {
                        Ok(val) => val,
                        Err(e) => {
                            set_err(k, e, &mut errs);
                            Value::Null // placeholder slot below
                        }
                    };
                    let null = val.is_null();
                    if null {
                        nulls.get_or_insert_with(|| vec![false; len])[k] = true;
                    }
                    match (dt, val) {
                        (DataType::Bool, Value::Bool(b)) => bs.push(b),
                        (DataType::Bool, _) => bs.push(false),
                        (DataType::Int, Value::Int(i)) => is.push(i),
                        (DataType::Int, _) => is.push(0),
                        (DataType::Float, Value::Float(x)) => fs.push(x),
                        (DataType::Float, _) => fs.push(0.0),
                        (DataType::Str, Value::Str(s)) => ss.push(s),
                        (DataType::Str, _) => ss.push(Arc::from("")),
                    }
                }
                match dt {
                    DataType::Bool => Data::Bool(bs.into()),
                    DataType::Int => Data::Int(is.into()),
                    DataType::Float => Data::Float(fs.into()),
                    DataType::Str => Data::Str(ss.into()),
                }
            }
        };
        Batch {
            len,
            data,
            nulls,
            errs: errs.map_or(Errs::None, Errs::Rows),
        }
    }
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Which rows of a table a columnar evaluation covers.
///
/// [`RowSel::Range`] is the partitioned-scan fast path: a contiguous
/// row range borrows column storage by sub-slicing (zero-copy), so a
/// per-partition scan runs the same branch-free kernels as a whole
/// table without a gather. [`RowSel::Ids`] is the general selection
/// vector (duplicates allowed, out-of-range ids become per-row errors).
#[derive(Debug, Clone, Copy)]
pub enum RowSel<'a> {
    /// Every row of the table, in row order.
    All,
    /// The contiguous rows `start..end`, in row order. An empty or
    /// inverted range evaluates zero rows; rows past the end of the
    /// table become per-row errors, like out-of-range ids.
    Range {
        /// First row (inclusive).
        start: usize,
        /// One past the last row.
        end: usize,
    },
    /// Explicit row ids, in the given order.
    Ids(&'a [usize]),
}

impl RowSel<'_> {
    /// Number of rows the selection covers on a table of `table_len`
    /// rows.
    pub fn len(&self, table_len: usize) -> usize {
        match self {
            RowSel::All => table_len,
            RowSel::Range { start, end } => end.saturating_sub(*start),
            RowSel::Ids(ids) => ids.len(),
        }
    }
}

/// Evaluate `expr` over `table` column-at-a-time.
///
/// With `rows = None` the whole table is evaluated in row order; with
/// `rows = Some(sel)` the batch covers exactly the listed row ids, in
/// order (duplicates allowed; out-of-range ids become per-row errors,
/// matching row-wise evaluation). Never fails at the batch level —
/// structural problems (unknown column, …) surface as per-row errors
/// through [`Batch::value_at`] / [`Batch::truthy`], which is what the
/// row-at-a-time loop would have produced for each row.
///
/// Whole-table column references are zero-copy: the returned [`Batch`]
/// borrows column storage from `table` where it can.
pub fn eval_columnar<'a>(expr: &Expr, table: &'a Table, rows: Option<&'a [usize]>) -> Batch<'a> {
    eval_columnar_sel(expr, table, rows.map_or(RowSel::All, RowSel::Ids))
}

/// Evaluate `expr` over the rows selected by `sel` — the generalized
/// entry point behind [`eval_columnar`]. Contiguous ranges
/// ([`RowSel::Range`]) borrow column storage zero-copy, which is what
/// the partitioned scan executor ([`crate::partition`]) is built on.
pub fn eval_columnar_sel<'a>(expr: &Expr, table: &'a Table, sel: RowSel<'a>) -> Batch<'a> {
    let ctx = VecCtx {
        table,
        sel,
        len: sel.len(table.len()),
        outer: None,
    };
    eval_vec(expr, &ctx)
}

/// Evaluate `expr` as a predicate over `table`, vectorized: the batch
/// labels with SQL NULL ⇒ `false` semantics.
///
/// Row-for-row (and error-for-error) equivalent to calling
/// [`Expr::eval_bool`](crate::expr::Expr::eval_bool) per row id, but
/// orders of magnitude faster on numeric predicates.
///
/// # Errors
///
/// Returns the first failing row's error, in row order.
pub fn eval_bool_columnar(
    expr: &Expr,
    table: &Table,
    rows: Option<&[usize]>,
) -> TableResult<Vec<bool>> {
    eval_columnar(expr, table, rows).truthy()
}

/// [`eval_bool_columnar`] over a generalized [`RowSel`].
///
/// # Errors
///
/// Returns the first failing row's error, in selection order.
pub fn eval_bool_columnar_sel(
    expr: &Expr,
    table: &Table,
    sel: RowSel<'_>,
) -> TableResult<Vec<bool>> {
    eval_columnar_sel(expr, table, sel).truthy()
}

/// Evaluate a correlated aggregate subquery for one outer row using a
/// vectorized scan of the inner table. Result-identical to the
/// interpreted nested loop in `expr.rs`, including error order.
pub(crate) fn subquery_value(
    sq: &AggSubquery,
    outer_table: &Table,
    outer_row: usize,
) -> TableResult<Value> {
    let inner: &Table = sq.table.as_ref();
    let n = inner.len();
    let ictx = VecCtx {
        table: inner,
        sel: RowSel::All,
        len: n,
        outer: Some((outer_table, outer_row)),
    };
    let filter = sq.filter.as_ref().map(|f| eval_vec(f, &ictx));
    let want_arg = !matches!(sq.func, AggFunc::Count);
    let arg = if want_arg {
        sq.arg.as_ref().map(|a| eval_vec(a, &ictx))
    } else {
        None
    };
    let mut count: i64 = 0;
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for i in 0..n {
        if let Some(fb) = &filter {
            if let Some(e) = fb.err_at(i) {
                return Err(e.clone());
            }
            if !fb.truthy_at(i)? {
                continue;
            }
        }
        count += 1;
        if want_arg {
            let ab = arg.as_ref().ok_or_else(|| TableError::InvalidExpression {
                message: format!("{:?} requires an argument expression", sq.func),
            })?;
            if let Some(e) = ab.err_at(i) {
                return Err(e.clone());
            }
            let v = ab.value_at(i)?.as_f64()?;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
    }
    Ok(match sq.func {
        AggFunc::Count => Value::Int(count),
        AggFunc::Sum => Value::Float(if count == 0 { 0.0 } else { sum }),
        AggFunc::Avg => {
            if count == 0 {
                Value::Null
            } else {
                Value::Float(sum / count as f64)
            }
        }
        AggFunc::Min => {
            if count == 0 {
                Value::Null
            } else {
                Value::Float(min)
            }
        }
        AggFunc::Max => {
            if count == 0 {
                Value::Null
            } else {
                Value::Float(max)
            }
        }
    })
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

/// Batch evaluation context: a table, a row selection, and an optional
/// outer row (inside correlated subqueries).
struct VecCtx<'a> {
    table: &'a Table,
    sel: RowSel<'a>,
    len: usize,
    outer: Option<(&'a Table, usize)>,
}

impl VecCtx<'_> {
    #[inline]
    fn row_at(&self, k: usize) -> usize {
        match self.sel {
            RowSel::All => k,
            RowSel::Range { start, .. } => start + k,
            RowSel::Ids(s) => s[k],
        }
    }
}

fn eval_vec<'a>(expr: &Expr, ctx: &VecCtx<'a>) -> Batch<'a> {
    let len = ctx.len;
    match expr {
        Expr::Literal(v) => Batch::scalar(len, v.clone()),
        Expr::Column(name) => match ctx.table.column_by_name(name) {
            Ok(col) => gather(col, ctx),
            Err(e) => Batch::uniform_err(len, e),
        },
        Expr::Outer(name) => match ctx.outer {
            None => Batch::uniform_err(len, TableError::NoOuterRow),
            Some((t, r)) => match t.get_by_name(r, name) {
                Ok(v) => Batch::scalar(len, v),
                Err(e) => Batch::uniform_err(len, e),
            },
        },
        Expr::Unary(op, e) => unary_kernel(*op, eval_vec(e, ctx), len),
        Expr::Binary(op, l, r) => {
            let lb = eval_vec(l, ctx);
            let rb = eval_vec(r, ctx);
            match op {
                BinaryOp::And => logic_kernel(true, &lb, &rb, len),
                BinaryOp::Or => logic_kernel(false, &lb, &rb, len),
                BinaryOp::Cmp(c) => cmp_kernel(*c, &lb, &rb, len),
                _ => arith_kernel(*op, &lb, &rb, len),
            }
        }
        Expr::Call(f, args) => call_kernel(*f, args, ctx),
        Expr::Subquery(sq) => {
            let rows = (0..len)
                .map(|k| subquery_value(sq, ctx.table, ctx.row_at(k)))
                .collect();
            Batch::from_rows(rows)
        }
    }
}

/// Gather a storage column into a batch (zero-copy borrow for full
/// scans and in-bounds contiguous ranges, indexed gather for selection
/// vectors; out-of-range ids become per-row errors, as row-wise
/// `Column::get` would have produced).
fn gather<'a>(col: &'a Column, ctx: &VecCtx<'a>) -> Batch<'a> {
    let len = ctx.len;
    match ctx.sel {
        RowSel::All => {
            let data = match col {
                Column::Bool(v) => Data::Bool(Cow::Borrowed(v.as_slice())),
                Column::Int(v) => Data::Int(Cow::Borrowed(v.as_slice())),
                Column::Float(v) => Data::Float(Cow::Borrowed(v.as_slice())),
                Column::Str(v) => Data::Str(Cow::Borrowed(v.as_slice())),
            };
            Batch {
                len,
                data,
                nulls: None,
                errs: Errs::None,
            }
        }
        RowSel::Range { start, end } if start <= end && end <= col.len() => {
            // In-bounds contiguous range: borrow the sub-slice directly
            // — the zero-copy partition fast path.
            let data = match col {
                Column::Bool(v) => Data::Bool(Cow::Borrowed(&v[start..end])),
                Column::Int(v) => Data::Int(Cow::Borrowed(&v[start..end])),
                Column::Float(v) => Data::Float(Cow::Borrowed(&v[start..end])),
                Column::Str(v) => Data::Str(Cow::Borrowed(&v[start..end])),
            };
            Batch {
                len,
                data,
                nulls: None,
                errs: Errs::None,
            }
        }
        RowSel::Range { start, end } => {
            // Range extends past the column: per-row errors for the
            // out-of-range tail, exactly like an id gather would give.
            let ids: Vec<usize> = (start..end.max(start)).collect();
            let ctx2 = VecCtx {
                table: ctx.table,
                sel: RowSel::Ids(&ids),
                len: ids.len(),
                outer: ctx.outer,
            };
            let b = gather(col, &ctx2);
            // Re-own any borrowed data (`ids` dies with this frame).
            Batch {
                len: b.len,
                data: match b.data {
                    Data::Scalar(v) => Data::Scalar(v),
                    Data::Bool(v) => Data::Bool(Cow::Owned(v.into_owned())),
                    Data::Int(v) => Data::Int(Cow::Owned(v.into_owned())),
                    Data::Float(v) => Data::Float(Cow::Owned(v.into_owned())),
                    Data::Str(v) => Data::Str(Cow::Owned(v.into_owned())),
                },
                nulls: b.nulls,
                errs: b.errs,
            }
        }
        RowSel::Ids(sel) => {
            fn sel_gather<T: Clone>(v: &[T], sel: &[usize], placeholder: T) -> (Vec<T>, Errs) {
                let mut out = Vec::with_capacity(sel.len());
                let mut errs: Option<Vec<Option<TableError>>> = None;
                for (k, &i) in sel.iter().enumerate() {
                    match v.get(i) {
                        Some(x) => out.push(x.clone()),
                        None => {
                            out.push(placeholder.clone());
                            errs.get_or_insert_with(|| vec![None; sel.len()])[k] =
                                Some(TableError::RowIndexOutOfRange {
                                    index: i,
                                    len: v.len(),
                                });
                        }
                    }
                }
                (out, errs.map_or(Errs::None, Errs::Rows))
            }
            let (data, errs) = match col {
                Column::Bool(v) => {
                    let (d, e) = sel_gather(v, sel, false);
                    (Data::Bool(d.into()), e)
                }
                Column::Int(v) => {
                    let (d, e) = sel_gather(v, sel, 0);
                    (Data::Int(d.into()), e)
                }
                Column::Float(v) => {
                    let (d, e) = sel_gather(v, sel, 0.0);
                    (Data::Float(d.into()), e)
                }
                Column::Str(v) => {
                    let (d, e) = sel_gather(v, sel, Arc::from(""));
                    (Data::Str(d.into()), e)
                }
            };
            Batch {
                len,
                data,
                nulls: None,
                errs,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Mask plumbing
// ---------------------------------------------------------------------

/// Per-row error union; the left operand's error wins (row-wise
/// evaluation surfaces the left subexpression's error first).
fn merge_errs(a: &Errs, b: &Errs, len: usize) -> Errs {
    match (a, b) {
        (Errs::Uniform(e), _) => Errs::Uniform(e.clone()),
        (Errs::None, other) => other.clone(),
        (other, Errs::None) => other.clone(),
        (Errs::Rows(av), Errs::Uniform(e)) => Errs::Rows(
            av.iter()
                .map(|x| x.clone().or_else(|| Some(e.clone())))
                .collect(),
        ),
        (Errs::Rows(av), Errs::Rows(bv)) => {
            debug_assert_eq!(av.len(), len);
            Errs::Rows(
                av.iter()
                    .zip(bv)
                    .map(|(x, y)| x.clone().or_else(|| y.clone()))
                    .collect(),
            )
        }
    }
}

/// Either-side-NULL mask (rows with errors are irrelevant — errors are
/// checked before NULLs everywhere).
fn merge_nulls(l: &Batch<'_>, r: &Batch<'_>) -> Option<Vec<bool>> {
    match (l.nulls.as_ref(), r.nulls.as_ref()) {
        (None, None) => None,
        (Some(a), None) => Some(a.clone()),
        (None, Some(b)) => Some(b.clone()),
        (Some(a), Some(b)) => Some(a.iter().zip(b).map(|(&x, &y)| x || y).collect()),
    }
}

fn set_row_err(errs: &mut Errs, k: usize, len: usize, e: TableError) {
    if let Errs::None = errs {
        *errs = Errs::Rows(vec![None; len]);
    }
    if let Errs::Rows(v) = errs {
        if v[k].is_none() {
            v[k] = Some(e);
        }
    }
}

#[inline]
fn row_has_problem(errs: &Errs, nulls: &Option<Vec<bool>>, k: usize) -> bool {
    let err = match errs {
        Errs::None => false,
        Errs::Uniform(_) => true,
        Errs::Rows(v) => v[k].is_some(),
    };
    err || nulls.as_ref().is_some_and(|m| m[k])
}

// ---------------------------------------------------------------------
// Numeric views
// ---------------------------------------------------------------------

/// A per-row `f64` view over numeric batch data (ints and bools coerce
/// exactly like [`Value::as_f64`]).
enum NumView<'a> {
    Scalar(f64),
    Floats(&'a [f64]),
    Ints(&'a [i64]),
    Bools(&'a [bool]),
}

impl NumView<'_> {
    #[inline]
    fn get(&self, k: usize) -> f64 {
        match self {
            NumView::Scalar(x) => *x,
            NumView::Floats(v) => v[k],
            NumView::Ints(v) => v[k] as f64,
            NumView::Bools(v) => {
                if v[k] {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

fn num_view<'b>(b: &'b Batch<'_>) -> Option<NumView<'b>> {
    match &b.data {
        Data::Float(v) => Some(NumView::Floats(v)),
        Data::Int(v) => Some(NumView::Ints(v)),
        Data::Bool(v) => Some(NumView::Bools(v)),
        Data::Scalar(v) => v.as_f64().ok().map(NumView::Scalar),
        Data::Str(_) => None,
    }
}

/// A per-row `i64` view (only for batches whose dtype is `Int`).
enum IntView<'a> {
    Scalar(i64),
    Slice(&'a [i64]),
}

impl IntView<'_> {
    #[inline]
    fn get(&self, k: usize) -> i64 {
        match self {
            IntView::Scalar(x) => *x,
            IntView::Slice(v) => v[k],
        }
    }
}

fn int_view<'b>(b: &'b Batch<'_>) -> Option<IntView<'b>> {
    match &b.data {
        Data::Int(v) => Some(IntView::Slice(v)),
        Data::Scalar(Value::Int(i)) => Some(IntView::Scalar(*i)),
        _ => None,
    }
}

fn is_all_null(b: &Batch<'_>) -> bool {
    matches!(&b.data, Data::Scalar(Value::Null))
}

fn both_scalar_no_err(l: &Batch<'_>, r: &Batch<'_>) -> Option<(Value, Value)> {
    if l.has_errs() || r.has_errs() {
        return None;
    }
    match (&l.data, &r.data) {
        (Data::Scalar(a), Data::Scalar(b)) => Some((a.clone(), b.clone())),
        _ => None,
    }
}

fn scalar_result<'a>(len: usize, res: TableResult<Value>) -> Batch<'a> {
    match res {
        Ok(v) => Batch::scalar(len, v),
        Err(e) => Batch::uniform_err(len, e),
    }
}

// ---------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------

/// `+ - * /` over two batches.
fn arith_kernel<'a>(op: BinaryOp, l: &Batch<'a>, r: &Batch<'a>, len: usize) -> Batch<'a> {
    // Constant folding: scalar ⊙ scalar computes once and broadcasts.
    if let Some((lv, rv)) = both_scalar_no_err(l, r) {
        return scalar_result(len, apply_binary(op, lv, rv));
    }
    let errs = merge_errs(&l.errs, &r.errs, len);
    if let Errs::Uniform(e) = errs {
        return Batch::uniform_err(len, e);
    }
    // NULL ⊙ anything = NULL (errors still win per row).
    if is_all_null(l) || is_all_null(r) {
        return Batch::all_null(len, errs);
    }
    // Int ⊙ Int stays integer with checked arithmetic (except Div).
    if !matches!(op, BinaryOp::Div) {
        if let (Some(a), Some(b)) = (int_view(l), int_view(r)) {
            return int_arith(op, &a, &b, l, r, len, errs);
        }
    }
    // General numeric path in f64.
    match (num_view(l), num_view(r)) {
        (Some(a), Some(b)) => float_arith(op, &a, &b, l, r, len, errs),
        _ => slow_binary(op, l, r, len),
    }
}

fn int_arith<'a>(
    op: BinaryOp,
    a: &IntView<'_>,
    b: &IntView<'_>,
    l: &Batch<'a>,
    r: &Batch<'a>,
    len: usize,
    mut errs: Errs,
) -> Batch<'a> {
    let nulls = merge_nulls(l, r);
    let mut data = vec![0i64; len];
    for (k, slot) in data.iter_mut().enumerate() {
        if row_has_problem(&errs, &nulls, k) {
            continue;
        }
        let (x, y) = (a.get(k), b.get(k));
        let res = match op {
            BinaryOp::Add => x.checked_add(y),
            BinaryOp::Sub => x.checked_sub(y),
            BinaryOp::Mul => x.checked_mul(y),
            _ => unreachable!("int_arith only handles Add/Sub/Mul"),
        };
        match res {
            Some(v) => *slot = v,
            None => set_row_err(
                &mut errs,
                k,
                len,
                TableError::Arithmetic {
                    message: "integer overflow",
                },
            ),
        }
    }
    Batch {
        len,
        data: Data::Int(data.into()),
        nulls,
        errs,
    }
}

fn float_arith<'a>(
    op: BinaryOp,
    a: &NumView<'_>,
    b: &NumView<'_>,
    l: &Batch<'a>,
    r: &Batch<'a>,
    len: usize,
    errs: Errs,
) -> Batch<'a> {
    let mut nulls = merge_nulls(l, r);
    let mut data = Vec::with_capacity(len);
    match op {
        BinaryOp::Add => data.extend((0..len).map(|k| a.get(k) + b.get(k))),
        BinaryOp::Sub => data.extend((0..len).map(|k| a.get(k) - b.get(k))),
        BinaryOp::Mul => data.extend((0..len).map(|k| a.get(k) * b.get(k))),
        BinaryOp::Div => {
            // SQL: x / 0 is NULL. Quotients are computed branch-free
            // (rows divided by zero hold a masked placeholder).
            data.extend((0..len).map(|k| a.get(k) / b.get(k)));
            let zero_mask = |k: usize| b.get(k) == 0.0;
            if (0..len).any(zero_mask) {
                let m = nulls.get_or_insert_with(|| vec![false; len]);
                for (k, slot) in m.iter_mut().enumerate() {
                    *slot = *slot || zero_mask(k);
                }
            }
        }
        _ => unreachable!("float_arith only handles Add/Sub/Mul/Div"),
    }
    Batch {
        len,
        data: Data::Float(data.into()),
        nulls,
        errs,
    }
}

/// Comparison over two batches.
fn cmp_kernel<'a>(cmp: CmpOp, l: &Batch<'a>, r: &Batch<'a>, len: usize) -> Batch<'a> {
    if let Some((lv, rv)) = both_scalar_no_err(l, r) {
        return scalar_result(len, apply_binary(BinaryOp::Cmp(cmp), lv, rv));
    }
    let errs = merge_errs(&l.errs, &r.errs, len);
    if let Errs::Uniform(e) = errs {
        return Batch::uniform_err(len, e);
    }
    if is_all_null(l) || is_all_null(r) {
        return Batch::all_null(len, errs);
    }
    let nulls = merge_nulls(l, r);
    let numeric = |d: Option<DataType>| matches!(d, Some(DataType::Int | DataType::Float));
    match (l.dtype(), r.dtype()) {
        // Int vs Int: branch-free in i64 (no NaN possible).
        (Some(DataType::Int), Some(DataType::Int)) => {
            let (a, b) = (int_view(l).unwrap(), int_view(r).unwrap());
            let data: Vec<bool> = match cmp {
                CmpOp::Eq => (0..len).map(|k| a.get(k) == b.get(k)).collect(),
                CmpOp::Ne => (0..len).map(|k| a.get(k) != b.get(k)).collect(),
                CmpOp::Lt => (0..len).map(|k| a.get(k) < b.get(k)).collect(),
                CmpOp::Le => (0..len).map(|k| a.get(k) <= b.get(k)).collect(),
                CmpOp::Gt => (0..len).map(|k| a.get(k) > b.get(k)).collect(),
                CmpOp::Ge => (0..len).map(|k| a.get(k) >= b.get(k)).collect(),
            };
            Batch {
                len,
                data: Data::Bool(data.into()),
                nulls,
                errs,
            }
        }
        // Numeric mix: branch-free in f64, then a repair pass for rows
        // whose comparison hit NaN (row-wise: a type-mismatch error).
        (lt, rt) if numeric(lt) && numeric(rt) => {
            let (a, b) = (num_view(l).unwrap(), num_view(r).unwrap());
            let mut saw_nan = false;
            let data: Vec<bool> = (0..len)
                .map(|k| {
                    let (x, y) = (a.get(k), b.get(k));
                    saw_nan |= x.is_nan() || y.is_nan();
                    match cmp {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    }
                })
                .collect();
            let mut errs = errs;
            if saw_nan {
                for k in 0..len {
                    if row_has_problem(&errs, &nulls, k) {
                        continue;
                    }
                    if a.get(k).is_nan() || b.get(k).is_nan() {
                        let (lv, rv) = (l.value_at(k), r.value_at(k));
                        if let (Ok(lv), Ok(rv)) = (lv, rv) {
                            set_row_err(
                                &mut errs,
                                k,
                                len,
                                TableError::TypeMismatch {
                                    expected: "comparable values",
                                    found: format!("{lv:?} vs {rv:?}"),
                                },
                            );
                        }
                    }
                }
            }
            Batch {
                len,
                data: Data::Bool(data.into()),
                nulls,
                errs,
            }
        }
        (Some(DataType::Bool), Some(DataType::Bool)) => {
            let get = |b: &Batch<'_>, k: usize| -> bool {
                match &b.data {
                    Data::Bool(v) => v[k],
                    Data::Scalar(Value::Bool(x)) => *x,
                    _ => unreachable!("dtype checked"),
                }
            };
            let data: Vec<bool> = (0..len)
                .map(|k| cmp.test(get(l, k).cmp(&get(r, k))))
                .collect();
            Batch {
                len,
                data: Data::Bool(data.into()),
                nulls,
                errs,
            }
        }
        (Some(DataType::Str), Some(DataType::Str)) => {
            fn get<'b>(b: &'b Batch<'_>, k: usize) -> &'b str {
                match &b.data {
                    Data::Str(v) => &v[k],
                    Data::Scalar(Value::Str(s)) => s,
                    _ => unreachable!("dtype checked"),
                }
            }
            let data: Vec<bool> = (0..len)
                .map(|k| cmp.test(get(l, k).cmp(get(r, k))))
                .collect();
            Batch {
                len,
                data: Data::Bool(data.into()),
                nulls,
                errs,
            }
        }
        // Incomparable type pairs: every non-NULL row errors with the
        // exact row-wise message (built from the materialized values).
        _ => slow_binary(BinaryOp::Cmp(cmp), l, r, len),
    }
}

/// A `(value, is_null)` view over boolean-or-NULL batch data, feeding
/// the masked Kleene kernel.
enum BoolView<'b> {
    Scalar(bool),
    Slice(&'b [bool]),
    AllNull,
}

/// View `b` as per-row `(bool, null)` pairs if every row is boolean or
/// NULL (i.e. Kleene logic cannot raise a type error on it).
fn bool_view<'b>(b: &'b Batch<'_>) -> Option<(BoolView<'b>, Option<&'b [bool]>)> {
    let nulls = b.nulls.as_deref();
    match &b.data {
        Data::Bool(v) => Some((BoolView::Slice(v), nulls)),
        Data::Scalar(Value::Bool(x)) => Some((BoolView::Scalar(*x), nulls)),
        Data::Scalar(Value::Null) => Some((BoolView::AllNull, None)),
        _ => None,
    }
}

impl BoolView<'_> {
    /// `(value, is_null)` at `k`; the value is a placeholder when null.
    #[inline]
    fn get(&self, k: usize, nulls: Option<&[bool]>) -> (bool, bool) {
        match self {
            BoolView::Scalar(x) => (*x, nulls.is_some_and(|m| m[k])),
            BoolView::Slice(v) => (v[k], nulls.is_some_and(|m| m[k])),
            BoolView::AllNull => (false, true),
        }
    }
}

/// Kleene `AND`/`OR` as mask combination, reproducing row-wise
/// short-circuit shadowing: where the left operand decides the result
/// (`FALSE` for AND, `TRUE` for OR), right-side errors are masked out.
fn logic_kernel<'a>(is_and: bool, l: &Batch<'a>, r: &Batch<'a>, len: usize) -> Batch<'a> {
    // Constant folding: scalar ⊙ scalar computes once and broadcasts,
    // with row-wise short-circuit semantics.
    if let Some((lv, rv)) = both_scalar_no_err(l, r) {
        if matches!(&lv, Value::Bool(x) if *x != is_and) {
            return Batch::scalar(len, Value::Bool(!is_and));
        }
        return scalar_result(
            len,
            if is_and {
                kleene_and(lv, rv)
            } else {
                kleene_or(lv, rv)
            },
        );
    }
    // Mask path: error-free boolean-or-NULL operands combine
    // branch-free — value and NULL masks together encode the full
    // Kleene truth table (this covers NULLs flowing out of
    // div-by-zero comparisons, the common masked case).
    if !l.has_errs() && !r.has_errs() {
        if let (Some((av, an)), Some((bv, bn))) = (bool_view(l), bool_view(r)) {
            if an.is_none()
                && bn.is_none()
                && !matches!(av, BoolView::AllNull)
                && !matches!(bv, BoolView::AllNull)
            {
                // No NULLs anywhere: plain boolean combination.
                let data: Vec<bool> = (0..len)
                    .map(|k| {
                        let (x, y) = (av.get(k, None).0, bv.get(k, None).0);
                        if is_and {
                            x && y
                        } else {
                            x || y
                        }
                    })
                    .collect();
                return Batch {
                    len,
                    data: Data::Bool(data.into()),
                    nulls: None,
                    errs: Errs::None,
                };
            }
            let mut data = Vec::with_capacity(len);
            let mut nulls = Vec::with_capacity(len);
            for k in 0..len {
                let (x, xn) = av.get(k, an);
                let (y, yn) = bv.get(k, bn);
                // "Definitely true" / "definitely false" per side.
                let (tx, fx) = (x && !xn, !x && !xn);
                let (ty, fy) = (y && !yn, !y && !yn);
                let (t, f) = if is_and {
                    (tx && ty, fx || fy)
                } else {
                    (tx || ty, fx && fy)
                };
                data.push(t);
                nulls.push(!(t || f));
            }
            return Batch {
                len,
                data: Data::Bool(data.into()),
                nulls: Some(nulls),
                errs: Errs::None,
            };
        }
    }
    // Per-row fallback: errors present or non-boolean operands.
    let short = !is_and; // AND short-circuits on FALSE, OR on TRUE.
    let rows = (0..len)
        .map(|k| -> TableResult<Value> {
            if let Some(e) = l.err_at(k) {
                return Err(e.clone());
            }
            if l.bool_raw_at(k) == Some(short) {
                return Ok(Value::Bool(short));
            }
            if let Some(e) = r.err_at(k) {
                return Err(e.clone());
            }
            let lv = l.value_at(k)?;
            let rv = r.value_at(k)?;
            if is_and {
                kleene_and(lv, rv)
            } else {
                kleene_or(lv, rv)
            }
        })
        .collect();
    Batch::from_rows(rows)
}

/// Generic per-row fallback sharing `apply_binary` with the row-wise
/// evaluator (string arithmetic, incomparable type pairs, …).
fn slow_binary<'a>(op: BinaryOp, l: &Batch<'a>, r: &Batch<'a>, len: usize) -> Batch<'a> {
    let rows = (0..len)
        .map(|k| -> TableResult<Value> {
            if let Some(e) = l.err_at(k) {
                return Err(e.clone());
            }
            if let Some(e) = r.err_at(k) {
                return Err(e.clone());
            }
            apply_binary(op, l.value_at(k)?, r.value_at(k)?)
        })
        .collect();
    Batch::from_rows(rows)
}

fn unary_kernel<'a>(op: UnaryOp, b: Batch<'a>, len: usize) -> Batch<'a> {
    match (op, &b.data) {
        // NOT over a boolean mask: flip in place; NULL and error masks
        // carry through unchanged (NOT NULL = NULL).
        (UnaryOp::Not, Data::Bool(v)) => Batch {
            len,
            data: Data::Bool(v.iter().map(|&x| !x).collect::<Vec<_>>().into()),
            nulls: b.nulls,
            errs: b.errs,
        },
        // Negation over floats: branch-free map under the masks.
        (UnaryOp::Neg, Data::Float(v)) => Batch {
            len,
            data: Data::Float(v.iter().map(|&x| -x).collect::<Vec<_>>().into()),
            nulls: b.nulls,
            errs: b.errs,
        },
        (UnaryOp::Neg, Data::Int(v)) => {
            let mut errs = b.errs.clone();
            let mut data = vec![0i64; len];
            for (k, slot) in data.iter_mut().enumerate() {
                if row_has_problem(&errs, &b.nulls, k) {
                    continue;
                }
                match v[k].checked_neg() {
                    Some(x) => *slot = x,
                    None => set_row_err(
                        &mut errs,
                        k,
                        len,
                        TableError::Arithmetic {
                            message: "integer overflow",
                        },
                    ),
                }
            }
            Batch {
                len,
                data: Data::Int(data.into()),
                nulls: b.nulls,
                errs,
            }
        }
        _ => {
            let rows = (0..len)
                .map(|k| -> TableResult<Value> {
                    if let Some(e) = b.err_at(k) {
                        return Err(e.clone());
                    }
                    eval_unary(op, b.value_at(k)?)
                })
                .collect();
            Batch::from_rows(rows)
        }
    }
}

fn call_kernel<'a>(f: Func, args: &[Expr], ctx: &VecCtx<'a>) -> Batch<'a> {
    let len = ctx.len;
    let arity = match f {
        Func::Sqrt | Func::Abs => 1,
        Func::Power => 2,
    };
    if args.len() != arity {
        return Batch::uniform_err(
            len,
            TableError::InvalidExpression {
                message: format!("{f:?} expects {arity} argument(s), got {}", args.len()),
            },
        );
    }
    let a = eval_vec(&args[0], ctx);
    match f {
        Func::Sqrt | Func::Abs => {
            if is_all_null(&a) {
                return Batch::all_null(len, a.errs);
            }
            // ABS over ints needs checked arithmetic (i64::MIN).
            if let (Func::Abs, Data::Int(v)) = (f, &a.data) {
                let mut errs = a.errs.clone();
                let mut data = vec![0i64; len];
                for (k, slot) in data.iter_mut().enumerate() {
                    if row_has_problem(&errs, &a.nulls, k) {
                        continue;
                    }
                    match v[k].checked_abs() {
                        Some(x) => *slot = x,
                        None => set_row_err(
                            &mut errs,
                            k,
                            len,
                            TableError::Arithmetic {
                                message: "integer overflow",
                            },
                        ),
                    }
                }
                return Batch {
                    len,
                    data: Data::Int(data.into()),
                    nulls: a.nulls,
                    errs,
                };
            }
            // Branch-free f64 map for the numeric non-Int-ABS cases.
            if let Some(view) = num_view(&a) {
                // ABS on a scalar Int would change type; route through
                // the slow path (scalars are cheap anyway).
                let scalar_int_abs =
                    matches!(f, Func::Abs) && matches!(&a.data, Data::Scalar(Value::Int(_)));
                if !scalar_int_abs {
                    let data: Vec<f64> = match f {
                        Func::Sqrt => (0..len).map(|k| view.get(k).sqrt()).collect(),
                        Func::Abs => (0..len).map(|k| view.get(k).abs()).collect(),
                        Func::Power => unreachable!(),
                    };
                    return Batch {
                        len,
                        data: Data::Float(data.into()),
                        nulls: a.nulls,
                        errs: a.errs,
                    };
                }
            }
            // Strings / scalar edge cases: per-row, row-wise semantics.
            let rows = (0..len)
                .map(|k| -> TableResult<Value> {
                    if let Some(e) = a.err_at(k) {
                        return Err(e.clone());
                    }
                    let v = a.value_at(k)?;
                    if v.is_null() {
                        return Ok(Value::Null);
                    }
                    match f {
                        Func::Sqrt => Ok(Value::Float(v.as_f64()?.sqrt())),
                        Func::Abs => match v {
                            Value::Int(i) => {
                                i.checked_abs()
                                    .map(Value::Int)
                                    .ok_or(TableError::Arithmetic {
                                        message: "integer overflow",
                                    })
                            }
                            other => Ok(Value::Float(other.as_f64()?.abs())),
                        },
                        Func::Power => unreachable!(),
                    }
                })
                .collect();
            Batch::from_rows(rows)
        }
        Func::Power => {
            // Row-wise POWER returns NULL for a NULL base *without
            // evaluating the exponent*: a NULL base shadows exponent
            // errors entirely.
            if is_all_null(&a) {
                return Batch::all_null(len, a.errs);
            }
            let b = eval_vec(&args[1], ctx);
            if let (Some(av), Some(bv)) = (num_view(&a), num_view(&b)) {
                if !b.has_errs() {
                    let data: Vec<f64> = (0..len).map(|k| av.get(k).powf(bv.get(k))).collect();
                    return Batch {
                        len,
                        data: Data::Float(data.into()),
                        nulls: merge_nulls(&a, &b),
                        errs: a.errs,
                    };
                }
            }
            let rows = (0..len)
                .map(|k| -> TableResult<Value> {
                    if let Some(e) = a.err_at(k) {
                        return Err(e.clone());
                    }
                    let av = a.value_at(k)?;
                    if av.is_null() {
                        return Ok(Value::Null);
                    }
                    if let Some(e) = b.err_at(k) {
                        return Err(e.clone());
                    }
                    let bv = b.value_at(k)?;
                    if bv.is_null() {
                        return Ok(Value::Null);
                    }
                    Ok(Value::Float(av.as_f64()?.powf(bv.as_f64()?)))
                })
                .collect();
            Batch::from_rows(rows)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::RowCtx;
    use crate::schema::Schema;
    use crate::table::{table_of_floats, TableBuilder};

    fn t() -> Table {
        table_of_floats(&[("x", &[1.0, 2.0, 3.0, 4.0]), ("y", &[0.0, 2.0, 0.0, 8.0])]).unwrap()
    }

    /// Structural equality for comparing the two engines (`Value`'s own
    /// `PartialEq` is SQL equality, where NULL ≠ NULL).
    fn same(a: &TableResult<Value>, b: &TableResult<Value>) -> bool {
        match (a, b) {
            (Ok(Value::Null), Ok(Value::Null)) => true,
            (Ok(Value::Float(x)), Ok(Value::Float(y))) => (x.is_nan() && y.is_nan()) || x == y,
            (Ok(x), Ok(y)) => format!("{x:?}") == format!("{y:?}"),
            (Err(x), Err(y)) => x == y,
            _ => false,
        }
    }

    fn assert_agree(e: &Expr, table: &Table) {
        let batch = eval_columnar(e, table, None);
        assert_eq!(batch.len(), table.len());
        for row in 0..table.len() {
            let rw = e.eval(RowCtx::top(table, row));
            let vc = batch.value_at(row);
            assert!(
                same(&rw, &vc),
                "row {row}: `{e}` row-wise {rw:?} vs vectorized {vc:?}"
            );
        }
    }

    #[test]
    fn comparison_masks_match_row_wise() {
        let table = t();
        for e in [
            Expr::col("x").gt(Expr::lit(2.0)),
            Expr::col("x").le(Expr::col("y")),
            Expr::col("x").eq(Expr::lit(3.0)),
            Expr::col("x").ne(Expr::col("y")),
        ] {
            assert_agree(&e, &table);
        }
    }

    #[test]
    fn arithmetic_matches_row_wise() {
        let table = t();
        for e in [
            Expr::col("x").add(Expr::col("y")).mul(Expr::lit(2.0)),
            Expr::col("x").sub(Expr::lit(1.5)),
            Expr::col("x").div(Expr::col("y")), // y holds zeros → NULL rows
            Expr::col("x").neg().abs().sqrt(),
            Expr::col("x").power(Expr::lit(2.0)),
        ] {
            assert_agree(&e, &table);
        }
    }

    #[test]
    fn div_by_zero_null_flows_through_logic_masks() {
        // (x / y > 1) AND (x > 0): rows where y = 0 have a NULL left
        // side; NULL AND TRUE = NULL → eval_bool false.
        let table = t();
        let e = Expr::col("x")
            .div(Expr::col("y"))
            .gt(Expr::lit(1.0))
            .and(Expr::col("x").gt(Expr::lit(0.0)));
        assert_agree(&e, &table);
        let mask = eval_bool_columnar(&e, &table, None).unwrap();
        let row_wise: Vec<bool> = (0..table.len())
            .map(|i| e.eval_bool(RowCtx::top(&table, i)).unwrap())
            .collect();
        assert_eq!(mask, row_wise);
        assert_eq!(mask, vec![false, false, false, false]);
    }

    #[test]
    fn and_false_shadows_right_errors() {
        // Row-wise AND short-circuits on FALSE and never sees the bad
        // column; the vectorized kernel must mask that error too.
        let table = t();
        let e = Expr::col("x")
            .gt(Expr::lit(100.0))
            .and(Expr::col("nope").gt(Expr::lit(0.0)));
        assert_agree(&e, &table);
        assert_eq!(
            eval_bool_columnar(&e, &table, None).unwrap(),
            vec![false; 4]
        );
        // OR TRUE shadows symmetrically.
        let e = Expr::col("x")
            .gt(Expr::lit(0.0))
            .or(Expr::col("nope").gt(Expr::lit(0.0)));
        assert_eq!(eval_bool_columnar(&e, &table, None).unwrap(), vec![true; 4]);
        // Without the shadow, the error surfaces (first row in order).
        let e = Expr::col("x")
            .gt(Expr::lit(0.0))
            .and(Expr::col("nope").gt(Expr::lit(0.0)));
        assert!(matches!(
            eval_bool_columnar(&e, &table, None),
            Err(TableError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn selection_vector_gathers_and_reports_oob() {
        let table = t();
        let e = Expr::col("x").ge(Expr::lit(2.0));
        assert_eq!(
            eval_bool_columnar(&e, &table, Some(&[3, 0, 3, 1])).unwrap(),
            vec![true, false, true, true]
        );
        let batch = eval_columnar(&e, &table, Some(&[1, 99]));
        assert!(batch.value_at(0).is_ok());
        assert!(matches!(
            batch.value_at(1),
            Err(TableError::RowIndexOutOfRange { index: 99, .. })
        ));
        // Empty selections never touch the table.
        assert!(eval_bool_columnar(&e, &table, Some(&[]))
            .unwrap()
            .is_empty());
        // … even for structurally broken expressions (matches the
        // row-wise loop, which would iterate zero rows).
        let bad = Expr::col("nope").gt(Expr::lit(0.0));
        assert!(eval_bool_columnar(&bad, &table, Some(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn integer_kernels_are_checked() {
        let mut b = TableBuilder::new(Schema::from_pairs(&[("i", DataType::Int)]).unwrap());
        for v in [1i64, i64::MAX, i64::MIN, -7] {
            b.push_row(vec![Value::Int(v)]).unwrap();
        }
        let table = b.finish().unwrap();
        for e in [
            Expr::col("i").add(Expr::lit(1i64)),
            Expr::col("i").mul(Expr::lit(2i64)),
            Expr::col("i").neg(),
            Expr::col("i").abs(),
            Expr::col("i").sub(Expr::lit(i64::MAX)),
        ] {
            assert_agree(&e, &table);
        }
        // Overflow is a per-row error, not a batch failure.
        let batch = eval_columnar(&Expr::col("i").add(Expr::lit(1i64)), &table, None);
        assert!(batch.value_at(0).is_ok());
        assert!(matches!(
            batch.value_at(1),
            Err(TableError::Arithmetic { .. })
        ));
        assert!(batch.value_at(2).is_ok());
    }

    #[test]
    fn mixed_and_string_types_match_row_wise() {
        let schema = Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("b", DataType::Bool),
            ("s", DataType::Str),
        ])
        .unwrap();
        let mut builder = TableBuilder::new(schema);
        for (i, f, b, s) in [
            (1i64, 0.5, true, "apple"),
            (2, 2.0, false, "banana"),
            (3, -1.0, true, "apple"),
        ] {
            builder
                .push_row(vec![
                    Value::Int(i),
                    Value::Float(f),
                    Value::Bool(b),
                    Value::str(s),
                ])
                .unwrap();
        }
        let table = builder.finish().unwrap();
        for e in [
            Expr::col("i").lt(Expr::col("f")),     // int vs float
            Expr::col("s").eq(Expr::lit("apple")), // string compare
            Expr::col("s").lt(Expr::lit("b")),     // string ordering
            Expr::col("b").eq(Expr::lit(true)),    // bool compare
            Expr::col("b").and(Expr::col("i").gt(Expr::lit(1i64))),
            Expr::col("s").gt(Expr::col("i")), // incomparable → error
            Expr::col("s").add(Expr::lit(1.0)), // string arithmetic → error
            Expr::col("b").add(Expr::col("f")), // bool coerces in arithmetic
            Expr::col("i").not(),              // NOT non-bool → error
        ] {
            assert_agree(&e, &table);
        }
    }

    #[test]
    fn null_literals_propagate() {
        let table = t();
        let null = || Expr::Literal(Value::Null);
        for e in [
            null().add(Expr::col("x")),
            null().and(Expr::col("x").gt(Expr::lit(2.0))),
            null().or(Expr::col("x").gt(Expr::lit(2.0))),
            null().not(),
            null().lt(Expr::col("x")),
            null().power(Expr::col("nope")), // NULL base shadows bad exponent
            Expr::col("x").power(null()),
            null().sqrt(),
        ] {
            assert_agree(&e, &table);
        }
    }

    #[test]
    fn nan_comparison_errors_per_row() {
        let table = table_of_floats(&[("x", &[1.0, f64::NAN, 3.0])]).unwrap();
        let e = Expr::col("x").lt(Expr::lit(2.0));
        assert_agree(&e, &table);
        let batch = eval_columnar(&e, &table, None);
        assert_eq!(batch.value_at(0).unwrap(), Value::Bool(true));
        assert!(matches!(
            batch.value_at(1),
            Err(TableError::TypeMismatch { .. })
        ));
        assert_eq!(batch.value_at(2).unwrap(), Value::Bool(false));
    }

    #[test]
    fn subquery_vectorized_inner_scan_agrees() {
        let table = Arc::new(t());
        // COUNT(*) WHERE x >= o.x — classic correlated shape.
        let e = Expr::count_where(Arc::clone(&table), Expr::col("x").ge(Expr::outer("x")))
            .le(Expr::lit(2i64));
        assert_agree(&e, &table);
        // SUM / AVG / MIN / MAX with a filter referencing the outer row.
        for func in [AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            let e = Expr::subquery(
                Arc::clone(&table),
                Some(Expr::col("x").gt(Expr::outer("x"))),
                func,
                Some(Expr::col("y")),
            );
            assert_agree(&e, &table);
        }
        // Missing argument errors only when a row passes the filter.
        let never = Expr::subquery(
            Arc::clone(&table),
            Some(Expr::lit(false)),
            AggFunc::Sum,
            None,
        );
        assert_agree(&never, &table);
        let always = Expr::subquery(Arc::clone(&table), None, AggFunc::Sum, None);
        assert_agree(&always, &table);
    }

    #[test]
    fn outer_reference_without_binding_is_uniform_error() {
        let table = t();
        let e = Expr::outer("x").gt(Expr::lit(0.0));
        let batch = eval_columnar(&e, &table, None);
        for row in 0..table.len() {
            assert!(matches!(batch.value_at(row), Err(TableError::NoOuterRow)));
        }
        assert_agree(&e, &table);
    }

    #[test]
    fn truthy_surfaces_first_error_in_row_order() {
        let table = t();
        // Comparison with a string literal errors on every row; the
        // batch result must match the row-wise loop's first error.
        let e = Expr::col("x").gt(Expr::lit("oops"));
        let row_wise: TableResult<Vec<bool>> = (0..table.len())
            .map(|i| e.eval_bool(RowCtx::top(&table, i)))
            .collect();
        assert_eq!(eval_bool_columnar(&e, &table, None), row_wise);
    }

    #[test]
    fn scalar_subtrees_constant_fold() {
        let table = t();
        let e = Expr::lit(2.0).mul(Expr::lit(3.0)).le(Expr::col("x"));
        assert_agree(&e, &table);
        let folded = eval_columnar(&Expr::lit(2.0).mul(Expr::lit(3.0)), &table, None);
        assert!(matches!(folded.data, Data::Scalar(Value::Float(v)) if v == 6.0));
        // Scalar AND/OR fold too, with short-circuit semantics.
        let and = eval_columnar(&Expr::lit(false).and(Expr::lit(true)), &table, None);
        assert!(matches!(and.data, Data::Scalar(Value::Bool(false))));
        let or = eval_columnar(
            &Expr::lit(true).or(Expr::Literal(Value::Null)),
            &table,
            None,
        );
        assert!(matches!(or.data, Data::Scalar(Value::Bool(true))));
    }

    #[test]
    fn full_table_column_references_are_zero_copy() {
        // A whole-table column reference must borrow storage, not clone
        // it — the hot-path scans depend on this.
        let table = t();
        let batch = eval_columnar(&Expr::col("x"), &table, None);
        assert!(matches!(batch.data, Data::Float(Cow::Borrowed(_))));
        // Selection gathers necessarily own their buffers.
        let batch = eval_columnar(&Expr::col("x"), &table, Some(&[0, 2]));
        assert!(matches!(batch.data, Data::Float(Cow::Owned(_))));
    }

    #[test]
    fn null_bearing_logic_stays_on_the_mask_path() {
        // NULLs from div-by-zero flowing into AND/OR combine as masks —
        // no per-row fallback — and the result still matches row-wise
        // evaluation on the full Kleene table.
        let table = t(); // y holds zeros
        let null_side = Expr::col("x").div(Expr::col("y")).gt(Expr::lit(0.5));
        for e in [
            null_side.clone().and(Expr::col("x").gt(Expr::lit(1.5))),
            null_side.clone().or(Expr::col("x").gt(Expr::lit(1.5))),
            null_side.clone().and(Expr::Literal(Value::Null)),
            null_side.clone().or(Expr::Literal(Value::Null)),
            Expr::Literal(Value::Null).and(null_side.clone()),
            null_side.clone().and(null_side.clone().not()),
        ] {
            assert_agree(&e, &table);
            // The kernel output is a boolean mask with a NULL mask, not
            // a from_rows reconstruction artifact — errs stay None.
            let batch = eval_columnar(&e, &table, None);
            assert!(matches!(batch.errs, Errs::None));
            assert!(matches!(batch.data, Data::Bool(_) | Data::Scalar(_)));
        }
    }
}
