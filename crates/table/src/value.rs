//! Scalar values and data types.

use crate::error::{TableError, TableResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The type of a column or scalar value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "bool"),
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Str => write!(f, "str"),
        }
    }
}

/// A dynamically-typed scalar value.
///
/// `Null` propagates through arithmetic and comparisons the SQL way
/// (any operation with `Null` yields `Null`; predicates treat `Null`
/// as false).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean value.
    Bool(bool),
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value (cheaply cloneable).
    Str(Arc<str>),
}

impl Value {
    /// String value from anything string-like.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// The value's data type, or `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints coerce to floats).
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for non-numeric values.
    pub fn as_f64(&self) -> TableResult<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(x) => Ok(*x),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(TableError::TypeMismatch {
                expected: "numeric",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Integer view (floats with integral value coerce).
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for non-integral values.
    pub fn as_i64(&self) -> TableResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(x) if x.fract() == 0.0 && x.is_finite() => Ok(*x as i64),
            other => Err(TableError::TypeMismatch {
                expected: "integer",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Boolean view.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for non-boolean values.
    pub fn as_bool(&self) -> TableResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(TableError::TypeMismatch {
                expected: "bool",
                found: format!("{other:?}"),
            }),
        }
    }

    /// Boolean view where `Null` counts as `false` (SQL predicate
    /// semantics).
    ///
    /// # Errors
    ///
    /// Returns a type mismatch for non-boolean, non-null values.
    pub fn truthy(&self) -> TableResult<bool> {
        match self {
            Value::Null => Ok(false),
            other => other.as_bool(),
        }
    }

    /// SQL-style three-valued comparison: `None` if either side is
    /// `Null` or the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => a.partial_cmp(b),
            (Int(a), Int(b)) => a.partial_cmp(b),
            (Str(a), Str(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            _ => None,
        }
    }

    /// A hashable grouping key: normalizes `Int`/`Float` so `1` and `1.0`
    /// group together, and normalizes NaN.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(i) => GroupKey::Float((*i as f64).to_bits()),
            Value::Float(x) => {
                let x = if x.is_nan() { f64::NAN } else { *x };
                GroupKey::Float(x.to_bits())
            }
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }
}

/// Hashable normalization of a [`Value`] used for DISTINCT / GROUP BY.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// NULL key (all NULLs group together, as SQL GROUP BY does).
    Null,
    /// Boolean key.
    Bool(bool),
    /// Numeric key by bit pattern of the f64 normalization.
    Float(u64),
    /// String key.
    Str(Arc<str>),
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.sql_cmp(other) == Some(std::cmp::Ordering::Equal)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Float(2.5).as_f64().unwrap(), 2.5);
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert_eq!(Value::Float(4.0).as_i64().unwrap(), 4);
        assert!(Value::Float(4.5).as_i64().is_err());
        assert!(Value::str("x").as_f64().is_err());
        assert!(Value::Null.as_bool().is_err());
        assert!(!Value::Null.truthy().unwrap());
    }

    #[test]
    fn sql_comparison_mixes_numeric_types() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::str("a").sql_cmp(&Value::str("b")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn equality_follows_sql_semantics() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Null, Value::Null); // NULL != NULL
        assert_eq!(Value::str("a"), Value::str("a"));
    }

    #[test]
    fn group_keys_normalize_numerics() {
        assert_eq!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Int(2).group_key());
        // NaNs group together.
        assert_eq!(
            Value::Float(f64::NAN).group_key(),
            Value::Float(f64::NAN).group_key()
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(DataType::Float.to_string(), "float");
    }
}
