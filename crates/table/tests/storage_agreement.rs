//! Property tests: the out-of-core paged scan (`lts_table::storage`)
//! must be **bit-identical** to the in-RAM partitioned scan — labels,
//! NULL handling, and first-error-in-row-order alike — for every page
//! size, partition count, and buffer-pool size (including an
//! adversarially tiny pool that forces an eviction on nearly every
//! fault), with zone-map skipping on or off.

use lts_table::vector::eval_bool_columnar;
use lts_table::{
    AggFunc, DataType, Expr, Field, PagedTable, PartitionedTable, Schema, Table, TableBuilder,
    Value,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Generators (the vector_agreement schema, compacted)
// ---------------------------------------------------------------------

/// A random mixed-schema table: floats (with zeros and a NaN-free
/// negative), ints (with overflow extremes), bools, and strings.
fn arb_table() -> impl Strategy<Value = Table> {
    let float_val = prop_oneof![
        4 => -4.0f64..4.0,
        1 => Just(0.0f64),
        1 => Just(-1.5f64),
    ];
    let int_val = prop_oneof![
        4 => -5i64..5,
        1 => Just(i64::MAX),
        1 => Just(i64::MIN),
    ];
    let str_val = prop_oneof![Just("apple"), Just("banana"), Just("")];
    proptest::collection::vec(
        (
            float_val.clone(),
            float_val,
            int_val,
            any::<bool>(),
            str_val,
        ),
        1..32,
    )
    .prop_map(|rows| {
        let schema = Schema::new(vec![
            Field::new("f", DataType::Float),
            Field::new("g", DataType::Float),
            Field::new("i", DataType::Int),
            Field::new("b", DataType::Bool),
            Field::new("s", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (f, g, i, bl, s) in rows {
            b.push_row(vec![
                Value::Float(f),
                Value::Float(g),
                Value::Int(i),
                Value::Bool(bl),
                Value::str(s),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    })
}

/// A random expression over that schema — comparisons (the zone-map
/// shapes), arithmetic (error paths: div-by-zero NULLs, overflow),
/// booleans, ill-typed subtrees, and an unknown column.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        3 => prop_oneof![Just("f"), Just("g"), Just("i"), Just("b"), Just("s")]
            .prop_map(Expr::col),
        1 => Just(Expr::col("missing")), // unknown column → error path
        2 => (-4.0f64..4.0).prop_map(Expr::lit),
        1 => prop_oneof![-5i64..5, Just(i64::MAX)].prop_map(Expr::lit),
        1 => any::<bool>().prop_map(Expr::lit),
        1 => Just(Expr::Literal(Value::Null)),
        1 => Just(Expr::lit("apple")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.div(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.lt(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.le(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.gt(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.ge(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
            inner.clone().prop_map(|a| a.sqrt()),
        ]
    })
}

/// A unique scratch directory per proptest case (cases run within one
/// process; the counter keeps shrink replays isolated too).
fn fresh_dir() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let k = SEQ.fetch_add(1, Ordering::SeqCst);
    let dir =
        std::env::temp_dir().join(format!("lts_storage_agreement_{}_{k}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whole-table scans: `PagedTable::par_eval_bool` / `par_count`
    /// agree with the in-RAM `PartitionedTable` on labels *and* on the
    /// surfaced error, for every page size × partition count × pool
    /// size (pool = 1 is the adversarial always-evicting cache), with
    /// zone skipping on and off.
    #[test]
    fn paged_scan_is_bit_identical_to_inram(
        table in arb_table(),
        e in arb_expr(),
        page_rows in 1usize..17,
        parts in 1usize..7,
        pool in prop_oneof![2 => Just(1usize), 3 => 2usize..12],
        zone in any::<bool>(),
    ) {
        let dir = fresh_dir();
        PagedTable::create(&dir, &table, page_rows).unwrap();
        let paged = PagedTable::open(&dir, pool)
            .unwrap()
            .with_zone_skipping(zone);
        let shared = Arc::new(table);
        let pt = PartitionedTable::new(Arc::clone(&shared), parts);
        prop_assert_eq!(
            &paged.par_eval_bool(&e),
            &pt.par_eval_bool(&e),
            "page_rows {} pool {} zone {}: `{}`",
            page_rows, pool, zone, e
        );
        prop_assert_eq!(paged.par_count(&e), pt.par_count(&e), "`{}`", e);
        // A second scan over the now-warm (or still-thrashing) pool
        // must not diverge from the first.
        prop_assert_eq!(&paged.par_eval_bool(&e), &pt.par_eval_bool(&e), "rescan `{}`", e);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Targeted reads: `eval_bool_ids` (the stage-2 sampled-draw entry
    /// point) agrees with the serial selection-vector scan for random
    /// in-range id lists with duplicates and arbitrary order.
    #[test]
    fn paged_id_scan_matches_serial(
        table in arb_table(),
        e in arb_expr(),
        page_rows in 1usize..17,
        picks in proptest::collection::vec(0usize..1024, 0..48),
    ) {
        let n = table.len();
        let ids: Vec<usize> = picks.into_iter().map(|p| p % n).collect();
        let dir = fresh_dir();
        PagedTable::create(&dir, &table, page_rows).unwrap();
        let paged = PagedTable::open(&dir, 2).unwrap(); // tiny pool
        prop_assert_eq!(
            paged.eval_bool_ids(&e, &ids),
            eval_bool_columnar(&e, &table, Some(&ids)),
            "page_rows {}: `{}`",
            page_rows, e
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Correlated aggregate subqueries (the paper's query shape): the
    /// page-local evaluation must agree with the in-RAM scan — the
    /// subquery's inner table is embedded in the expression, so paging
    /// the outer table must not change any count.
    #[test]
    fn paged_subquery_scan_agrees(
        table in arb_table(),
        filter in arb_expr(),
        func in prop_oneof![Just(AggFunc::Count), Just(AggFunc::Sum), Just(AggFunc::Min)],
        k in -3i64..6,
        page_rows in 1usize..9,
    ) {
        let shared = Arc::new(table);
        let sub = Expr::subquery(Arc::clone(&shared), Some(filter), func, None);
        let e = sub.ge(Expr::lit(k));
        let dir = fresh_dir();
        PagedTable::create(&dir, &shared, page_rows).unwrap();
        let paged = PagedTable::open(&dir, 3).unwrap();
        let pt = PartitionedTable::new(Arc::clone(&shared), 3);
        prop_assert_eq!(&paged.par_eval_bool(&e), &pt.par_eval_bool(&e), "`{}`", e);
        std::fs::remove_dir_all(&dir).ok();
    }
}
