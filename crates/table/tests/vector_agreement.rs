//! Property tests: the vectorized engine (`lts_table::vector`) must be
//! **result-identical** to row-wise `Expr::eval` — per row, on values
//! *and* on which rows error (including div-by-zero NULLs, integer
//! overflow, type mismatches, and errors shadowed by AND/OR
//! short-circuiting) — and the partitioned parallel scan
//! (`lts_table::partition`) must agree row-for-row with both, for
//! every partition count.

use lts_table::partition::{par_eval_bool_ids, PartitionedTable};
use lts_table::vector::{eval_bool_columnar, eval_columnar};
use lts_table::{
    AggFunc, DataType, Expr, Field, RowCtx, Schema, Table, TableBuilder, TableResult, Value,
};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A random table over a mixed schema: two float columns (with zeros to
/// exercise div-by-zero NULLs), two int columns (with extremes to
/// exercise checked arithmetic), a bool column, and a string column.
fn arb_table() -> impl Strategy<Value = Table> {
    let float_val = prop_oneof![
        4 => -4.0f64..4.0,
        1 => Just(0.0f64),
        1 => Just(-1.5f64),
    ];
    let int_val = prop_oneof![
        4 => -5i64..5,
        1 => Just(i64::MAX),
        1 => Just(i64::MIN),
    ];
    let str_val = prop_oneof![Just("apple"), Just("banana"), Just("cherry"), Just(""),];
    proptest::collection::vec(
        (
            float_val.clone(),
            float_val,
            int_val.clone(),
            int_val,
            any::<bool>(),
            str_val,
        ),
        1..24,
    )
    .prop_map(|rows| {
        let schema = Schema::new(vec![
            Field::new("f", DataType::Float),
            Field::new("g", DataType::Float),
            Field::new("i", DataType::Int),
            Field::new("j", DataType::Int),
            Field::new("b", DataType::Bool),
            Field::new("s", DataType::Str),
        ])
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (f, g, i, j, bl, s) in rows {
            b.push_row(vec![
                Value::Float(f),
                Value::Float(g),
                Value::Int(i),
                Value::Int(j),
                Value::Bool(bl),
                Value::str(s),
            ])
            .unwrap();
        }
        b.finish().unwrap()
    })
}

/// A random expression over the generated schema — all operators, all
/// type combinations (including deliberately ill-typed subtrees, NULL
/// literals, and unknown columns so the error paths are exercised).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        3 => prop_oneof![
            Just("f"), Just("g"), Just("i"), Just("j"), Just("b"), Just("s"),
        ].prop_map(Expr::col),
        1 => Just(Expr::col("missing")), // unknown column → error path
        2 => (-4.0f64..4.0).prop_map(Expr::lit),
        1 => Just(Expr::lit(0.0f64)),
        1 => prop_oneof![-5i64..5, Just(i64::MAX), Just(i64::MIN)].prop_map(Expr::lit),
        1 => any::<bool>().prop_map(Expr::lit),
        1 => Just(Expr::Literal(Value::Null)),
        1 => prop_oneof![Just("apple"), Just("pear")].prop_map(Expr::lit),
    ];
    leaf.prop_recursive(3, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.div(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.ne(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.lt(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.le(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.gt(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.ge(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
            inner.clone().prop_map(|a| a.neg()),
            inner.clone().prop_map(|a| a.abs()),
            inner.clone().prop_map(|a| a.sqrt()),
            (inner.clone(), inner).prop_map(|(a, b)| a.power(b)),
        ]
    })
}

// ---------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------

/// Structural result equality. `Value`'s own `PartialEq` is SQL
/// equality (NULL ≠ NULL, 1 == 1.0), which is wrong for checking that
/// two evaluators produced the *same* result.
fn same_result(a: &TableResult<Value>, b: &TableResult<Value>) -> bool {
    match (a, b) {
        (Ok(Value::Null), Ok(Value::Null)) => true,
        (Ok(Value::Float(x)), Ok(Value::Float(y))) => (x.is_nan() && y.is_nan()) || x == y,
        (Ok(x), Ok(y)) => format!("{x:?}") == format!("{y:?}"),
        (Err(x), Err(y)) => x == y,
        _ => false,
    }
}

fn assert_rows_agree(e: &Expr, table: &Table) -> Result<(), TestCaseError> {
    let batch = eval_columnar(e, table, None);
    prop_assert_eq!(batch.len(), table.len());
    for row in 0..table.len() {
        let rw = e.eval(RowCtx::top(table, row));
        let vc = batch.value_at(row);
        prop_assert!(
            same_result(&rw, &vc),
            "row {}: `{}`\n  row-wise:   {:?}\n  vectorized: {:?}",
            row,
            e,
            rw,
            vc
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Full-table agreement: every row's value *and* every row's error.
    #[test]
    fn vectorized_agrees_with_row_wise(table in arb_table(), e in arb_expr()) {
        assert_rows_agree(&e, &table)?;
    }

    /// Selection-vector agreement, including duplicates and
    /// out-of-range row ids, against a literal per-row loop — and the
    /// boolean collapse propagates exactly the first error in order.
    #[test]
    fn selection_and_bool_collapse_agree(
        table in arb_table(),
        e in arb_expr(),
        picks in proptest::collection::vec(0usize..40, 0..32),
    ) {
        let idxs: Vec<usize> = picks; // may exceed table.len() → error rows
        let batch = eval_columnar(&e, &table, Some(&idxs));
        prop_assert_eq!(batch.len(), idxs.len());
        for (k, &i) in idxs.iter().enumerate() {
            // Out-of-range ids error per row through column access on
            // both paths.
            let rw = e.eval(RowCtx::top(&table, i));
            let vc = batch.value_at(k);
            prop_assert!(
                same_result(&rw, &vc),
                "pick {} (row {}): `{}`\n  row-wise:   {:?}\n  vectorized: {:?}",
                k, i, e, rw, vc
            );
        }
        // eval_bool_columnar ≡ the default ObjectPredicate::eval_batch
        // loop (first error in index order, NULL → false).
        let row_wise: TableResult<Vec<bool>> = idxs
            .iter()
            .map(|&i| e.eval_bool(RowCtx::top(&table, i)))
            .collect();
        let vectorized = eval_bool_columnar(&e, &table, Some(&idxs));
        prop_assert_eq!(&vectorized, &row_wise, "`{}`", e);
    }

    /// The partitioned parallel scan agrees row-for-row — values, NULL
    /// rows, and error rows — with both the single-partition vectorized
    /// path and the interpreted evaluator, for every partition count
    /// (including degenerate ones: more partitions than rows).
    #[test]
    fn partitioned_scan_agrees_with_serial_and_interpreted(
        table in arb_table(),
        e in arb_expr(),
        parts in 1usize..9,
    ) {
        let shared = Arc::new(table);
        let serial = eval_columnar(&e, &shared, None);
        let pt = PartitionedTable::new(Arc::clone(&shared), parts);
        prop_assert_eq!(pt.n_partitions(), parts);
        let batches = pt.par_eval_batches(&e);
        let mut row = 0usize;
        for (p, batch) in batches.iter().enumerate() {
            let range = pt.range(p);
            prop_assert_eq!(batch.len(), range.len(), "partition {} length", p);
            for k in 0..batch.len() {
                let rw = e.eval(RowCtx::top(&shared, row));
                let vc = serial.value_at(row);
                let pc = batch.value_at(k);
                prop_assert!(
                    same_result(&rw, &pc),
                    "parts {} partition {} local row {} (global {}): `{}`\n  row-wise:    {:?}\n  partitioned: {:?}",
                    parts, p, k, row, e, rw, pc
                );
                prop_assert!(
                    same_result(&vc, &pc),
                    "parts {} global row {}: `{}`\n  serial:      {:?}\n  partitioned: {:?}",
                    parts, row, e, vc, pc
                );
                row += 1;
            }
        }
        prop_assert_eq!(row, shared.len(), "partitions must cover every row exactly once");
        // Boolean collapse: identical labels and identical first error.
        let serial_bool = eval_bool_columnar(&e, &shared, None);
        prop_assert_eq!(&pt.par_eval_bool(&e), &serial_bool, "`{}`", e);
        // Count: identical value and identical error.
        let serial_count = serial_bool.map(|m| m.iter().filter(|&&l| l).count());
        prop_assert_eq!(pt.par_count(&e), serial_count, "`{}`", e);
    }

    /// The chunked id-list scan (the `ExprPredicate::eval_batch` fast
    /// path) agrees with the serial selection-vector scan for random id
    /// lists — duplicates and out-of-range ids included.
    #[test]
    fn partitioned_id_scan_agrees_with_serial(
        table in arb_table(),
        e in arb_expr(),
        picks in proptest::collection::vec(0usize..40, 0..48),
    ) {
        let serial = eval_bool_columnar(&e, &table, Some(&picks));
        prop_assert_eq!(par_eval_bool_ids(&e, &table, &picks), serial, "`{}`", e);
    }

    /// Correlated aggregate subqueries: the vectorized inner scan must
    /// agree with the interpreted nested loop for every aggregate
    /// function, filter shape, and error case.
    #[test]
    fn subquery_vectorization_agrees(
        table in arb_table(),
        filter in arb_expr(),
        func in prop_oneof![
            Just(AggFunc::Count),
            Just(AggFunc::Sum),
            Just(AggFunc::Avg),
            Just(AggFunc::Min),
            Just(AggFunc::Max),
        ],
        with_arg in any::<bool>(),
        k in -3i64..6,
    ) {
        let shared = Arc::new(table);
        let arg = if with_arg { Some(Expr::col("f").add(Expr::col("i"))) } else { None };
        let sub = Expr::subquery(Arc::clone(&shared), Some(filter), func, arg);
        let e = sub.ge(Expr::lit(k));
        assert_rows_agree(&e, &shared)?;
    }
}
