//! The [`Snapshot`] delta algebra under real concurrency.
//!
//! `ScanSnapshot` and `BufferSnapshot` are read off table-wide atomics,
//! so concurrent scans interleave arbitrarily in the raw counters. The
//! contract that survives interleaving is the *algebra*:
//!
//! * `before.merge(&after.delta(&before)) == after` for monotone
//!   counters (merge inverts delta),
//! * deltas of adjacent spans merge to the delta of the enclosing
//!   span, and
//! * the concurrent-phase delta totals are exact even though the
//!   hit/miss *split* is interleaving-dependent: every scan touches
//!   every page exactly once (evaluated or zone-skipped), and every
//!   evaluated page costs a fixed number of buffer accesses.

use lts_table::{
    parse_condition, DataType, Field, PagedTable, Schema, Snapshot as _, Table, TableBuilder,
    TableRegistry, Value,
};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lts_snapshot_delta_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// 640 rows of a single int column, paged 64 rows each → 10 pages.
fn open_table(tag: &str, pool_pages: usize) -> PagedTable {
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]).unwrap();
    let mut b = TableBuilder::new(schema);
    for i in 0..640i64 {
        b.push_row(vec![Value::Int(i)]).unwrap();
    }
    let table: Table = b.finish().unwrap();
    let dir = temp_dir(tag);
    PagedTable::create(&dir, &table, 64).unwrap();
    PagedTable::open(&dir, pool_pages).unwrap()
}

#[test]
fn merge_inverts_delta_and_adjacent_spans_compose() {
    let t = open_table("compose", 4);
    // `x < 1000` is true everywhere: zone maps prove nothing, every
    // page is evaluated.
    let expr = parse_condition("x < 1000", &TableRegistry::new()).unwrap();

    let s0 = t.scan_snapshot();
    let b0 = t.buffer_snapshot();
    t.par_count(&expr).unwrap();
    let s1 = t.scan_snapshot();
    let b1 = t.buffer_snapshot();
    t.par_count(&expr).unwrap();
    t.par_count(&expr).unwrap();
    let s2 = t.scan_snapshot();

    // merge inverts delta on the real counters.
    assert_eq!(s0.merge(&s1.delta(&s0)), s1);
    assert_eq!(s1.merge(&s2.delta(&s1)), s2);
    assert_eq!(b0.hits + b1.delta(&b0).hits, b1.hits);
    assert_eq!(b0.misses + b1.delta(&b0).misses, b1.misses);

    // Adjacent spans compose: delta(0→1) ⊕ delta(1→2) == delta(0→2).
    assert_eq!(s1.delta(&s0).merge(&s2.delta(&s1)), s2.delta(&s0));

    // One scan = 10 evaluated pages; the second span holds two scans.
    assert_eq!(s1.delta(&s0).pages_evaluated, 10);
    assert_eq!(s2.delta(&s1).pages_evaluated, 20);
    assert_eq!(s2.delta(&s1).pages_skipped, 0);
}

#[test]
fn zone_skips_partition_the_page_count() {
    let t = open_table("skip", 4);
    // Only the first page (rows 0..64) can contain x < 10: nine of the
    // ten pages are provably false and skipped.
    let expr = parse_condition("x < 10", &TableRegistry::new()).unwrap();
    let s0 = t.scan_snapshot();
    assert_eq!(t.par_count(&expr).unwrap(), 10);
    let d = t.scan_snapshot().delta(&s0);
    assert_eq!(d.pages_evaluated, 1);
    assert_eq!(d.pages_skipped, 9);
    assert_eq!(d.pages_evaluated + d.pages_skipped, t.n_pages() as u64);
}

#[test]
fn observed_scans_emit_page_and_buffer_deltas() {
    let t = open_table("observed", 4);
    let expr = parse_condition("x < 10", &TableRegistry::new()).unwrap();
    // Uninstrumented scans emit nothing; under a collector each scan
    // emits its span's counter deltas as trace events. Page counts are
    // content-pure (zone-map proofs) and thus asserted; buffer hits
    // and misses are interleaving-dependent `wall_*` fields.
    let (count, events) = lts_obs::trace::collect(|| t.par_count(&expr).unwrap());
    assert_eq!(count, 10);
    assert!(events.iter().any(|e| matches!(
        e,
        lts_obs::TraceEvent::Pages {
            evaluated: 1,
            skipped: 9
        }
    )));
    assert!(events
        .iter()
        .any(|e| matches!(e, lts_obs::TraceEvent::Buffer { .. })));
}

#[test]
fn concurrent_scan_deltas_total_exactly() {
    const THREADS: usize = 8;
    const SCANS_PER_THREAD: usize = 5;

    // A pool smaller than the table (4 < 10 pages) so concurrent scans
    // genuinely contend: evictions happen, and whether a given access
    // hits or misses depends on interleaving.
    let t = Arc::new(open_table("concurrent", 4));
    let expr = Arc::new(parse_condition("x < 1000", &TableRegistry::new()).unwrap());

    let s0 = t.scan_snapshot();
    let b0 = t.buffer_snapshot();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let t = Arc::clone(&t);
            let expr = Arc::clone(&expr);
            std::thread::spawn(move || {
                for _ in 0..SCANS_PER_THREAD {
                    assert_eq!(t.par_count(&expr).unwrap(), 640);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let sd = t.scan_snapshot().delta(&s0);
    let bd = t.buffer_snapshot().delta(&b0);

    // Page totals are exact under any interleaving: every scan touches
    // every page exactly once.
    let scans = (THREADS * SCANS_PER_THREAD) as u64;
    assert_eq!(sd.pages_evaluated, scans * t.n_pages() as u64);
    assert_eq!(sd.pages_skipped, 0);

    // The hit/miss *split* is interleaving-dependent, but the *sum* is
    // pinned: one buffer access per (referenced column, evaluated
    // page), and this expression references one column.
    assert_eq!(bd.hits + bd.misses, sd.pages_evaluated);
    // With a 4-page pool scanning 10 pages, evictions must occur and
    // never exceed the miss count (every eviction made room for one).
    assert!(bd.evictions > 0);
    assert!(bd.evictions <= bd.misses);
}
