//! Property-based tests for the table engine.

use lts_table::table::table_of_floats;
use lts_table::{distinct_project, Expr, GridIndex, RowCtx, Value};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arithmetic expressions over float literals agree with direct
    /// computation.
    #[test]
    fn expr_arithmetic_matches_oracle(a in -1e3f64..1e3, b in -1e3f64..1e3) {
        let t = table_of_floats(&[("x", &[0.0])]).unwrap();
        let ctx = RowCtx::top(&t, 0);
        let cases: Vec<(Expr, f64)> = vec![
            (Expr::lit(a).add(Expr::lit(b)), a + b),
            (Expr::lit(a).sub(Expr::lit(b)), a - b),
            (Expr::lit(a).mul(Expr::lit(b)), a * b),
            (Expr::lit(a).abs(), a.abs()),
            (Expr::lit(a.abs()).sqrt(), a.abs().sqrt()),
        ];
        for (e, want) in cases {
            let got = e.eval(ctx).unwrap().as_f64().unwrap();
            prop_assert!((got - want).abs() < 1e-9 * (1.0 + want.abs()));
        }
    }

    /// Comparison operators are consistent with `f64` ordering.
    #[test]
    fn expr_comparisons_match_oracle(a in -100f64..100.0, b in -100f64..100.0) {
        let t = table_of_floats(&[("x", &[0.0])]).unwrap();
        let ctx = RowCtx::top(&t, 0);
        let lt = Expr::lit(a).lt(Expr::lit(b)).eval(ctx).unwrap();
        prop_assert_eq!(lt, Value::Bool(a < b));
        let ge = Expr::lit(a).ge(Expr::lit(b)).eval(ctx).unwrap();
        prop_assert_eq!(ge, Value::Bool(a >= b));
    }

    /// The correlated COUNT subquery equals a direct scan count.
    #[test]
    fn count_subquery_matches_scan(
        xs in proptest::collection::vec(0.0f64..50.0, 2..40),
        threshold in 0.0f64..50.0,
    ) {
        let t = Arc::new(table_of_floats(&[("x", &xs)]).unwrap());
        let sub = Expr::count_where(
            Arc::clone(&t),
            Expr::col("x").ge(Expr::outer("x")).and(Expr::col("x").le(Expr::lit(threshold))),
        );
        for (i, &xi) in xs.iter().enumerate() {
            let got = sub.eval(RowCtx::top(&t, i)).unwrap().as_i64().unwrap();
            let want = xs.iter().filter(|&&xj| xj >= xi && xj <= threshold).count() as i64;
            prop_assert_eq!(got, want, "row {}", i);
        }
    }

    /// DISTINCT projection is idempotent and never grows.
    #[test]
    fn distinct_project_idempotent(
        xs in proptest::collection::vec(0.0f64..5.0, 1..60),
    ) {
        let t = table_of_floats(&[("x", &xs)]).unwrap();
        let once = distinct_project(&t, &["x"], None).unwrap();
        prop_assert!(once.len() <= t.len());
        let twice = distinct_project(&once, &["x"], None).unwrap();
        prop_assert_eq!(once.len(), twice.len());
    }

    /// Grid count_within is exact against a brute-force scan.
    #[test]
    fn grid_count_matches_brute(
        pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..80),
        d in 0.0f64..5.0,
    ) {
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let g = GridIndex::build(&xs, &ys, 5, 5).unwrap();
        for i in (0..pts.len()).step_by(7) {
            let want = xs
                .iter()
                .zip(&ys)
                .filter(|&(&x, &y)| {
                    let dx = x - xs[i];
                    let dy = y - ys[i];
                    dx * dx + dy * dy <= d * d
                })
                .count();
            prop_assert_eq!(g.count_within(xs[i], ys[i], d), want);
        }
    }

    /// Batched predicate evaluation agrees with per-row evaluation for
    /// arbitrary index multisets (order, duplicates, repeats), and the
    /// meter charges exactly `idxs.len()` evals per batch.
    #[test]
    fn eval_batch_agrees_with_eval(
        xs in proptest::collection::vec(-10.0f64..10.0, 1..50),
        picks in proptest::collection::vec(0usize..1000, 0..64),
        threshold in -10.0f64..10.0,
    ) {
        use lts_table::{FnPredicate, Metered, ObjectPredicate};
        let t = table_of_floats(&[("x", &xs)]).unwrap();
        let idxs: Vec<usize> = picks.iter().map(|&p| p % xs.len()).collect();
        let p = Metered::new(FnPredicate::new("gt", move |t: &lts_table::Table, i| {
            Ok(t.floats("x")?[i] > threshold)
        }));
        let batch = p.eval_batch(&t, &idxs).unwrap();
        prop_assert_eq!(batch.len(), idxs.len());
        let stats = p.stats();
        prop_assert_eq!(stats.evals, idxs.len() as u64);
        prop_assert_eq!(stats.calls, u64::from(!idxs.is_empty()));
        for (k, &i) in idxs.iter().enumerate() {
            prop_assert_eq!(batch[k], p.eval(&t, i).unwrap(), "index {}", i);
        }
    }

    /// Kleene logic: AND/OR with NULL behave per SQL.
    #[test]
    fn kleene_truth_table(a in any::<Option<bool>>(), b in any::<Option<bool>>()) {
        let t = table_of_floats(&[("x", &[0.0])]).unwrap();
        let ctx = RowCtx::top(&t, 0);
        let lit = |v: Option<bool>| match v {
            Some(x) => Expr::lit(x),
            None => Expr::Literal(Value::Null),
        };
        let and = lit(a).and(lit(b)).eval(ctx).unwrap();
        let want_and = match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        };
        match want_and {
            Some(v) => prop_assert_eq!(and, Value::Bool(v)),
            None => prop_assert!(and.is_null()),
        }
        let or = lit(a).or(lit(b)).eval(ctx).unwrap();
        let want_or = match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        };
        match want_or {
            Some(v) => prop_assert_eq!(or, Value::Bool(v)),
            None => prop_assert!(or.is_null()),
        }
    }
}

// ---------------------------------------------------------------------
// Parser round-trip: Display(ast) → parse → same evaluation.
// ---------------------------------------------------------------------

/// A random expression over columns `x`, `y` and float/bool literals —
/// every non-subquery AST form the parser supports.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(|i| Expr::lit(i as f64)),
        any::<bool>().prop_map(Expr::lit),
        Just(Expr::col("x")),
        Just(Expr::col("y")),
        Just(Expr::outer("x")),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.mul(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.lt(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.ge(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.eq(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
            inner.clone().prop_map(|a| a.neg()),
            inner.clone().prop_map(|a| a.abs()),
            (inner.clone(), inner)
                .prop_map(|(a, b)| Expr::Call(lts_table::Func::Power, vec![a, b])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any displayable expression parses back and evaluates identically
    /// (NaN-producing arithmetic excepted — NaN ≠ NaN).
    #[test]
    fn display_parse_round_trip(e in arb_expr(), x in -5.0f64..5.0, y in -5.0f64..5.0) {
        use lts_table::{parse_condition, TableRegistry};
        let t = table_of_floats(&[("x", &[x]), ("y", &[y])]).unwrap();
        let text = e.to_string();
        let parsed = parse_condition(&text, &TableRegistry::new())
            .unwrap_or_else(|err| panic!("`{text}` failed to re-parse: {err}"));
        let ctx = RowCtx { table: &t, row: 0, outer: Some((&t, 0)) };
        let a = e.eval(ctx);
        let b = parsed.eval(ctx);
        match (a, b) {
            (Ok(va), Ok(vb)) => {
                let same = match (&va, &vb) {
                    (Value::Float(fa), Value::Float(fb)) => {
                        (fa.is_nan() && fb.is_nan()) || fa == fb
                    }
                    _ => format!("{va:?}") == format!("{vb:?}"),
                };
                prop_assert!(same, "`{}`: {:?} vs {:?}", text, va, vb);
            }
            (Err(_), Err(_)) => {} // both reject (e.g. type errors) — fine
            (a, b) => prop_assert!(false, "`{}`: {:?} vs {:?}", text, a, b),
        }
    }
}
