//! Property-based tests for the stratification substrate.

use lts_strata::{
    evaluate_cuts, fixed_height_cuts, pilot_index_from_scores, pilot_positions_argsort,
    pilot_positions_bucket, pilot_positions_bucket_partitioned, Allocation, DesignParams,
    PilotIndex,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The serial bucket pass, the argsort oracle, and the partitioned
    /// bucket pass agree, including with heavy score ties (duplicate
    /// scores: only up to 6 distinct values).
    #[test]
    fn bucket_positions_match_argsort(
        scores in proptest::collection::vec(0u8..6, 10..200),
        pick_every in 2usize..7,
        parts in 1usize..12,
    ) {
        let scores: Vec<f64> = scores.into_iter().map(|s| f64::from(s) / 6.0).collect();
        let pilot_ids: Vec<usize> = (0..scores.len()).step_by(pick_every).collect();
        prop_assume!(!pilot_ids.is_empty());
        let a = pilot_positions_argsort(&scores, &pilot_ids);
        let b = pilot_positions_bucket(&scores, &pilot_ids);
        prop_assert_eq!(&a, &b);
        let c = pilot_positions_bucket_partitioned(&scores, &pilot_ids, parts);
        prop_assert_eq!(&a, &c);
    }

    /// The production pilot path (partitioned bucket pass + merge)
    /// equals direct construction from argsort positions — labels
    /// stay attached to the right pilots even under total ties.
    #[test]
    fn pilot_index_from_scores_matches_oracle(
        scores in proptest::collection::vec(0u8..4, 10..150),
        labels in proptest::collection::vec(any::<bool>(), 1..40),
        parts in 1usize..10,
    ) {
        let scores: Vec<f64> = scores.into_iter().map(|s| f64::from(s) / 4.0).collect();
        let pilots: Vec<(usize, bool)> = labels
            .iter()
            .enumerate()
            .take_while(|(k, _)| k * 3 < scores.len())
            .map(|(k, &l)| (k * 3, l))
            .collect();
        prop_assume!(!pilots.is_empty());
        let ids: Vec<usize> = pilots.iter().map(|&(id, _)| id).collect();
        let positions = pilot_positions_argsort(&scores, &ids);
        let mut sorted = pilots.clone();
        sorted.sort_by(|a, b| scores[a.0].total_cmp(&scores[b.0]).then(a.0.cmp(&b.0)));
        let direct = PilotIndex::new(
            scores.len(),
            positions.iter().zip(&sorted).map(|(&p, &(_, l))| (p, l)).collect(),
        )
        .unwrap();
        let merged = pilot_index_from_scores(&scores, &pilots, parts).unwrap();
        prop_assert_eq!(merged, direct);
    }

    /// Positions are strictly increasing and within range.
    #[test]
    fn positions_strictly_increasing(
        scores in proptest::collection::vec(0.0f64..1.0, 10..100),
    ) {
        let pilot_ids: Vec<usize> = (0..scores.len()).step_by(3).collect();
        let pos = pilot_positions_bucket(&scores, &pilot_ids);
        for w in pos.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(*pos.last().unwrap() < scores.len());
    }

    /// `evaluate_cuts` of the fixed-height layout is finite whenever the
    /// pilot gives every stratum enough samples.
    #[test]
    fn fixed_height_evaluates_when_feasible(
        n in 40usize..200,
        labels in proptest::collection::vec(any::<bool>(), 20),
    ) {
        let m = labels.len();
        let entries: Vec<(usize, bool)> =
            labels.iter().enumerate().map(|(k, &l)| (k * n / m, l)).collect();
        let pilot = PilotIndex::new(n, entries).unwrap();
        let params = DesignParams {
            n_strata: 2,
            budget: 5,
            min_stratum_size: 2,
            min_pilots_per_stratum: 2,
            epsilon: 1.0,
        };
        let cuts = fixed_height_cuts(n, 2).unwrap();
        if let Some(v) = evaluate_cuts(&pilot, &cuts, &params, Allocation::Proportional) {
            prop_assert!(v.is_finite());
            prop_assert!(v >= -1e-9, "proportional variance must be non-negative, got {}", v);
        }
    }

    /// Gamma prefix counts are consistent with the labels.
    #[test]
    fn gamma_counts_positives(
        entries in proptest::collection::vec((0usize..1000, any::<bool>()), 1..60),
    ) {
        // Dedupe positions.
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<(usize, bool)> = entries
            .into_iter()
            .filter(|&(p, _)| seen.insert(p))
            .collect();
        prop_assume!(!entries.is_empty());
        let pilot = PilotIndex::new(1000, entries.clone()).unwrap();
        let total_pos = entries.iter().filter(|&&(_, l)| l).count();
        prop_assert_eq!(pilot.gamma(pilot.m()), total_pos);
        prop_assert_eq!(pilot.gamma(0), 0);
        // Gamma is monotone.
        for k in 1..=pilot.m() {
            prop_assert!(pilot.gamma(k) >= pilot.gamma(k - 1));
            prop_assert!(pilot.gamma(k) - pilot.gamma(k - 1) <= 1);
        }
    }
}
