//! Design parameters, results, and the algorithm dispatcher.

use crate::error::{StrataError, StrataResult};
use crate::pilot::PilotIndex;
use serde::{Deserialize, Serialize};

/// Second-stage allocation rule the design optimizes for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Allocation {
    /// Neyman allocation `n_h ∝ N_h s_h` (objective (5)).
    #[default]
    Neyman,
    /// Proportional allocation `n_h ∝ N_h` (objective (6)).
    Proportional,
}

/// Which design algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesignAlgorithm {
    /// DirSol — (almost) exact, `H = 3` only.
    DirSol,
    /// LogBdr — any `H`, exponential in `H` over pilot partitions.
    LogBdr,
    /// DynPgm — the auxiliary-sum-bounded dynamic program (default).
    DynPgm,
    /// DynPgmP — the separable proportional-allocation DP.
    DynPgmP,
    /// Exact brute force over every cut combination (test-sized inputs).
    BruteForce,
}

/// Parameters shared by every design algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignParams {
    /// Number of strata `H`.
    pub n_strata: usize,
    /// Second-stage sample budget `n`.
    pub budget: usize,
    /// Minimum objects per stratum (`N⊔`). The paper assumes
    /// `N⊔ > n` for the approximation guarantees, but the code only
    /// requires `N⊔ ≥ 1`.
    pub min_stratum_size: usize,
    /// Minimum pilot samples per stratum (`m⊔`, paper uses ≈ 5; must be
    /// ≥ 2 so within-stratum variances are estimable).
    pub min_pilots_per_stratum: usize,
    /// Boundary granularity ε: candidate boundaries are powers of
    /// `(1 + ε)` away from pilot positions (`1.0` = powers of two, the
    /// paper's base construction).
    pub epsilon: f64,
}

impl Default for DesignParams {
    fn default() -> Self {
        Self {
            n_strata: 4,
            budget: 100,
            min_stratum_size: 1,
            min_pilots_per_stratum: 5,
            epsilon: 1.0,
        }
    }
}

impl DesignParams {
    /// Validate parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range parameters.
    pub fn validate(&self) -> StrataResult<()> {
        if self.n_strata < 2 {
            return Err(StrataError::InvalidParameter {
                name: "n_strata",
                message: "need at least 2 strata".into(),
            });
        }
        if self.budget == 0 {
            return Err(StrataError::InvalidParameter {
                name: "budget",
                message: "second-stage budget must be positive".into(),
            });
        }
        if self.min_pilots_per_stratum < 2 {
            return Err(StrataError::InvalidParameter {
                name: "min_pilots_per_stratum",
                message: "need at least 2 pilots per stratum to estimate variance".into(),
            });
        }
        if self.min_stratum_size == 0 {
            return Err(StrataError::InvalidParameter {
                name: "min_stratum_size",
                message: "strata must be non-empty".into(),
            });
        }
        if self.epsilon <= 0.0 || self.epsilon.is_nan() || !self.epsilon.is_finite() {
            return Err(StrataError::InvalidParameter {
                name: "epsilon",
                message: format!("epsilon must be positive and finite, got {}", self.epsilon),
            });
        }
        Ok(())
    }

    /// Check the pilot can support this design at all.
    ///
    /// # Errors
    ///
    /// Returns [`StrataError::Infeasible`] when `m < H·m⊔` or
    /// `N < H·N⊔`.
    pub fn check_feasible(&self, pilot: &PilotIndex) -> StrataResult<()> {
        self.validate()?;
        if pilot.m() < self.n_strata * self.min_pilots_per_stratum {
            return Err(StrataError::Infeasible {
                message: format!(
                    "{} pilots cannot fill {} strata with ≥ {} each",
                    pilot.m(),
                    self.n_strata,
                    self.min_pilots_per_stratum
                ),
            });
        }
        if pilot.n_objects() < self.n_strata * self.min_stratum_size {
            return Err(StrataError::Infeasible {
                message: format!(
                    "{} objects cannot fill {} strata with ≥ {} each",
                    pilot.n_objects(),
                    self.n_strata,
                    self.min_stratum_size
                ),
            });
        }
        Ok(())
    }
}

/// A stratification: `H − 1` strictly increasing cut points in `(0, N)`;
/// stratum `h` covers object positions `[cuts[h−1], cuts[h])` with
/// `cuts[−1] = 0` and `cuts[H−1] = N` implied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stratification {
    /// Cut points (exclusive ends of strata 1..H−1).
    pub cuts: Vec<usize>,
    /// The design objective value at these cuts (estimated variance of
    /// the count estimator under the chosen allocation).
    pub estimated_variance: f64,
}

impl Stratification {
    /// Stratum sizes for a population of `n_objects`.
    pub fn stratum_sizes(&self, n_objects: usize) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.cuts.len() + 1);
        let mut prev = 0usize;
        for &c in &self.cuts {
            sizes.push(c - prev);
            prev = c;
        }
        sizes.push(n_objects - prev);
        sizes
    }

    /// Stratum id for an object at `position` in the ordering.
    pub fn stratum_of(&self, position: usize) -> usize {
        self.cuts.partition_point(|&c| c <= position)
    }

    /// Number of strata.
    pub fn n_strata(&self) -> usize {
        self.cuts.len() + 1
    }
}

/// Dispatch to the requested design algorithm.
///
/// # Errors
///
/// Propagates the algorithm's parameter/feasibility errors.
pub fn design(
    pilot: &PilotIndex,
    params: &DesignParams,
    allocation: Allocation,
    algorithm: DesignAlgorithm,
) -> StrataResult<Stratification> {
    match algorithm {
        DesignAlgorithm::DirSol => crate::dirsol::dirsol(pilot, params, allocation),
        DesignAlgorithm::LogBdr => crate::logbdr::logbdr(pilot, params, allocation),
        DesignAlgorithm::DynPgm => {
            crate::dynpgm::dynpgm(pilot, params, crate::dynpgm::TSelection::default())
        }
        DesignAlgorithm::DynPgmP => crate::dynpgm::dynpgmp(pilot, params),
        DesignAlgorithm::BruteForce => crate::bruteforce::brute_force(pilot, params, allocation),
    }
}

/// Run a design straight from id-keyed proxy scores and labeled
/// pilots, for callers that hold raw scores but no population
/// ordering: the stage-1 pilot is located and indexed by the
/// partition-aligned pilot pass
/// ([`crate::partitioned::pilot_index_from_scores`]: parallel bucket
/// pass + `merge_partition_pilots`, `O(N log m)` — no `O(N log N)`
/// argsort), then handed to [`design`]. Returns the pilot index
/// alongside the stratification so callers can reuse its positions for
/// stage-2 bookkeeping. (Estimators that already hold the score
/// ordering assemble their pilot via `merge_partition_pilots`
/// directly.)
///
/// The result is bit-identical for every `n_partitions` (and thread
/// count): pilot location merges integer histograms and the design
/// algorithms are deterministic in the pilot.
///
/// # Errors
///
/// Propagates pilot-construction and algorithm errors.
pub fn design_from_scores(
    scores: &[f64],
    pilots: &[(usize, bool)],
    params: &DesignParams,
    allocation: Allocation,
    algorithm: DesignAlgorithm,
    n_partitions: usize,
) -> StrataResult<(PilotIndex, Stratification)> {
    let pilot = crate::partitioned::pilot_index_from_scores(scores, pilots, n_partitions)?;
    let stratification = design(&pilot, params, allocation, algorithm)?;
    Ok((pilot, stratification))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        let ok = DesignParams::default();
        assert!(ok.validate().is_ok());
        assert!(DesignParams { n_strata: 1, ..ok }.validate().is_err());
        assert!(DesignParams { budget: 0, ..ok }.validate().is_err());
        assert!(DesignParams {
            min_pilots_per_stratum: 1,
            ..ok
        }
        .validate()
        .is_err());
        assert!(DesignParams {
            min_stratum_size: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(DesignParams { epsilon: 0.0, ..ok }.validate().is_err());
    }

    #[test]
    fn feasibility_checks() {
        let pilot = PilotIndex::new(100, (0..10).map(|i| (i * 10, i % 2 == 0)).collect()).unwrap();
        let params = DesignParams {
            n_strata: 2,
            min_pilots_per_stratum: 5,
            min_stratum_size: 10,
            ..DesignParams::default()
        };
        assert!(params.check_feasible(&pilot).is_ok());
        let too_many_strata = DesignParams {
            n_strata: 3,
            ..params
        };
        assert!(too_many_strata.check_feasible(&pilot).is_err());
        let too_big_strata = DesignParams {
            min_stratum_size: 60,
            ..params
        };
        assert!(too_big_strata.check_feasible(&pilot).is_err());
    }

    #[test]
    fn design_from_scores_equals_design_on_prebuilt_pilot() {
        // Deterministic scores with ties; pilots every 10th object.
        let n = 400usize;
        let scores: Vec<f64> = (0..n).map(|i| ((i * 7) % 23) as f64 / 23.0).collect();
        let pilots: Vec<(usize, bool)> = (0..n).step_by(10).map(|id| (id, id % 3 == 0)).collect();
        let params = DesignParams {
            n_strata: 3,
            budget: 30,
            min_stratum_size: 20,
            min_pilots_per_stratum: 3,
            epsilon: 1.0,
        };
        // Oracle: argsort-located pilot + the plain dispatcher.
        let ids: Vec<usize> = pilots.iter().map(|&(id, _)| id).collect();
        let positions = crate::pilot::pilot_positions_argsort(&scores, &ids);
        let mut sorted = pilots.clone();
        sorted.sort_by(|a, b| scores[a.0].total_cmp(&scores[b.0]).then(a.0.cmp(&b.0)));
        let oracle_pilot = PilotIndex::new(
            n,
            positions
                .iter()
                .zip(&sorted)
                .map(|(&p, &(_, l))| (p, l))
                .collect(),
        )
        .unwrap();
        for algorithm in [
            DesignAlgorithm::DynPgm,
            DesignAlgorithm::DynPgmP,
            DesignAlgorithm::LogBdr,
            DesignAlgorithm::DirSol,
        ] {
            let want = design(&oracle_pilot, &params, Allocation::Neyman, algorithm).unwrap();
            for parts in [1usize, 4, 64] {
                let (pilot, got) = design_from_scores(
                    &scores,
                    &pilots,
                    &params,
                    Allocation::Neyman,
                    algorithm,
                    parts,
                )
                .unwrap();
                assert_eq!(pilot, oracle_pilot, "{algorithm:?} parts={parts}");
                assert_eq!(got, want, "{algorithm:?} parts={parts}");
            }
        }
        // Errors propagate from both stages.
        assert!(design_from_scores(
            &scores,
            &[],
            &params,
            Allocation::Neyman,
            DesignAlgorithm::DynPgm,
            2
        )
        .is_err());
        let starved = DesignParams {
            min_pilots_per_stratum: 100,
            ..params
        };
        assert!(design_from_scores(
            &scores,
            &pilots,
            &starved,
            Allocation::Neyman,
            DesignAlgorithm::DynPgm,
            2
        )
        .is_err());
    }

    #[test]
    fn stratification_helpers() {
        let s = Stratification {
            cuts: vec![10, 25],
            estimated_variance: 1.0,
        };
        assert_eq!(s.n_strata(), 3);
        assert_eq!(s.stratum_sizes(40), vec![10, 15, 15]);
        assert_eq!(s.stratum_of(0), 0);
        assert_eq!(s.stratum_of(9), 0);
        assert_eq!(s.stratum_of(10), 1);
        assert_eq!(s.stratum_of(24), 1);
        assert_eq!(s.stratum_of(25), 2);
        assert_eq!(s.stratum_of(39), 2);
    }
}
