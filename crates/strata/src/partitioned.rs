//! Partition-aligned stratification: build per-partition, merge
//! globally.
//!
//! The partitioned scan engine (`lts_table::partition`) splits a
//! population into contiguous row-range partitions and labels them in
//! parallel. This module is the stratification-side counterpart:
//!
//! * [`pilot_positions_bucket_partitioned`] runs the paper's
//!   `O(N log m)` bucket pass **per partition in parallel** and merges
//!   the integer histograms — bit-identical to the serial
//!   [`crate::pilot::pilot_positions_bucket`] (counts are integers, so
//!   no merge-order effects exist);
//! * [`merge_partition_pilots`] assembles a global [`PilotIndex`] from
//!   per-partition pilot `(local position, label)` sets, offsetting
//!   each by its partition start — so pilots can be located (and
//!   labeled) partition-by-partition, each worker touching only its
//!   own row range;
//! * [`align_cuts_to_partitions`] snaps a stratification's cuts to the
//!   nearest partition boundaries, producing strata that are unions of
//!   whole partitions — second-stage scans of such strata run as
//!   whole-partition scans with no sub-range bookkeeping.
//!
//! Everything here is deterministic for fixed inputs: partition counts
//! and thread counts never change any output (asserted by the tests).

use crate::error::{StrataError, StrataResult};
use crate::pilot::PilotIndex;
use rayon::prelude::*;

/// Contiguous row-range bounds for `n` items split into `parts`
/// near-equal partitions (`bounds[p]..bounds[p + 1]` is partition `p`).
/// Mirrors `lts_table::partition::partition_bounds` — duplicated here
/// because `lts-strata` is a substrate crate with no table dependency.
pub fn partition_bounds(n: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    (0..=parts)
        .map(|p| ((p as u128 * n as u128) / parts as u128) as usize)
        .collect()
}

/// The paper's bucket pass for pilot positions, partition-parallel.
///
/// Splits the population into `n_partitions` contiguous ranges, counts
/// each range's objects into the `m + 1` pilot-key buckets in parallel,
/// sums the per-partition histograms, and prefix-sums the merged
/// histogram — **bit-identical** to
/// [`crate::pilot::pilot_positions_bucket`] for every partition count
/// (bucket counts are integers; addition is associative).
pub fn pilot_positions_bucket_partitioned(
    scores: &[f64],
    pilot_ids: &[usize],
    n_partitions: usize,
) -> Vec<usize> {
    let m = pilot_ids.len();
    // Sorted pilot keys, exactly as the serial pass builds them.
    let mut pkeys: Vec<(f64, usize)> = pilot_ids.iter().map(|&id| (scores[id], id)).collect();
    pkeys.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let bounds = partition_bounds(scores.len(), n_partitions);
    let histograms: Vec<Vec<usize>> = bounds
        .windows(2)
        .map(|w| (w[0], w[1]))
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|(lo, hi)| {
            let mut cnt = vec![0usize; m + 1];
            for (id, &s) in scores.iter().enumerate().take(hi).skip(lo) {
                let key = (s, id);
                let r = pkeys.partition_point(|&pk| !key_less(key, pk));
                cnt[r] += 1;
            }
            cnt
        })
        .collect();

    // Merge: integer sums, order-independent.
    let mut cnt = vec![0usize; m + 1];
    for h in &histograms {
        for (slot, &c) in cnt.iter_mut().zip(h) {
            *slot += c;
        }
    }
    let mut positions = Vec::with_capacity(m);
    let mut below = 0usize;
    for &c in cnt.iter().take(m) {
        below += c;
        positions.push(below);
    }
    positions
}

/// Composite `(score, id)` ordering — the same total order as
/// `crate::pilot`.
#[inline]
fn key_less(a: (f64, usize), b: (f64, usize)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

/// Build one global [`PilotIndex`] from per-partition pilot sets.
///
/// `bounds` are the partition bounds over the score-ordered population
/// (`bounds[p]..bounds[p + 1]` is partition `p`); `per_partition[p]`
/// holds that partition's pilots as `(position local to the partition,
/// label)`. Local positions are offset by the partition start and the
/// union is indexed globally — equal to building the `PilotIndex`
/// directly from the globalized pairs.
///
/// # Errors
///
/// Returns an error when the bounds are malformed, a local position
/// falls outside its partition, the merged pilot set is empty, or
/// (through [`PilotIndex::new`]) positions collide.
pub fn merge_partition_pilots(
    bounds: &[usize],
    per_partition: &[Vec<(usize, bool)>],
) -> StrataResult<PilotIndex> {
    if bounds.len() < 2 || bounds[0] != 0 || bounds.windows(2).any(|w| w[0] > w[1]) {
        return Err(StrataError::InvalidPilot {
            message: format!("malformed partition bounds {bounds:?}"),
        });
    }
    if per_partition.len() != bounds.len() - 1 {
        return Err(StrataError::InvalidPilot {
            message: format!(
                "{} partitions of pilots but {} bound ranges",
                per_partition.len(),
                bounds.len() - 1
            ),
        });
    }
    let n_objects = *bounds.last().expect("len >= 2");
    let mut entries = Vec::new();
    for (p, locals) in per_partition.iter().enumerate() {
        let (lo, hi) = (bounds[p], bounds[p + 1]);
        for &(local, label) in locals {
            if local >= hi - lo {
                return Err(StrataError::InvalidPilot {
                    message: format!(
                        "local pilot position {local} outside partition {p} (size {})",
                        hi - lo
                    ),
                });
            }
            entries.push((lo + local, label));
        }
    }
    PilotIndex::new(n_objects, entries)
}

/// Build a [`PilotIndex`] from id-keyed scores and labeled pilots via
/// the **partition-aligned pilot pass** — the production path of the
/// stratification design (the serial
/// [`crate::pilot::pilot_positions_bucket`] remains only as the test
/// oracle).
///
/// `scores[i]` is the proxy score of object `i` of the (local)
/// population; `pilots` are `(object id, label)` pairs. Pilot positions
/// within the `(score, id)` ordering are located by
/// [`pilot_positions_bucket_partitioned`] (parallel integer-histogram
/// bucket pass, merge-order independent), assigned to their containing
/// partitions, and assembled by [`merge_partition_pilots`] — for every
/// partition count the result is **bit-identical** to constructing the
/// index from argsort positions directly.
///
/// # Errors
///
/// Returns an error for empty, duplicate, or out-of-range pilots.
pub fn pilot_index_from_scores(
    scores: &[f64],
    pilots: &[(usize, bool)],
    n_partitions: usize,
) -> StrataResult<PilotIndex> {
    if let Some(&(id, _)) = pilots.iter().find(|&&(id, _)| id >= scores.len()) {
        return Err(StrataError::InvalidPilot {
            message: format!("pilot id {id} out of range (N = {})", scores.len()),
        });
    }
    let ids: Vec<usize> = pilots.iter().map(|&(id, _)| id).collect();
    let positions = pilot_positions_bucket_partitioned(scores, &ids, n_partitions);
    // Positions come back aligned with the sorted pilot keys; sort the
    // labeled pilots by the same composite key to pair them up.
    let mut sorted_pilots = pilots.to_vec();
    sorted_pilots.sort_by(|a, b| scores[a.0].total_cmp(&scores[b.0]).then(a.0.cmp(&b.0)));
    let bounds = partition_bounds(scores.len(), n_partitions);
    let entries: Vec<(usize, bool)> = positions
        .iter()
        .zip(&sorted_pilots)
        .map(|(&pos, &(_, label))| (pos, label))
        .collect();
    pilot_index_from_positions(&bounds, &entries)
}

/// Assemble a [`PilotIndex`] from already-known global `(position,
/// label)` entries, **partition-aligned**: entries are split by their
/// containing partition of `bounds` and merged with
/// [`merge_partition_pilots`] — equal to building the index directly
/// from `entries`, for every bounds layout. This is the production
/// pilot path when positions are already known from a score ordering
/// (`lts-core`'s `OrderedPopulation::pilot_index`).
///
/// # Errors
///
/// Returns an error for malformed bounds or empty/duplicate/
/// out-of-range pilot positions.
pub fn pilot_index_from_positions(
    bounds: &[usize],
    entries: &[(usize, bool)],
) -> StrataResult<PilotIndex> {
    if bounds.len() < 2 || bounds[0] != 0 || bounds.windows(2).any(|w| w[0] > w[1]) {
        return Err(StrataError::InvalidPilot {
            message: format!("malformed partition bounds {bounds:?}"),
        });
    }
    let n = *bounds.last().expect("len >= 2");
    let mut per_partition = vec![Vec::new(); bounds.len() - 1];
    for &(pos, label) in entries {
        if pos >= n {
            return Err(StrataError::InvalidPilot {
                message: format!("pilot position {pos} out of range (N = {n})"),
            });
        }
        // Containing partition: the last bound ≤ pos (duplicate bounds
        // from empty partitions resolve to the non-empty one).
        let p = bounds.partition_point(|&b| b <= pos) - 1;
        per_partition[p].push((pos - bounds[p], label));
    }
    merge_partition_pilots(bounds, &per_partition)
}

/// Snap stratification cuts to the nearest partition boundaries.
///
/// The result is strictly increasing, interior (`0 < cut < N`), and a
/// subset of `bounds` — every stratum becomes a union of whole
/// partitions, so a second-stage pass over a stratum is a
/// whole-partition parallel scan. Input cuts may arrive in any order.
/// Ties between two equidistant boundaries resolve downward
/// (deterministic). Cuts that collapse onto the same boundary, or onto
/// `0`/`N`, are dropped, so the returned vector may be shorter than
/// `cuts` (fewer, coarser strata — the caller decides whether that
/// trade is acceptable).
///
/// # Errors
///
/// Returns an error for malformed bounds.
pub fn align_cuts_to_partitions(cuts: &[usize], bounds: &[usize]) -> StrataResult<Vec<usize>> {
    if bounds.len() < 2 || bounds[0] != 0 || bounds.windows(2).any(|w| w[0] > w[1]) {
        return Err(StrataError::InvalidPilot {
            message: format!("malformed partition bounds {bounds:?}"),
        });
    }
    let n = *bounds.last().expect("len >= 2");
    let mut aligned: Vec<usize> = Vec::with_capacity(cuts.len());
    for &cut in cuts {
        // Nearest boundary; equidistant resolves to the lower one.
        let i = bounds.partition_point(|&b| b < cut);
        let snapped = if i == 0 {
            bounds[0]
        } else if i == bounds.len() {
            n
        } else {
            let (lo, hi) = (bounds[i - 1], bounds[i]);
            if cut - lo <= hi - cut {
                lo
            } else {
                hi
            }
        };
        if snapped > 0 && snapped < n {
            aligned.push(snapped);
        }
    }
    // Snapping is not order-preserving for unsorted (or near-boundary)
    // inputs; sort and dedupe so the postcondition holds regardless.
    aligned.sort_unstable();
    aligned.dedup();
    Ok(aligned)
}

/// Shard bounds for `n` items split into at most `k` near-equal
/// contiguous shards: [`partition_bounds`] with duplicate boundaries
/// (from `k > n`) collapsed, so every shard is non-empty. The result
/// is a pure function of `(n, k)` — independent of thread counts,
/// partition layouts, and execution order — which is what makes
/// sharded estimates reproducible across hosts.
///
/// Always returns at least two bounds; `n == 0` yields `[0, 0]` (one
/// empty shard) so callers can detect the degenerate population
/// instead of indexing past an empty vector.
pub fn shard_bounds(n: usize, k: usize) -> Vec<usize> {
    let mut bounds = partition_bounds(n, k);
    bounds.dedup();
    if bounds.len() < 2 {
        bounds.push(n);
    }
    bounds
}

/// Shard bounds aligned to an existing partition layout: the ideal
/// `k`-way uniform cuts of [`shard_bounds`] snapped to the nearest
/// boundaries of `bounds` via [`align_cuts_to_partitions`], so every
/// shard is a union of whole partitions. Cuts that collapse (more
/// shards than partitions, empty partitions) are dropped, so the
/// result may describe fewer than `k` shards — never more.
///
/// # Errors
///
/// Returns an error for malformed partition bounds.
pub fn shard_bounds_aligned(bounds: &[usize], k: usize) -> StrataResult<Vec<usize>> {
    if bounds.is_empty() {
        return Err(StrataError::InvalidPilot {
            message: "empty partition bounds".into(),
        });
    }
    let n = *bounds.last().expect("non-empty");
    let ideal = partition_bounds(n, k);
    let interior = &ideal[1..ideal.len() - 1];
    let cuts = align_cuts_to_partitions(interior, bounds)?;
    let mut out = Vec::with_capacity(cuts.len() + 2);
    out.push(0);
    out.extend_from_slice(&cuts);
    out.push(n);
    // Aligned cuts are strictly increasing and interior, so the only
    // possible duplicate is `0 == n` on an empty population — keep it:
    // the `[0, 0]` shape mirrors `shard_bounds(0, k)`.
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pilot::{pilot_positions_argsort, pilot_positions_bucket};

    fn scores(n: usize) -> Vec<f64> {
        let mut state = 99u64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) % 97) as f64 / 97.0 // ties included
            })
            .collect()
    }

    #[test]
    fn partitioned_bucket_matches_serial_for_all_counts() {
        let s = scores(700);
        let pilot_ids: Vec<usize> = (0..700).step_by(11).collect();
        let serial = pilot_positions_bucket(&s, &pilot_ids);
        assert_eq!(serial, pilot_positions_argsort(&s, &pilot_ids));
        for parts in [1, 2, 3, 7, 64, 700, 1000] {
            assert_eq!(
                pilot_positions_bucket_partitioned(&s, &pilot_ids, parts),
                serial,
                "parts={parts}"
            );
        }
    }

    /// Regression for the tie-handling audit: on populations dominated
    /// by duplicate scores the bucket pass, the argsort oracle, and the
    /// partitioned pass must all agree exactly — pilot positions are
    /// the `(score, id)` ranks, never score-only ranks. (The audit
    /// found no disagreement; this pins the behaviour.)
    #[test]
    fn tied_scores_locate_pilots_by_id_rank() {
        // All scores equal: position of pilot `id` must be exactly `id`.
        let s = vec![0.5f64; 200];
        let pilot_ids: Vec<usize> = vec![0, 1, 57, 58, 59, 198, 199];
        let serial = pilot_positions_bucket(&s, &pilot_ids);
        assert_eq!(serial, pilot_ids, "all-tied scores order by id");
        assert_eq!(serial, pilot_positions_argsort(&s, &pilot_ids));
        for parts in [1, 2, 3, 16, 200, 777] {
            assert_eq!(
                pilot_positions_bucket_partitioned(&s, &pilot_ids, parts),
                serial,
                "parts={parts}"
            );
        }

        // Two-valued scores: ranks are (score, id)-lexicographic.
        let s: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.2 } else { 0.8 })
            .collect();
        let pilot_ids: Vec<usize> = vec![0, 1, 2, 3, 96, 97, 98, 99];
        let serial = pilot_positions_bucket(&s, &pilot_ids);
        assert_eq!(serial, pilot_positions_argsort(&s, &pilot_ids));
        // Even ids fill positions 0..50 by id order; odd ids 50..100.
        assert_eq!(serial, vec![0, 1, 48, 49, 50, 51, 98, 99]);
        for parts in [1, 5, 13, 100] {
            assert_eq!(
                pilot_positions_bucket_partitioned(&s, &pilot_ids, parts),
                serial,
                "parts={parts}"
            );
        }
    }

    #[test]
    fn pilot_index_from_scores_matches_direct_construction() {
        let s = scores(400);
        let pilots: Vec<(usize, bool)> = (0..400).step_by(13).map(|id| (id, id % 3 == 0)).collect();
        // Oracle: argsort positions paired with the same labels.
        let ids: Vec<usize> = pilots.iter().map(|&(id, _)| id).collect();
        let positions = pilot_positions_argsort(&s, &ids);
        let mut sorted = pilots.clone();
        sorted.sort_by(|a, b| s[a.0].total_cmp(&s[b.0]).then(a.0.cmp(&b.0)));
        let direct = PilotIndex::new(
            400,
            positions
                .iter()
                .zip(&sorted)
                .map(|(&p, &(_, l))| (p, l))
                .collect(),
        )
        .unwrap();
        for parts in [1usize, 2, 7, 64, 400, 1000] {
            let merged = pilot_index_from_scores(&s, &pilots, parts).unwrap();
            assert_eq!(merged, direct, "parts={parts}");
        }
        // Duplicate-score population too.
        let tied = vec![0.25f64; 50];
        let pilots: Vec<(usize, bool)> = vec![(3, true), (40, false), (41, true)];
        for parts in [1usize, 4, 50] {
            let merged = pilot_index_from_scores(&tied, &pilots, parts).unwrap();
            assert_eq!(merged.positions(), &[3, 40, 41], "parts={parts}");
            assert!(merged.label(0) && !merged.label(1) && merged.label(2));
        }
    }

    #[test]
    fn pilot_index_from_positions_matches_direct_construction() {
        let entries: Vec<(usize, bool)> = vec![(3, true), (40, false), (41, true), (99, false)];
        let direct = PilotIndex::new(100, entries.clone()).unwrap();
        for parts in [1usize, 2, 7, 100] {
            let bounds = partition_bounds(100, parts);
            let merged = pilot_index_from_positions(&bounds, &entries).unwrap();
            assert_eq!(merged, direct, "parts={parts}");
        }
        // Validation: malformed bounds, out-of-range position, empty.
        assert!(pilot_index_from_positions(&[5, 10], &entries).is_err());
        assert!(pilot_index_from_positions(&[0, 10, 5], &entries).is_err());
        assert!(pilot_index_from_positions(&[0, 50], &[(50, true)]).is_err());
        assert!(pilot_index_from_positions(&[0, 50], &[]).is_err());
    }

    #[test]
    fn pilot_index_from_scores_validates() {
        let s = vec![0.1, 0.2, 0.3];
        // Empty pilots.
        assert!(pilot_index_from_scores(&s, &[], 2).is_err());
        // Out-of-range id.
        assert!(pilot_index_from_scores(&s, &[(3, true)], 2).is_err());
        // Duplicate id → colliding positions.
        assert!(pilot_index_from_scores(&s, &[(1, true), (1, false)], 2).is_err());
    }

    #[test]
    fn merged_pilots_equal_direct_construction() {
        let bounds = vec![0, 40, 60, 100];
        let per_partition = vec![
            vec![(5, true), (0, false), (39, true)],
            vec![(10, false)],
            vec![(0, true), (39, false)],
        ];
        let merged = merge_partition_pilots(&bounds, &per_partition).unwrap();
        let direct = PilotIndex::new(
            100,
            vec![
                (5, true),
                (0, false),
                (39, true),
                (50, false),
                (60, true),
                (99, false),
            ],
        )
        .unwrap();
        assert_eq!(merged, direct);
    }

    #[test]
    fn merge_validates_inputs() {
        // Local position outside its partition.
        assert!(merge_partition_pilots(&[0, 10, 20], &[vec![(10, true)], vec![]]).is_err());
        // Wrong number of partitions.
        assert!(merge_partition_pilots(&[0, 10], &[vec![], vec![]]).is_err());
        // Malformed bounds.
        assert!(merge_partition_pilots(&[5, 10], &[vec![(0, true)]]).is_err());
        assert!(merge_partition_pilots(&[0, 10, 5], &[vec![], vec![]]).is_err());
        // Empty union.
        assert!(merge_partition_pilots(&[0, 10, 20], &[vec![], vec![]]).is_err());
    }

    #[test]
    fn aligned_cuts_are_partition_boundaries() {
        let bounds = vec![0, 25, 50, 75, 100];
        // 30 → 25 (nearest), 60 → 50, 90 → 100 (nearest) which is not
        // interior → dropped; 80 → 75 stays.
        let cuts = align_cuts_to_partitions(&[30, 60, 90], &bounds).unwrap();
        assert_eq!(cuts, vec![25, 50]);
        let cuts = align_cuts_to_partitions(&[30, 60, 80], &bounds).unwrap();
        assert_eq!(cuts, vec![25, 50, 75]);
        for c in &cuts {
            assert!(bounds.contains(c));
        }
        // Equidistant snaps down: 37 is 12 from 25 and 13 from 50;
        // 38 is 13 from 25, 12 from 50.
        assert_eq!(align_cuts_to_partitions(&[37], &bounds).unwrap(), vec![25]);
        assert_eq!(align_cuts_to_partitions(&[38], &bounds).unwrap(), vec![50]);
        // Collapsing cuts dedupe; edge cuts drop.
        assert_eq!(
            align_cuts_to_partitions(&[26, 27, 2, 99], &bounds).unwrap(),
            vec![25]
        );
        // Unsorted input still yields strictly increasing output.
        assert_eq!(
            align_cuts_to_partitions(&[60, 30, 27], &bounds).unwrap(),
            vec![25, 50]
        );
        assert!(align_cuts_to_partitions(&[], &bounds).unwrap().is_empty());
        assert!(align_cuts_to_partitions(&[10], &[0, 10, 5]).is_err());
    }

    #[test]
    fn aligned_cuts_partition_strata_into_whole_partitions() {
        // A stratification whose cuts came from any design algorithm,
        // snapped so each stratum is a union of whole partitions.
        let bounds = partition_bounds(1000, 8);
        let cuts = align_cuts_to_partitions(&[130, 400, 877], &bounds).unwrap();
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        for c in &cuts {
            assert!(bounds.contains(c), "cut {c} not a partition boundary");
        }
        let s = crate::design::Stratification {
            cuts: cuts.clone(),
            estimated_variance: 0.0,
        };
        assert_eq!(s.stratum_sizes(1000).iter().sum::<usize>(), 1000);
    }

    /// Degenerate-input audit of `partition_bounds` and
    /// `align_cuts_to_partitions` (the sharding substrate): more shards
    /// than partitions, empty partitions (duplicate boundaries),
    /// single-row and empty populations. The audit found no panic and
    /// no bias — snapping stays deterministic and within-range on all
    /// of these; the tests pin that behaviour.
    #[test]
    fn degenerate_bounds_and_cuts_never_panic_or_drift() {
        // partition_bounds: parts > n produces duplicate (empty)
        // boundaries but stays monotone and exactly spans [0, n].
        for (n, parts) in [(1usize, 8usize), (0, 4), (3, 7), (5, 0)] {
            let b = partition_bounds(n, parts);
            assert_eq!(b[0], 0, "n={n} parts={parts}");
            assert_eq!(*b.last().unwrap(), n, "n={n} parts={parts}");
            assert!(b.windows(2).all(|w| w[0] <= w[1]), "n={n} parts={parts}");
            assert_eq!(b.len(), parts.max(1) + 1, "n={n} parts={parts}");
        }

        // More cuts than interior boundaries: everything collapses to
        // the few real boundaries, never out of range.
        let bounds = vec![0, 50, 100];
        let cuts = align_cuts_to_partitions(&[10, 20, 30, 40, 60, 70, 80, 90], &bounds).unwrap();
        assert_eq!(cuts, vec![50]);

        // Duplicate boundaries (empty partitions) snap cleanly.
        let bounds = vec![0, 5, 5, 10];
        assert_eq!(align_cuts_to_partitions(&[5], &bounds).unwrap(), vec![5]);
        assert_eq!(align_cuts_to_partitions(&[4], &bounds).unwrap(), vec![5]);
        assert_eq!(align_cuts_to_partitions(&[2], &bounds).unwrap(), vec![]);

        // Single-row population: no interior boundary exists, every
        // cut drops.
        let bounds = partition_bounds(1, 8);
        assert!(align_cuts_to_partitions(&[0, 1], &bounds)
            .unwrap()
            .is_empty());

        // Empty population: all-zero bounds accept any cut and drop it.
        let bounds = partition_bounds(0, 4);
        assert!(align_cuts_to_partitions(&[0, 3], &bounds)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn shard_bounds_collapse_excess_shards() {
        assert_eq!(shard_bounds(100, 4), vec![0, 25, 50, 75, 100]);
        // k > n: one shard per row, no empty shard survives.
        assert_eq!(shard_bounds(3, 8), vec![0, 1, 2, 3]);
        assert_eq!(shard_bounds(1, 8), vec![0, 1]);
        // k = 0 behaves as 1.
        assert_eq!(shard_bounds(10, 0), vec![0, 10]);
        // Empty population keeps the two-bound shape.
        assert_eq!(shard_bounds(0, 4), vec![0, 0]);
        // Every shard non-empty whenever n > 0.
        for (n, k) in [(7usize, 3usize), (100, 7), (13, 13), (13, 64)] {
            let b = shard_bounds(n, k);
            assert!(b.windows(2).all(|w| w[0] < w[1]), "n={n} k={k}: {b:?}");
            assert!(b.len() - 1 <= k.max(1));
        }
    }

    #[test]
    fn shard_bounds_aligned_are_unions_of_whole_partitions() {
        let parts = partition_bounds(1000, 16);
        let sharded = shard_bounds_aligned(&parts, 4).unwrap();
        assert_eq!(sharded.first(), Some(&0));
        assert_eq!(sharded.last(), Some(&1000));
        for c in &sharded {
            assert!(parts.contains(c), "cut {c} not a partition boundary");
        }
        // 16 partitions / 4 shards divide evenly: aligned == uniform.
        assert_eq!(sharded, shard_bounds(1000, 4));

        // More shards than partitions: collapses to the partition
        // layout itself, never produces empty shards.
        let parts = partition_bounds(100, 2);
        let sharded = shard_bounds_aligned(&parts, 8).unwrap();
        assert_eq!(sharded, vec![0, 50, 100]);

        // Single partition: no interior boundary to snap to.
        let sharded = shard_bounds_aligned(&[0, 100], 8).unwrap();
        assert_eq!(sharded, vec![0, 100]);

        // Degenerates propagate instead of panicking.
        assert_eq!(shard_bounds_aligned(&[0, 0], 4).unwrap(), vec![0, 0]);
        assert!(shard_bounds_aligned(&[], 4).is_err());
        assert!(shard_bounds_aligned(&[5, 10], 2).is_err());
    }
}
