//! DynPgm and DynPgmP: dynamic-programming stratification
//! (paper §4.2.1–§4.2.2, Theorems 3–4).
//!
//! The Neyman objective (Eq. 5) is **not separable**: the marginal cost
//! of stratum `h` depends on the *auxiliary sum* `Σ_{h'<h} N_h' s_h'` of
//! the prefix. DynPgm restores a DP guarantee by running the program
//! once per bound `t ∈ T` on every stratum's `N_h·s_h` term and tracking
//! the auxiliary sum `X` of the chosen prefix. Every DP cell stores the
//! **exact** objective value of a concrete stratification, so whichever
//! `t` produces the best final cell is returned with a truthful variance
//! — pruning `T` can only affect which candidate is found, never the
//! correctness of its reported value.
//!
//! Candidate boundaries are taken at power-of-`(1+ε)` offsets on *both
//! sides* of every pilot position (the paper's two-sided construction),
//! giving `|B| = O(m log N)`.
//!
//! DynPgmP (proportional allocation, Eq. 6) is separable, needs no `T`
//! loop, and is a plain optimal DP over the same boundary set
//! (approximation ratio 2, Theorem 4).

use crate::design::{DesignParams, Stratification};
use crate::error::{StrataError, StrataResult};
use crate::pilot::PilotIndex;
use serde::{Deserialize, Serialize};

/// How many auxiliary-sum bounds `t` DynPgm tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TSelection {
    /// The paper's full grid `T = {2^i : 0 ≤ i ≤ ⌈log₂(mHN)⌉}` plus an
    /// unconstrained pass — required for the Theorem 3 guarantee.
    Full,
    /// An unconstrained pass plus `k` log-spaced bounds — the practical
    /// default (identical results on all our workloads, fraction of the
    /// cost; see the ablation bench).
    Pruned(usize),
    /// A single unconstrained pass (fastest, no guarantee).
    Unconstrained,
}

impl Default for TSelection {
    fn default() -> Self {
        TSelection::Pruned(6)
    }
}

/// The global candidate boundary set `B`: for every pilot position
/// `ı_k`, offsets `±⌈(1+ε)^t⌉` (capped by the neighbouring pilots), the
/// pilot-adjacent cuts themselves, and the terminal cut `N`.
pub(crate) fn candidate_boundaries(pilot: &PilotIndex, epsilon: f64) -> Vec<usize> {
    let n = pilot.n_objects();
    let m = pilot.m();
    let mut out: Vec<usize> = Vec::new();
    for k in 1..=m {
        let here = pilot.position(k - 1) + 1; // ı_k (exclusive-end cut at pilot k)
        let next_limit = if k < m { pilot.position(k) } else { n };
        let prev_limit = if k >= 2 { pilot.position(k - 2) + 1 } else { 1 };
        out.push(here);
        // Forward offsets: ı_k + (1+ε)^t, strictly before ı_{k+1}.
        let mut step = 1.0f64;
        loop {
            let c = here + step.ceil() as usize;
            if c > next_limit {
                break;
            }
            out.push(c);
            step *= 1.0 + epsilon;
            if !step.is_finite() {
                break;
            }
        }
        // Backward offsets: ı_k − (1+ε)^t, strictly after ı_{k−1}.
        let mut step = 1.0f64;
        loop {
            let delta = step.ceil() as usize;
            if delta >= here || here - delta < prev_limit {
                break;
            }
            out.push(here - delta);
            step *= 1.0 + epsilon;
            if !step.is_finite() {
                break;
            }
        }
    }
    out.retain(|&c| c >= 1 && c <= n);
    out.push(n);
    out.sort_unstable();
    out.dedup();
    out
}

/// Shared DP state across boundary rows.
struct Rows {
    /// Candidate cuts, ascending; last element is `N`.
    b: Vec<usize>,
    /// `l[i]` = number of pilots with position `< b[i]`.
    l: Vec<usize>,
}

impl Rows {
    fn new(pilot: &PilotIndex, epsilon: f64) -> Self {
        let b = candidate_boundaries(pilot, epsilon);
        let l = b.iter().map(|&c| pilot.pilots_below(c)).collect();
        Self { b, l }
    }

    /// `(N_{j,i}, pilots, s²)` for the stratum `(b_j, b_i]`; `j = usize::MAX`
    /// denotes the virtual origin `b = 0`.
    fn stratum(
        &self,
        pilot: &PilotIndex,
        j: Option<usize>,
        i: usize,
    ) -> (usize, usize, Option<f64>) {
        let (b_j, l_j) = match j {
            Some(j) => (self.b[j], self.l[j]),
            None => (0, 0),
        };
        let size = self.b[i] - b_j;
        let pilots = self.l[i] - l_j;
        let s2 = pilot.s2_for_pilot_range(l_j, self.l[i]);
        (size, pilots, s2)
    }
}

/// Run DynPgm (Neyman-allocation objective, Eq. 5).
///
/// # Errors
///
/// Returns feasibility errors, or [`StrataError::Infeasible`] if no
/// feasible stratification exists over the candidate boundaries.
pub fn dynpgm(
    pilot: &PilotIndex,
    params: &DesignParams,
    t_selection: TSelection,
) -> StrataResult<Stratification> {
    params.check_feasible(pilot)?;
    let rows = Rows::new(pilot, params.epsilon);
    let m = pilot.m() as f64;
    let h = params.n_strata as f64;
    let nn = pilot.n_objects() as f64;

    let t_values: Vec<f64> = match t_selection {
        TSelection::Unconstrained => vec![f64::INFINITY],
        TSelection::Pruned(k) => {
            let mut v = vec![f64::INFINITY];
            let max_exp = (m * h * nn).log2().ceil().max(1.0);
            let k = k.max(1);
            for i in 0..k {
                let exp = max_exp * (i as f64 + 1.0) / (k as f64 + 1.0);
                v.push(exp.exp2());
            }
            v
        }
        TSelection::Full => {
            let mut v = vec![f64::INFINITY];
            let max_exp = (m * h * nn).log2().ceil() as i32;
            for i in 0..=max_exp {
                v.push(f64::from(i).exp2());
            }
            v
        }
    };

    let mut best: Option<Stratification> = None;
    for &t in &t_values {
        if let Some(s) = dynpgm_single(pilot, params, &rows, t) {
            if best
                .as_ref()
                .is_none_or(|b| s.estimated_variance < b.estimated_variance)
            {
                best = Some(s);
            }
        }
    }
    best.ok_or_else(|| StrataError::Infeasible {
        message: "DynPgm found no feasible stratification over candidate boundaries".into(),
    })
}

/// One DP pass under the auxiliary-sum bound `N_h·s_h ≤ t`.
fn dynpgm_single(
    pilot: &PilotIndex,
    params: &DesignParams,
    rows: &Rows,
    t: f64,
) -> Option<Stratification> {
    let nb = rows.b.len();
    let h_max = params.n_strata;
    let n_budget = params.budget as f64;
    let nu = params.min_stratum_size;
    let mu = params.min_pilots_per_stratum;

    // a[h][i]: best exact partial objective for h strata over [0, b_i).
    // x[h][i]: auxiliary sum Σ N s of that solution.
    // parent[h][i]: predecessor row (usize::MAX = origin).
    let mut a = vec![vec![f64::INFINITY; nb]; h_max + 1];
    let mut x = vec![vec![0.0f64; nb]; h_max + 1];
    let mut parent = vec![vec![usize::MAX; nb]; h_max + 1];

    // Base case: one stratum covering (0, b_i].
    for i in 0..nb {
        let (size, pilots, s2) = rows.stratum(pilot, None, i);
        if size < nu || pilots < mu {
            continue;
        }
        let Some(s2) = s2 else { continue };
        let s = s2.max(0.0).sqrt();
        let ns = size as f64 * s;
        if ns > t {
            continue;
        }
        a[1][i] = size as f64 * size as f64 * s2 / n_budget - size as f64 * s2;
        x[1][i] = ns;
    }

    for h in 2..=h_max {
        for i in 0..nb {
            // The stratum (b_j, b_i] must satisfy the size/pilot minima;
            // j must itself be reachable with h−1 strata.
            for j in 0..i {
                if a[h - 1][j].is_infinite() {
                    continue;
                }
                let (size, pilots, s2) = rows.stratum(pilot, Some(j), i);
                if size < nu || pilots < mu {
                    continue;
                }
                let Some(s2) = s2 else { continue };
                let s = s2.max(0.0).sqrt();
                let ns = size as f64 * s;
                if ns > t {
                    continue;
                }
                let size_f = size as f64;
                let cand = a[h - 1][j] + size_f * size_f * s2 / n_budget - size_f * s2
                    + 2.0 / n_budget * ns * x[h - 1][j];
                if cand < a[h][i] {
                    a[h][i] = cand;
                    x[h][i] = x[h - 1][j] + ns;
                    parent[h][i] = j;
                }
            }
        }
    }

    let last = nb - 1; // b = N
    if a[h_max][last].is_infinite() {
        return None;
    }
    // Reconstruct cuts.
    let mut cuts = Vec::with_capacity(h_max - 1);
    let mut i = last;
    for h in (2..=h_max).rev() {
        let j = parent[h][i];
        debug_assert_ne!(j, usize::MAX);
        cuts.push(rows.b[j]);
        i = j;
    }
    cuts.reverse();
    Some(Stratification {
        estimated_variance: a[h_max][last],
        cuts,
    })
}

/// Run DynPgmP (proportional-allocation objective, Eq. 6): a separable,
/// single-pass optimal DP over the candidate boundaries.
///
/// # Errors
///
/// Returns feasibility errors, or [`StrataError::Infeasible`] if no
/// feasible stratification exists over the candidate boundaries.
pub fn dynpgmp(pilot: &PilotIndex, params: &DesignParams) -> StrataResult<Stratification> {
    params.check_feasible(pilot)?;
    let rows = Rows::new(pilot, params.epsilon);
    let nb = rows.b.len();
    let h_max = params.n_strata;
    let nn = pilot.n_objects() as f64;
    let n_budget = params.budget as f64;
    let factor = (nn - n_budget) / n_budget;
    let nu = params.min_stratum_size;
    let mu = params.min_pilots_per_stratum;

    let mut a = vec![vec![f64::INFINITY; nb]; h_max + 1];
    let mut parent = vec![vec![usize::MAX; nb]; h_max + 1];

    for (i, cell) in a[1].iter_mut().enumerate() {
        let (size, pilots, s2) = rows.stratum(pilot, None, i);
        if size < nu || pilots < mu {
            continue;
        }
        let Some(s2) = s2 else { continue };
        *cell = factor * size as f64 * s2;
    }
    for h in 2..=h_max {
        for i in 0..nb {
            for j in 0..i {
                if a[h - 1][j].is_infinite() {
                    continue;
                }
                let (size, pilots, s2) = rows.stratum(pilot, Some(j), i);
                if size < nu || pilots < mu {
                    continue;
                }
                let Some(s2) = s2 else { continue };
                let cand = a[h - 1][j] + factor * size as f64 * s2;
                if cand < a[h][i] {
                    a[h][i] = cand;
                    parent[h][i] = j;
                }
            }
        }
    }

    let last = nb - 1;
    if a[h_max][last].is_infinite() {
        return Err(StrataError::Infeasible {
            message: "DynPgmP found no feasible stratification over candidate boundaries".into(),
        });
    }
    let mut cuts = Vec::with_capacity(h_max - 1);
    let mut i = last;
    for h in (2..=h_max).rev() {
        let j = parent[h][i];
        cuts.push(rows.b[j]);
        i = j;
    }
    cuts.reverse();
    Ok(Stratification {
        estimated_variance: a[h_max][last],
        cuts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force;
    use crate::design::Allocation;
    use crate::objective::evaluate_cuts;

    fn pilot_random(n_objects: usize, m: usize, seed: u64) -> PilotIndex {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let entries: Vec<(usize, bool)> = (0..m)
            .map(|k| {
                let pos = k * n_objects / m;
                let frac = pos as f64 / n_objects as f64;
                (pos, next() < frac * frac) // skewed positive tail
            })
            .collect();
        PilotIndex::new(n_objects, entries).unwrap()
    }

    fn params(h: usize) -> DesignParams {
        DesignParams {
            n_strata: h,
            budget: 6,
            min_stratum_size: 2,
            min_pilots_per_stratum: 2,
            epsilon: 1.0,
        }
    }

    #[test]
    fn boundary_set_contains_pilot_cuts_and_terminal() {
        let pilot = pilot_random(100, 10, 1);
        let b = candidate_boundaries(&pilot, 1.0);
        assert_eq!(*b.last().unwrap(), 100);
        for k in 1..=10 {
            let cut = pilot.position(k - 1) + 1;
            assert!(b.binary_search(&cut).is_ok(), "missing pilot cut {cut}");
        }
        // Sorted and deduped.
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn boundary_set_size_is_m_log_n() {
        let pilot = pilot_random(10_000, 20, 3);
        let b = candidate_boundaries(&pilot, 1.0);
        // |B| = O(m log N): with m=20, log2(500-gap) ≈ 9, two-sided →
        // loosely under 20 * 2 * 10 + m + 1.
        assert!(b.len() <= 20 * 2 * 12 + 21, "|B| = {}", b.len());
    }

    #[test]
    fn reported_variance_matches_reevaluation() {
        // The DP's A value must equal the exact objective of its cuts.
        let pilot = pilot_random(200, 20, 7);
        let p = params(3);
        let s = dynpgm(&pilot, &p, TSelection::default()).unwrap();
        let v = evaluate_cuts(&pilot, &s.cuts, &p, Allocation::Neyman).unwrap();
        assert!(
            (v - s.estimated_variance).abs() <= 1e-6 * (1.0 + v.abs()),
            "DP reported {} but cuts evaluate to {v}",
            s.estimated_variance
        );
    }

    #[test]
    fn dynpgmp_reported_variance_matches_reevaluation() {
        let pilot = pilot_random(200, 20, 9);
        let p = params(3);
        let s = dynpgmp(&pilot, &p).unwrap();
        let v = evaluate_cuts(&pilot, &s.cuts, &p, Allocation::Proportional).unwrap();
        assert!((v - s.estimated_variance).abs() <= 1e-6 * (1.0 + v.abs()));
    }

    #[test]
    fn within_theorem3_factor_of_brute_force() {
        for seed in [2u64, 5, 8] {
            let pilot = pilot_random(40, 10, seed);
            let p = params(3);
            let exact = brute_force(&pilot, &p, Allocation::Neyman).unwrap();
            let dp = dynpgm(&pilot, &p, TSelection::Full).unwrap();
            // Theorem 3 factor: (14/3)(10H − 9) = 98 for H = 3. In
            // practice the DP is near-optimal; we assert a much tighter
            // bound plus absolute slack for near-zero optima.
            assert!(
                dp.estimated_variance <= 6.0 * exact.estimated_variance.abs() + 1e-6,
                "seed {seed}: dynpgm {} vs exact {}",
                dp.estimated_variance,
                exact.estimated_variance
            );
        }
    }

    #[test]
    fn dynpgmp_within_factor_two_of_brute_force() {
        for seed in [2u64, 5, 8, 13] {
            let pilot = pilot_random(40, 10, seed);
            let p = params(3);
            let exact = brute_force(&pilot, &p, Allocation::Proportional).unwrap();
            let dp = dynpgmp(&pilot, &p).unwrap();
            // Theorem 4: factor 2.
            assert!(
                dp.estimated_variance <= 2.0 * exact.estimated_variance.abs() + 1e-6,
                "seed {seed}: dynpgmp {} vs exact {}",
                dp.estimated_variance,
                exact.estimated_variance
            );
        }
    }

    #[test]
    fn pruned_t_is_no_worse_than_unconstrained() {
        let pilot = pilot_random(300, 24, 21);
        let p = params(4);
        let pruned = dynpgm(&pilot, &p, TSelection::Pruned(6)).unwrap();
        let uncon = dynpgm(&pilot, &p, TSelection::Unconstrained).unwrap();
        // Pruned includes the unconstrained pass, so it can only match
        // or improve.
        assert!(pruned.estimated_variance <= uncon.estimated_variance + 1e-9);
    }

    #[test]
    fn handles_many_strata() {
        let pilot = pilot_random(500, 60, 31);
        let p = DesignParams {
            n_strata: 8,
            ..params(8)
        };
        let dp = dynpgm(&pilot, &p, TSelection::default()).unwrap();
        assert_eq!(dp.cuts.len(), 7);
        let sizes = dp.stratum_sizes(500);
        assert_eq!(sizes.iter().sum::<usize>(), 500);
        assert!(sizes.iter().all(|&s| s >= 2));
        let dpp = dynpgmp(&pilot, &p).unwrap();
        assert_eq!(dpp.cuts.len(), 7);
    }

    #[test]
    fn infeasible_errors() {
        let pilot = pilot_random(10, 4, 1);
        assert!(dynpgm(&pilot, &params(3), TSelection::default()).is_err());
        assert!(dynpgmp(&pilot, &params(3)).is_err());
    }
}
