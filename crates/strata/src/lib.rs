//! Stratification-design algorithms from *Learning to Sample* (§4.2).
//!
//! Given a population of `N` objects **ordered by a classifier score**
//! and a first-stage (pilot) sample with known labels, these algorithms
//! choose stratum boundaries that minimize the estimated variance of a
//! second-stage stratified estimator:
//!
//! * [`mod@dirsol`] — **DirSol**: the (almost) exact `H = 3` algorithm that
//!   minimizes a bivariate quadratic over a constraint polygon
//!   (Theorem 1);
//! * [`mod@logbdr`] — **LogBdr**: any `H`, enumerating pilot partitions with
//!   power-of-`(1+ε)` candidate boundaries (Theorem 2);
//! * [`mod@dynpgm`] — **DynPgm**: the dynamic program with auxiliary-sum
//!   bounds `T` that makes the non-separable Neyman objective tractable
//!   (Theorem 3), and **DynPgmP**: the separable proportional-allocation
//!   DP with approximation ratio 2 (Theorem 4);
//! * [`fixed`] — the fixed-width / fixed-height baselines of §5.4.1;
//! * [`bruteforce`] — exact enumeration over all cut positions, the
//!   reference oracle the property tests compare against;
//! * [`partitioned`] — partition-aligned stratification: the pilot
//!   bucket pass run per partition in parallel (bit-identical to the
//!   serial pass), per-partition pilot sets merged into one global
//!   [`PilotIndex`], and design cuts snapped to partition boundaries so
//!   strata are unions of whole partitions.
//!
//! The shared vocabulary lives in [`pilot`] (the prefix-sum index `Γ` and
//! the `O(N log m)` bucket pass that locates pilot positions without
//! sorting the population) and [`objective`] (equations (5) and (6)).
//!
//! **Production pilot paths.** The estimator suite in `lts-core`
//! assembles its design pilots partition-aligned through
//! [`merge_partition_pilots`] (positions are known from the score
//! ordering). Callers that hold raw scores but *no* ordering locate
//! pilots with [`pilot_index_from_scores`] (parallel bucket pass +
//! merge, `O(N log m)` with no population sort — benchmarked against
//! the argsort in `bench_score_pipeline`) or the one-call
//! [`design_from_scores`]. The serial [`pilot_positions_bucket`] and
//! the argsort [`pilot_positions_argsort`] are kept as test oracles;
//! the proptests pin every path to identical positions, ties included.

#![warn(missing_docs)]

pub mod bruteforce;
pub mod design;
pub mod dirsol;
pub mod dynpgm;
pub mod error;
pub mod fixed;
pub mod logbdr;
pub mod objective;
pub mod partitioned;
pub mod pilot;

pub use bruteforce::brute_force;
pub use design::{
    design, design_from_scores, Allocation, DesignAlgorithm, DesignParams, Stratification,
};
pub use dirsol::dirsol;
pub use dynpgm::{dynpgm, dynpgmp, TSelection};
pub use error::{StrataError, StrataResult};
pub use fixed::{fixed_height_cuts, fixed_width_cuts};
pub use logbdr::logbdr;
pub use objective::{evaluate_cuts, neyman_variance, proportional_variance, StratumStat};
pub use partitioned::{
    align_cuts_to_partitions, merge_partition_pilots, pilot_index_from_positions,
    pilot_index_from_scores, pilot_positions_bucket_partitioned, shard_bounds,
    shard_bounds_aligned,
};
pub use pilot::{pilot_positions_argsort, pilot_positions_bucket, PilotIndex};
