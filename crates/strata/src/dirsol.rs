//! DirSol: the (almost) exact stratification algorithm for `H = 3`
//! (paper §4.2.1, Appendix A, Theorem 1).
//!
//! For every pair `(i, j)` of pilot indices — pilot `i` is the last
//! sampled object of stratum 1, pilot `j` the first of stratum 3 — the
//! within-stratum variances `s₁, s₂, s₃` are fixed, and the objective
//! becomes the bivariate quadratic
//! `f(N₁, N₃) = a₁N₁² + a₂N₃² + a₃N₁N₃ + a₄N₁ + a₅N₃ + a₆`
//! minimized over the constraint polygon `R`. We enumerate the critical
//! point (or valley line, since the Hessian is singular whenever the
//! coefficients share the structural form), the five edge minima, and
//! the polygon corners, snap each candidate to nearby feasible integer
//! points, and keep the best.

use crate::design::{Allocation, DesignParams, Stratification};
use crate::error::{StrataError, StrataResult};
use crate::objective::evaluate_cuts;
use crate::pilot::PilotIndex;

/// Coefficients of `f(N1, N3)` for one `(i, j)` pair. The constant term
/// `a6` of the paper's expansion is irrelevant to the argmin and omitted
/// (final variances come from re-evaluating the exact objective).
#[derive(Debug, Clone, Copy)]
struct Quad {
    a1: f64,
    a2: f64,
    a3: f64,
    a4: f64,
    a5: f64,
}

impl Quad {
    fn from_sds(s1: f64, s2: f64, s3: f64, n: f64, nn: f64) -> Self {
        Self {
            a1: (s1 - s2) * (s1 - s2) / n,
            a2: (s3 - s2) * (s3 - s2) / n,
            a3: 2.0 * (s1 - s2) * (s3 - s2) / n,
            a4: 2.0 * (s1 - s2) * nn * s2 / n - (s1 * s1 - s2 * s2),
            a5: 2.0 * (s3 - s2) * nn * s2 / n - (s3 * s3 - s2 * s2),
        }
    }
}

/// Feasible region for `(N1, N3)`: box `[l1,u1] × [l3,u3]` intersected
/// with `N1 + N3 <= cap`.
#[derive(Debug, Clone, Copy)]
struct Region {
    l1: f64,
    u1: f64,
    l3: f64,
    u3: f64,
    cap: f64,
}

impl Region {
    fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.l1 - 1e-9
            && x <= self.u1 + 1e-9
            && y >= self.l3 - 1e-9
            && y <= self.u3 + 1e-9
            && x + y <= self.cap + 1e-9
    }
}

/// Run DirSol. Requires `params.n_strata == 3`.
///
/// # Errors
///
/// Returns [`StrataError::Unsupported`] for `H != 3`, or infeasibility
/// errors when the pilot cannot support three strata.
pub fn dirsol(
    pilot: &PilotIndex,
    params: &DesignParams,
    allocation: Allocation,
) -> StrataResult<Stratification> {
    if params.n_strata != 3 {
        return Err(StrataError::Unsupported {
            message: format!("DirSol handles H = 3 only, got H = {}", params.n_strata),
        });
    }
    params.check_feasible(pilot)?;
    let m = pilot.m();
    let nn = pilot.n_objects();
    let mu = params.min_pilots_per_stratum;
    let nu = params.min_stratum_size;
    let n_budget = params.budget as f64;

    let mut best: Option<Stratification> = None;

    // i, j are 1-indexed pilot counts as in the paper: stratum 1 holds
    // pilots 1..=i, stratum 2 holds i+1..=j-1, stratum 3 holds j..=m.
    for i in mu..m {
        let Some(s1_sq) = pilot.s2_for_pilot_range(0, i) else {
            continue;
        };
        for j in (i + mu + 1)..=(m - mu + 1) {
            let Some(s2_sq) = pilot.s2_for_pilot_range(i, j - 1) else {
                continue;
            };
            let Some(s3_sq) = pilot.s2_for_pilot_range(j - 1, m) else {
                continue;
            };
            // Constraint polygon.
            let l1 = (pilot.position(i - 1) + 1).max(nu);
            let u1 = pilot.position(i);
            let l3 = (nn - pilot.position(j - 1)).max(nu);
            let u3 = nn - pilot.position(j - 2) - 1;
            let cap = nn - nu;
            if l1 > u1 || l3 > u3 || l1 + l3 > cap {
                continue;
            }
            let region = Region {
                l1: l1 as f64,
                u1: u1 as f64,
                l3: l3 as f64,
                u3: u3 as f64,
                cap: cap as f64,
            };
            let quad = Quad::from_sds(
                s1_sq.max(0.0).sqrt(),
                s2_sq.max(0.0).sqrt(),
                s3_sq.max(0.0).sqrt(),
                n_budget,
                nn as f64,
            );

            for (x, y) in candidates(&quad, &region) {
                try_candidate(pilot, params, allocation, &region, x, y, &mut best);
            }
        }
    }

    best.ok_or_else(|| StrataError::Infeasible {
        message: "DirSol found no feasible 3-way stratification".into(),
    })
}

/// Enumerate real-valued candidate minimizers: critical point / valley
/// samples, edge minima, and corners.
fn candidates(q: &Quad, r: &Region) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(24);

    // Corners of the box (the diagonal constraint is handled by
    // clamping during integer snapping).
    out.push((r.l1, r.l3));
    out.push((r.l1, r.u3.min(r.cap - r.l1)));
    out.push((r.u1, r.l3));
    out.push((r.u1, r.u3.min(r.cap - r.u1)));

    // Interior critical point (unique-solution case).
    let det = 4.0 * q.a1 * q.a2 - q.a3 * q.a3;
    let scale = (q.a1.abs() + q.a2.abs() + q.a3.abs()).max(1e-300);
    if det.abs() > 1e-12 * scale * scale {
        let x = (q.a3 * q.a5 - 2.0 * q.a2 * q.a4) / det;
        let y = (q.a3 * q.a4 - 2.0 * q.a1 * q.a5) / det;
        if r.contains(x, y) {
            out.push((x, y));
        }
    } else if q.a3.abs() > 1e-300 {
        // Degenerate (parabolic-cylinder) case: sample the valley line
        // 2·a1·x + a3·y + a4 = 0 across the feasible x-range.
        for t in 0..=4 {
            let x = r.l1 + (r.u1 - r.l1) * f64::from(t) / 4.0;
            let y = -(2.0 * q.a1 * x + q.a4) / q.a3;
            out.push((x, y));
        }
    }

    // Vertical edges x = l1, x = u1: minimize over y.
    for x in [r.l1, r.u1] {
        if q.a2 > 0.0 {
            out.push((x, -(q.a3 * x + q.a5) / (2.0 * q.a2)));
        }
    }
    // Horizontal edges y = l3, y = u3: minimize over x.
    for y in [r.l3, r.u3] {
        if q.a1 > 0.0 {
            out.push((-(q.a3 * y + q.a4) / (2.0 * q.a1), y));
        }
    }
    // Diagonal edge x + y = cap.
    let a = q.a1 + q.a2 - q.a3;
    let b = -2.0 * q.a2 * r.cap + q.a3 * r.cap + q.a4 - q.a5;
    if a > 0.0 {
        let x = -b / (2.0 * a);
        out.push((x, r.cap - x));
    }
    out
}

/// Snap a real candidate to nearby feasible integer points and keep the
/// best (scored with the exact objective so all `(i, j)` pairs compare
/// on equal footing).
#[allow(clippy::too_many_arguments)]
fn try_candidate(
    pilot: &PilotIndex,
    params: &DesignParams,
    allocation: Allocation,
    r: &Region,
    x: f64,
    y: f64,
    best: &mut Option<Stratification>,
) {
    let nn = pilot.n_objects();
    let x_opts = [x.floor(), x.ceil()];
    for &xf in &x_opts {
        let xi = xf.clamp(r.l1, r.u1);
        if xi.fract() != 0.0 {
            continue;
        }
        let y_cap = r.u3.min(r.cap - xi);
        if y_cap < r.l3 {
            continue; // no feasible N3 for this N1
        }
        for yf in [y.floor(), y.ceil(), y_cap.floor()] {
            let yi = yf.clamp(r.l3, y_cap);
            if yi.fract() != 0.0 || yi < r.l3 - 0.5 {
                continue;
            }
            if !r.contains(xi, yi) {
                continue;
            }
            let n1 = xi as usize;
            let n3 = yi as usize;
            if n1 + n3 >= nn {
                continue;
            }
            let cuts = vec![n1, nn - n3];
            if let Some(v) = evaluate_cuts(pilot, &cuts, params, allocation) {
                if best.as_ref().is_none_or(|b| v < b.estimated_variance) {
                    *best = Some(Stratification {
                        cuts,
                        estimated_variance: v,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force;

    fn pilot_with_pattern(n_objects: usize, m: usize, flip_at: f64, seed: u64) -> PilotIndex {
        // Pilots spread over the population; labels mostly negative
        // before `flip_at` fraction, mostly positive after, with noise.
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let entries: Vec<(usize, bool)> = (0..m)
            .map(|k| {
                let pos = k * n_objects / m + (k % 2);
                let frac = pos as f64 / n_objects as f64;
                let p_pos = if frac < flip_at { 0.1 } else { 0.9 };
                (pos.min(n_objects - 1), next() < p_pos)
            })
            .collect();
        PilotIndex::new(n_objects, entries).unwrap()
    }

    fn params() -> DesignParams {
        DesignParams {
            n_strata: 3,
            budget: 8,
            min_stratum_size: 3,
            min_pilots_per_stratum: 2,
            epsilon: 1.0,
        }
    }

    #[test]
    fn rejects_wrong_h() {
        let pilot = pilot_with_pattern(60, 12, 0.5, 1);
        let bad = DesignParams {
            n_strata: 4,
            ..params()
        };
        assert!(matches!(
            dirsol(&pilot, &bad, Allocation::Neyman),
            Err(StrataError::Unsupported { .. })
        ));
    }

    #[test]
    fn close_to_brute_force_on_small_inputs() {
        // Theorem 1: DirSol is within (1 + O(1/N⊔)) of optimal. On small
        // random instances we check it is close to the brute-force
        // optimum (allowing the theorem's slack).
        for seed in [1u64, 2, 3, 4, 5] {
            let pilot = pilot_with_pattern(48, 12, 0.55, seed);
            let p = params();
            let exact = brute_force(&pilot, &p, Allocation::Neyman).unwrap();
            let ds = dirsol(&pilot, &p, Allocation::Neyman).unwrap();
            let nu = p.min_stratum_size as f64;
            let n = p.budget as f64;
            let factor = 1.0
                + 2.0 / nu
                + 2.0 / (nu - n).abs().max(1.0)
                + 4.0 / (nu * (nu - n).abs().max(1.0));
            // Variances can be ~0 at the optimum; compare with an
            // absolute slack as well.
            assert!(
                ds.estimated_variance <= exact.estimated_variance.abs() * factor + 1e-6,
                "seed {seed}: dirsol {} vs exact {}",
                ds.estimated_variance,
                exact.estimated_variance
            );
        }
    }

    #[test]
    fn clean_split_found_exactly() {
        // Pilots: negatives, a mixed middle, positives. Parameters
        // respect the paper's Theorem-1 assumption N⊔ > n.
        let entries: Vec<(usize, bool)> = vec![
            (0, false),
            (4, false),
            (8, false),
            (12, false),
            (16, false),
            (20, true),
            (24, false),
            (28, true),
            (32, true),
            (36, true),
            (40, true),
            (44, true),
        ];
        let pilot = PilotIndex::new(48, entries).unwrap();
        let p = DesignParams {
            budget: 4,
            min_stratum_size: 8, // N⊔ > n, per Theorem 1
            ..params()
        };
        let ds = dirsol(&pilot, &p, Allocation::Neyman).unwrap();
        assert_eq!(ds.cuts.len(), 2);
        let exact = brute_force(&pilot, &p, Allocation::Neyman).unwrap();
        // Within the Theorem-1 factor of the optimum (generously).
        assert!(
            ds.estimated_variance <= exact.estimated_variance.abs() * 2.5 + 1e-6,
            "dirsol {} vs exact {} ({:?})",
            ds.estimated_variance,
            exact.estimated_variance,
            ds.cuts
        );
        // The mixed pilots (positions 20, 24, 28) end up inside the
        // middle stratum, not split across the homogeneous ones.
        assert!(ds.cuts[0] <= 20 && ds.cuts[1] > 24, "{:?}", ds.cuts);
    }

    #[test]
    fn respects_constraints() {
        let pilot = pilot_with_pattern(90, 18, 0.4, 9);
        let p = DesignParams {
            min_stratum_size: 10,
            ..params()
        };
        let ds = dirsol(&pilot, &p, Allocation::Neyman).unwrap();
        let sizes = ds.stratum_sizes(90);
        assert!(sizes.iter().all(|&s| s >= 10), "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 90);
    }

    #[test]
    fn proportional_allocation_works_too() {
        let pilot = pilot_with_pattern(60, 12, 0.5, 3);
        let ds = dirsol(&pilot, &params(), Allocation::Proportional).unwrap();
        let exact = brute_force(&pilot, &params(), Allocation::Proportional).unwrap();
        assert!(
            ds.estimated_variance <= exact.estimated_variance * 2.0 + 1e-6,
            "dirsol {} vs exact {}",
            ds.estimated_variance,
            exact.estimated_variance
        );
    }

    #[test]
    fn infeasible_pilot_errors() {
        let pilot = PilotIndex::new(10, vec![(0, true), (5, false)]).unwrap();
        assert!(dirsol(&pilot, &params(), Allocation::Neyman).is_err());
    }
}
