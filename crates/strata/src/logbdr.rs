//! LogBdr: stratification for any `H` via pilot partitions with
//! logarithmically many candidate boundaries (paper §4.2.1, Theorem 2).
//!
//! Every way of partitioning the `m` pilot samples into `H` consecutive
//! groups is considered; between two consecutive pilots assigned to
//! different strata, only boundaries at power-of-`(1+ε)` offsets from the
//! left pilot (plus the last possible index) are tried. With `ε = 1`
//! this is the paper's power-of-two construction and the approximation
//! ratio of Theorem 2 applies.
//!
//! Complexity is `O(m^{H−1} · log^{H−1} N)` — exponential in `H`; use
//! [`crate::dynpgm::dynpgm`] when `m` or `H` is large.

use crate::design::{Allocation, DesignParams, Stratification};
use crate::error::{StrataError, StrataResult};
use crate::objective::evaluate_cuts;
use crate::pilot::PilotIndex;

/// Candidate boundary (cut) values between pilot `k` (1-based; last
/// pilot of the left stratum) and pilot `k+1`: offsets `0, ⌈(1+ε)^t⌉`
/// from `ı_k`, capped just before `ı_{k+1}`, plus `ı_{k+1} − 1`.
///
/// Cuts are in exclusive-end space: cut `c` means the stratum covers
/// object positions `[prev_cut, c)`.
pub(crate) fn boundary_candidates(pilot: &PilotIndex, k: usize, epsilon: f64) -> Vec<usize> {
    let lo = pilot.position(k - 1) + 1; // ı_k
    let hi = pilot.position(k); // ı_{k+1} − 1
    let mut out = vec![lo];
    let mut step = 1.0f64;
    loop {
        let delta = step.ceil() as usize;
        let c = lo + delta;
        if c > hi {
            break;
        }
        if *out.last().expect("non-empty") != c {
            out.push(c);
        }
        step *= 1.0 + epsilon;
        if !step.is_finite() {
            break;
        }
    }
    if *out.last().expect("non-empty") != hi {
        out.push(hi);
    }
    out
}

/// Run LogBdr.
///
/// # Errors
///
/// Returns feasibility/parameter errors, or
/// [`StrataError::Infeasible`] if no candidate stratification satisfied
/// the constraints.
pub fn logbdr(
    pilot: &PilotIndex,
    params: &DesignParams,
    allocation: Allocation,
) -> StrataResult<Stratification> {
    params.check_feasible(pilot)?;
    let mut best: Option<Stratification> = None;
    let mut cuts: Vec<usize> = Vec::with_capacity(params.n_strata - 1);
    recurse(pilot, params, allocation, 1, 0, 0, &mut cuts, &mut best);
    best.ok_or_else(|| StrataError::Infeasible {
        message: "LogBdr found no feasible stratification".into(),
    })
}

/// Recursive enumeration: choose the pilot split `k` and boundary `c`
/// for stratum `depth` (1-based), then recurse.
#[allow(clippy::too_many_arguments)]
fn recurse(
    pilot: &PilotIndex,
    params: &DesignParams,
    allocation: Allocation,
    depth: usize,
    prev_pilot: usize,
    prev_cut: usize,
    cuts: &mut Vec<usize>,
    best: &mut Option<Stratification>,
) {
    let h = params.n_strata;
    let m = pilot.m();
    let mu = params.min_pilots_per_stratum;
    let nu = params.min_stratum_size;
    if depth == h {
        // Final stratum: (prev_cut, N]. Pilot count is m − prev_pilot
        // (guaranteed ≥ mu by the k ranges); check the size constraint
        // and evaluate.
        if pilot.n_objects() - prev_cut >= nu {
            if let Some(v) = evaluate_cuts(pilot, cuts, params, allocation) {
                if best.as_ref().is_none_or(|b| v < b.estimated_variance) {
                    *best = Some(Stratification {
                        cuts: cuts.clone(),
                        estimated_variance: v,
                    });
                }
            }
        }
        return;
    }
    // Stratum `depth` takes pilots (prev_pilot, k]; remaining strata need
    // mu pilots each.
    let k_lo = prev_pilot + mu;
    let k_hi = m - (h - depth) * mu;
    for k in k_lo..=k_hi {
        for c in boundary_candidates(pilot, k, params.epsilon) {
            if c < prev_cut + nu {
                continue;
            }
            // Leave room for the remaining strata.
            if c + (h - depth) * nu > pilot.n_objects() {
                break;
            }
            cuts.push(c);
            recurse(pilot, params, allocation, depth + 1, k, c, cuts, best);
            cuts.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force;

    fn pilot_random(n_objects: usize, m: usize, seed: u64) -> PilotIndex {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let entries: Vec<(usize, bool)> = (0..m)
            .map(|k| {
                let pos = k * n_objects / m;
                let frac = pos as f64 / n_objects as f64;
                (pos, next() < frac) // increasingly positive along order
            })
            .collect();
        PilotIndex::new(n_objects, entries).unwrap()
    }

    fn params(h: usize) -> DesignParams {
        DesignParams {
            n_strata: h,
            budget: 6,
            min_stratum_size: 2,
            min_pilots_per_stratum: 2,
            epsilon: 1.0,
        }
    }

    #[test]
    fn candidates_are_powers_of_two_offsets() {
        let pilot = PilotIndex::new(100, vec![(10, true), (40, false), (80, true)]).unwrap();
        // Between pilot 1 (pos 10 → ı = 11) and pilot 2 (pos 40):
        // candidates 11, 12, 13, 15, 19, 27, plus 40.
        let c = boundary_candidates(&pilot, 1, 1.0);
        assert_eq!(c, vec![11, 12, 13, 15, 19, 27, 40]);
        // ε = 3 coarsens the ladder (powers of 4).
        let c3 = boundary_candidates(&pilot, 1, 3.0);
        assert!(c3.len() < c.len());
        assert_eq!(*c3.first().unwrap(), 11);
        assert_eq!(*c3.last().unwrap(), 40);
    }

    #[test]
    fn within_theorem2_factor_of_brute_force() {
        for seed in [3u64, 7, 11] {
            let pilot = pilot_random(40, 10, seed);
            let p = params(2);
            let exact = brute_force(&pilot, &p, Allocation::Neyman).unwrap();
            let lb = logbdr(&pilot, &p, Allocation::Neyman).unwrap();
            // Theorem 2: factor max{4, 2 + 2·max N*_h/(N*_h − n)} — loose
            // check with absolute slack for near-zero optima.
            assert!(
                lb.estimated_variance <= 6.0 * exact.estimated_variance.abs() + 1e-6,
                "seed {seed}: logbdr {} vs exact {}",
                lb.estimated_variance,
                exact.estimated_variance
            );
        }
    }

    #[test]
    fn handles_h4() {
        let pilot = pilot_random(80, 16, 5);
        let p = params(4);
        let lb = logbdr(&pilot, &p, Allocation::Neyman).unwrap();
        assert_eq!(lb.cuts.len(), 3);
        let sizes = lb.stratum_sizes(80);
        assert!(sizes.iter().all(|&s| s >= 2));
        assert_eq!(sizes.iter().sum::<usize>(), 80);
    }

    #[test]
    fn epsilon_tradeoff_never_improves_beyond_fine_grid() {
        let pilot = pilot_random(60, 12, 13);
        let p_fine = DesignParams {
            epsilon: 0.25,
            ..params(3)
        };
        let p_coarse = DesignParams {
            epsilon: 3.0,
            ..params(3)
        };
        let fine = logbdr(&pilot, &p_fine, Allocation::Neyman).unwrap();
        let coarse = logbdr(&pilot, &p_coarse, Allocation::Neyman).unwrap();
        assert!(fine.estimated_variance <= coarse.estimated_variance + 1e-9);
    }

    #[test]
    fn infeasible_errors() {
        let pilot = pilot_random(10, 4, 1);
        assert!(logbdr(&pilot, &params(3), Allocation::Neyman).is_err());
    }
}
