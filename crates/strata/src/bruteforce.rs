//! Exact brute-force stratification: enumerate every cut combination.
//!
//! `O(N^{H−1})` — only viable for test-sized inputs, where it serves as
//! the oracle for the approximation-ratio property tests of
//! Theorems 1–4.

use crate::design::{Allocation, DesignParams, Stratification};
use crate::error::{StrataError, StrataResult};
use crate::objective::evaluate_cuts;
use crate::pilot::PilotIndex;

/// Exhaustively search all `H−1` cut combinations and return the best
/// feasible stratification.
///
/// # Errors
///
/// Returns an error for invalid parameters or if no feasible
/// stratification exists.
pub fn brute_force(
    pilot: &PilotIndex,
    params: &DesignParams,
    allocation: Allocation,
) -> StrataResult<Stratification> {
    params.check_feasible(pilot)?;
    let n = pilot.n_objects();
    let h = params.n_strata;
    let mut best: Option<Stratification> = None;
    let mut cuts = vec![0usize; h - 1];
    search(pilot, params, allocation, n, 0, 1, &mut cuts, &mut best);
    best.ok_or_else(|| StrataError::Infeasible {
        message: "no feasible stratification under the constraints".into(),
    })
}

#[allow(clippy::too_many_arguments)]
fn search(
    pilot: &PilotIndex,
    params: &DesignParams,
    allocation: Allocation,
    n: usize,
    depth: usize,
    min_cut: usize,
    cuts: &mut Vec<usize>,
    best: &mut Option<Stratification>,
) {
    if depth == cuts.len() {
        if let Some(v) = evaluate_cuts(pilot, cuts, params, allocation) {
            if best.as_ref().is_none_or(|b| v < b.estimated_variance) {
                *best = Some(Stratification {
                    cuts: cuts.clone(),
                    estimated_variance: v,
                });
            }
        }
        return;
    }
    // Remaining strata (including this cut's stratum) each need at least
    // min_stratum_size objects after this cut.
    let remaining_strata = cuts.len() - depth;
    let max_cut = n.saturating_sub((remaining_strata + 1) * params.min_stratum_size.max(1));
    let lo = min_cut.max(params.min_stratum_size.max(1) * (depth + 1));
    for c in lo..=max_cut {
        cuts[depth] = c;
        search(pilot, params, allocation, n, depth + 1, c + 1, cuts, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pilot() -> PilotIndex {
        // N = 24, m = 8 pilots at every 3rd position; labels negative
        // then positive.
        let entries: Vec<(usize, bool)> = (0..8).map(|k| (k * 3, k >= 4)).collect();
        PilotIndex::new(24, entries).unwrap()
    }

    fn p(h: usize) -> DesignParams {
        DesignParams {
            n_strata: h,
            budget: 6,
            min_stratum_size: 2,
            min_pilots_per_stratum: 2,
            epsilon: 1.0,
        }
    }

    #[test]
    fn finds_the_natural_split_for_h2() {
        let pilot = tiny_pilot();
        let best = brute_force(&pilot, &p(2), Allocation::Neyman).unwrap();
        // Labels flip at pilot 4 (position 12); the best cut separates
        // negatives [0,12) from positives [12,24) — any cut in (9, 12]
        // achieves zero estimated variance; the enumeration returns one.
        assert!(best.estimated_variance.abs() < 1e-9);
        assert!(best.cuts[0] > 9 && best.cuts[0] <= 12, "{:?}", best.cuts);
    }

    #[test]
    fn h3_feasible_and_no_worse_than_h2_here() {
        let pilot = tiny_pilot();
        let b2 = brute_force(&pilot, &p(2), Allocation::Neyman).unwrap();
        let b3 = brute_force(
            &pilot,
            &DesignParams {
                min_pilots_per_stratum: 2,
                ..p(3)
            },
            Allocation::Neyman,
        )
        .unwrap();
        assert_eq!(b3.cuts.len(), 2);
        // The optimum over 3 strata of zero-variance data stays zero.
        assert!(b3.estimated_variance <= b2.estimated_variance + 1e-9);
    }

    #[test]
    fn proportional_allocation_supported() {
        let pilot = tiny_pilot();
        let best = brute_force(&pilot, &p(2), Allocation::Proportional).unwrap();
        assert!(best.estimated_variance.abs() < 1e-9);
    }

    #[test]
    fn infeasible_inputs_error() {
        let pilot = tiny_pilot();
        // More pilots per stratum than exist.
        let bad = DesignParams {
            min_pilots_per_stratum: 5,
            ..p(2)
        };
        assert!(brute_force(&pilot, &bad, Allocation::Neyman).is_err());
        // Strata bigger than the population allows.
        let bad = DesignParams {
            min_stratum_size: 13,
            ..p(2)
        };
        assert!(brute_force(&pilot, &bad, Allocation::Neyman).is_err());
    }

    #[test]
    fn respects_minimum_constraints() {
        let pilot = tiny_pilot();
        let params = DesignParams {
            min_stratum_size: 6,
            ..p(3)
        };
        if let Ok(best) = brute_force(&pilot, &params, Allocation::Neyman) {
            let sizes = best.stratum_sizes(24);
            assert!(sizes.iter().all(|&s| s >= 6), "{sizes:?}");
        }
    }
}
