//! The pilot-sample index: positions within the score-ordered population
//! plus the prefix-sum index `Γ` of §4.2.1.

use crate::error::{StrataError, StrataResult};

/// A first-stage (pilot) sample over a score-ordered population.
///
/// Holds the sorted 0-based positions of the `m` pilot objects within the
/// ordered population of `N` objects, their labels, and the prefix-sum
/// index `Γ(k)` = number of positives among the first `k` pilots.
#[derive(Debug, Clone, PartialEq)]
pub struct PilotIndex {
    n_objects: usize,
    positions: Vec<usize>,
    labels: Vec<bool>,
    gamma: Vec<usize>,
}

impl PilotIndex {
    /// Build from `(position, label)` pairs (any order; positions must be
    /// distinct and `< n_objects`).
    ///
    /// # Errors
    ///
    /// Returns an error for empty input, out-of-range or duplicate
    /// positions.
    pub fn new(n_objects: usize, mut entries: Vec<(usize, bool)>) -> StrataResult<Self> {
        if entries.is_empty() {
            return Err(StrataError::InvalidPilot {
                message: "pilot sample is empty".into(),
            });
        }
        entries.sort_by_key(|&(p, _)| p);
        let mut positions = Vec::with_capacity(entries.len());
        let mut labels = Vec::with_capacity(entries.len());
        let mut gamma = Vec::with_capacity(entries.len() + 1);
        gamma.push(0usize);
        for (i, &(p, l)) in entries.iter().enumerate() {
            if p >= n_objects {
                return Err(StrataError::InvalidPilot {
                    message: format!("position {p} out of range (N = {n_objects})"),
                });
            }
            if i > 0 && entries[i - 1].0 == p {
                return Err(StrataError::InvalidPilot {
                    message: format!("duplicate pilot position {p}"),
                });
            }
            positions.push(p);
            labels.push(l);
            gamma.push(gamma[i] + usize::from(l));
        }
        Ok(Self {
            n_objects,
            positions,
            labels,
            gamma,
        })
    }

    /// Population size `N`.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Pilot count `m`.
    pub fn m(&self) -> usize {
        self.positions.len()
    }

    /// 0-based position of the `k`-th pilot (`k < m`).
    pub fn position(&self, k: usize) -> usize {
        self.positions[k]
    }

    /// Sorted pilot positions.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }

    /// Label of the `k`-th pilot.
    pub fn label(&self, k: usize) -> bool {
        self.labels[k]
    }

    /// `Γ(k)`: positives among the first `k` pilots (`k <= m`).
    pub fn gamma(&self, k: usize) -> usize {
        self.gamma[k]
    }

    /// Number of pilots with position `< cut` (i.e. inside the first
    /// `cut` objects). `O(log m)`.
    pub fn pilots_below(&self, cut: usize) -> usize {
        self.positions.partition_point(|&p| p < cut)
    }

    /// Positives among pilots `k_lo..k_hi` (pilot-index range).
    pub fn positives_in(&self, k_lo: usize, k_hi: usize) -> usize {
        self.gamma[k_hi] - self.gamma[k_lo]
    }

    /// Unbiased within-stratum variance estimate from pilots
    /// `k_lo..k_hi`: `s² = (pos/(cnt−1)) (1 − pos/cnt)` — the paper's
    /// estimator (equivalently the Bernoulli sample variance).
    ///
    /// Returns `None` when fewer than 2 pilots are in range.
    pub fn s2_for_pilot_range(&self, k_lo: usize, k_hi: usize) -> Option<f64> {
        let cnt = k_hi.checked_sub(k_lo)?;
        if cnt < 2 {
            return None;
        }
        let pos = self.positives_in(k_lo, k_hi) as f64;
        let c = cnt as f64;
        Some((pos / (c - 1.0)) * (1.0 - pos / c))
    }

    /// `(pilot_count, s²)` for the object-range stratum `[cut_lo, cut_hi)`.
    ///
    /// `s²` is `None` when fewer than 2 pilots fall in the range.
    pub fn s2_for_cut_range(&self, cut_lo: usize, cut_hi: usize) -> (usize, Option<f64>) {
        let k_lo = self.pilots_below(cut_lo);
        let k_hi = self.pilots_below(cut_hi);
        (k_hi - k_lo, self.s2_for_pilot_range(k_lo, k_hi))
    }
}

/// Composite ordering key: `(score, object id)`. Ids break ties so the
/// population order is total and pilot positions are unambiguous.
#[inline]
fn key_less(a: (f64, usize), b: (f64, usize)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

/// Pilot positions by full argsort of the population — the `O(N log N)`
/// reference implementation.
///
/// `scores[i]` is the classifier score of object `i`; `pilot_ids` are the
/// object ids of the pilots. Returns the 0-based positions of the pilots
/// within the `(score, id)`-ordered population, sorted ascending.
pub fn pilot_positions_argsort(scores: &[f64], pilot_ids: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    let mut rank = vec![0usize; scores.len()];
    for (pos, &id) in order.iter().enumerate() {
        rank[id] = pos;
    }
    let mut positions: Vec<usize> = pilot_ids.iter().map(|&id| rank[id]).collect();
    positions.sort_unstable();
    positions
}

/// Pilot positions by the paper's bucket pass — `O(N log m)`, no
/// population sort.
///
/// The `m` pilot keys split the key space into `m + 1` buckets; one pass
/// over the population counts objects per bucket; prefix sums yield each
/// pilot's position.
pub fn pilot_positions_bucket(scores: &[f64], pilot_ids: &[usize]) -> Vec<usize> {
    let m = pilot_ids.len();
    // Sorted pilot keys.
    let mut pkeys: Vec<(f64, usize)> = pilot_ids.iter().map(|&id| (scores[id], id)).collect();
    pkeys.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    // cnt[r] = number of objects whose key has exactly r pilot keys <= it.
    let mut cnt = vec![0usize; m + 1];
    for (id, &s) in scores.iter().enumerate() {
        let key = (s, id);
        // partition_point: first pilot key that is NOT <= key.
        let r = pkeys.partition_point(|&pk| !key_less(key, pk));
        cnt[r] += 1;
    }
    // Objects with r(o) <= k are exactly those ordered strictly before
    // pilot k (pilot_j for j < k has r = j+1 <= k; pilot_k itself has
    // r = k+1). So pilot k's 0-based position is Σ_{r=0..=k} cnt[r].
    let mut positions = Vec::with_capacity(m);
    let mut below = 0usize;
    for &c in cnt.iter().take(m) {
        below += c;
        positions.push(below);
    }
    positions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_and_positions() {
        let p =
            PilotIndex::new(100, vec![(10, true), (5, false), (50, true), (80, false)]).unwrap();
        assert_eq!(p.m(), 4);
        assert_eq!(p.positions(), &[5, 10, 50, 80]);
        assert_eq!(p.gamma(0), 0);
        assert_eq!(p.gamma(2), 1); // positions 5 (false), 10 (true)
        assert_eq!(p.gamma(4), 2);
        assert!(!p.label(0));
        assert!(p.label(1));
        assert_eq!(p.pilots_below(0), 0);
        assert_eq!(p.pilots_below(6), 1);
        assert_eq!(p.pilots_below(100), 4);
        assert_eq!(p.positives_in(1, 3), 2);
    }

    #[test]
    fn s2_matches_bernoulli_sample_variance() {
        // Pilots: labels T,F,T,T → s² over all 4 = sample variance of
        // {1,0,1,1} = 0.25 (unbiased: Σ(x-x̄)²/(n-1) = (3·(0.25)²+(0.75)²)/3 = 0.25).
        let p = PilotIndex::new(10, vec![(0, true), (1, false), (2, true), (3, true)]).unwrap();
        let s2 = p.s2_for_pilot_range(0, 4).unwrap();
        assert!((s2 - 0.25).abs() < 1e-12);
        // Homogeneous range → 0.
        let s2 = p.s2_for_pilot_range(2, 4).unwrap();
        assert!(s2.abs() < 1e-12);
        // Too few pilots → None.
        assert!(p.s2_for_pilot_range(1, 2).is_none());
    }

    #[test]
    fn s2_for_cut_range_uses_positions() {
        let p =
            PilotIndex::new(100, vec![(10, true), (20, false), (30, true), (90, false)]).unwrap();
        let (cnt, s2) = p.s2_for_cut_range(0, 35);
        assert_eq!(cnt, 3);
        let expect = (2.0f64 / 2.0) * (1.0 - 2.0 / 3.0);
        assert!((s2.unwrap() - expect).abs() < 1e-12);
        let (cnt, s2) = p.s2_for_cut_range(35, 100);
        assert_eq!(cnt, 1);
        assert!(s2.is_none());
    }

    #[test]
    fn validation() {
        assert!(PilotIndex::new(10, vec![]).is_err());
        assert!(PilotIndex::new(10, vec![(10, true)]).is_err()); // out of range
        assert!(PilotIndex::new(10, vec![(3, true), (3, false)]).is_err()); // dup
    }

    #[test]
    fn bucket_positions_match_argsort() {
        // Deterministic pseudo-random scores with ties.
        let mut state = 77u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) % 50) as f64 / 50.0 // only 50 distinct values → ties
        };
        let scores: Vec<f64> = (0..500).map(|_| next()).collect();
        let pilot_ids: Vec<usize> = (0..500).step_by(7).collect();
        let a = pilot_positions_argsort(&scores, &pilot_ids);
        let b = pilot_positions_bucket(&scores, &pilot_ids);
        assert_eq!(a, b);
        // Positions are distinct and within range.
        for w in a.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(*a.last().unwrap() < 500);
    }

    #[test]
    fn bucket_positions_distinct_scores() {
        let scores: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37 % 7.0).collect();
        let pilot_ids = vec![3usize, 50, 99, 0];
        let a = pilot_positions_argsort(&scores, &pilot_ids);
        let b = pilot_positions_bucket(&scores, &pilot_ids);
        assert_eq!(a, b);
    }
}
