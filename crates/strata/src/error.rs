//! Error types for stratification design.

use std::fmt;

/// Errors produced by the stratification-design algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum StrataError {
    /// Invalid design parameter.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Description of the violation.
        message: String,
    },
    /// The pilot sample cannot support the requested design (too few
    /// pilots, strata, or objects).
    Infeasible {
        /// Description of the infeasibility.
        message: String,
    },
    /// Pilot sample construction problems (duplicate/out-of-range
    /// positions).
    InvalidPilot {
        /// Description of the violation.
        message: String,
    },
    /// The algorithm does not support the requested configuration
    /// (e.g. DirSol with `H != 3`).
    Unsupported {
        /// Description.
        message: String,
    },
}

impl fmt::Display for StrataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrataError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            StrataError::Infeasible { message } => write!(f, "infeasible design: {message}"),
            StrataError::InvalidPilot { message } => write!(f, "invalid pilot sample: {message}"),
            StrataError::Unsupported { message } => write!(f, "unsupported: {message}"),
        }
    }
}

impl std::error::Error for StrataError {}

/// Convenience result alias.
pub type StrataResult<T> = Result<T, StrataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = StrataError::Infeasible {
            message: "only 3 pilots".into(),
        };
        assert!(e.to_string().contains("3 pilots"));
        let e = StrataError::Unsupported {
            message: "DirSol needs H = 3".into(),
        };
        assert!(e.to_string().contains("H = 3"));
    }
}
