//! Fixed strata layouts (§5.4.1 baselines).
//!
//! *Fixed height* splits the ordered population into `H` equal-count
//! ranges. *Fixed width* splits the **score domain** into `H`
//! equal-width intervals — on skewed score distributions this produces
//! unequal (possibly empty) strata, which is exactly why the paper's
//! optimized layouts beat it.

use crate::error::{StrataError, StrataResult};

/// Equal-count cuts: stratum `h` gets `⌊N/H⌋` or `⌈N/H⌉` objects.
///
/// # Errors
///
/// Returns an error if `H < 2` or `H > N`.
pub fn fixed_height_cuts(n_objects: usize, n_strata: usize) -> StrataResult<Vec<usize>> {
    if n_strata < 2 {
        return Err(StrataError::InvalidParameter {
            name: "n_strata",
            message: "need at least 2 strata".into(),
        });
    }
    if n_strata > n_objects {
        return Err(StrataError::Infeasible {
            message: format!("{n_strata} strata over {n_objects} objects"),
        });
    }
    Ok((1..n_strata).map(|h| h * n_objects / n_strata).collect())
}

/// Equal score-width cuts over a population sorted ascending by score.
///
/// Cut `h` is placed at the first object whose score reaches
/// `min + h·(max−min)/H`. Adjacent cuts may coincide when a score band
/// is empty; the result is deduplicated and strictly increasing, so the
/// caller may receive fewer than `H − 1` cuts (fewer, wider strata) —
/// faithful to how fixed-width gridding behaves on skewed data.
///
/// # Errors
///
/// Returns an error if `H < 2`, scores are empty, or scores are not
/// sorted ascending.
pub fn fixed_width_cuts(sorted_scores: &[f64], n_strata: usize) -> StrataResult<Vec<usize>> {
    if n_strata < 2 {
        return Err(StrataError::InvalidParameter {
            name: "n_strata",
            message: "need at least 2 strata".into(),
        });
    }
    if sorted_scores.is_empty() {
        return Err(StrataError::Infeasible {
            message: "no scores".into(),
        });
    }
    if sorted_scores.windows(2).any(|w| w[0] > w[1]) {
        return Err(StrataError::InvalidParameter {
            name: "sorted_scores",
            message: "scores must be sorted ascending".into(),
        });
    }
    let min = sorted_scores[0];
    let max = *sorted_scores.last().expect("non-empty");
    let n = sorted_scores.len();
    if max <= min {
        // All scores identical: no informative cuts.
        return Ok(Vec::new());
    }
    let width = (max - min) / n_strata as f64;
    let mut cuts = Vec::with_capacity(n_strata - 1);
    for h in 1..n_strata {
        let threshold = min + h as f64 * width;
        let cut = sorted_scores.partition_point(|&s| s < threshold);
        if cut > 0 && cut < n && cuts.last().is_none_or(|&c| cut > c) {
            cuts.push(cut);
        }
    }
    Ok(cuts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_height_is_balanced() {
        let cuts = fixed_height_cuts(100, 4).unwrap();
        assert_eq!(cuts, vec![25, 50, 75]);
        let cuts = fixed_height_cuts(10, 3).unwrap();
        assert_eq!(cuts, vec![3, 6]);
        // Sizes differ by at most 1.
        let sizes = [3, 3, 4];
        assert_eq!(sizes.iter().sum::<usize>(), 10);
    }

    #[test]
    fn fixed_height_validation() {
        assert!(fixed_height_cuts(10, 1).is_err());
        assert!(fixed_height_cuts(3, 4).is_err());
    }

    #[test]
    fn fixed_width_uniform_scores() {
        let scores: Vec<f64> = (0..100).map(|i| f64::from(i) / 100.0).collect();
        let cuts = fixed_width_cuts(&scores, 4).unwrap();
        assert_eq!(cuts, vec![25, 50, 75]);
    }

    #[test]
    fn fixed_width_skewed_scores_collapse_strata() {
        // 90 scores at ~0, 10 spread to 1.0: most width-cuts fall in the
        // empty band and dedupe away.
        let mut scores = vec![0.001; 90];
        scores.extend((0..10).map(|i| 0.9 + f64::from(i) * 0.01));
        let cuts = fixed_width_cuts(&scores, 4).unwrap();
        assert!(cuts.len() < 3, "skew should collapse strata: {cuts:?}");
        for w in cuts.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn fixed_width_constant_scores() {
        let scores = vec![0.5; 20];
        assert!(fixed_width_cuts(&scores, 4).unwrap().is_empty());
    }

    #[test]
    fn fixed_width_validation() {
        assert!(fixed_width_cuts(&[], 3).is_err());
        assert!(fixed_width_cuts(&[0.1, 0.2], 1).is_err());
        assert!(fixed_width_cuts(&[0.3, 0.2], 2).is_err()); // unsorted
    }
}
