//! The design objectives: equations (5) and (6) of the paper.
//!
//! Both objectives estimate the variance of the second-stage count
//! estimator `C(O, q)` (count units, i.e. `N²·Var(pˆ)`), using
//! within-stratum variances `s²_h` estimated from the pilot sample:
//!
//! * **Neyman** (Eq. 5): `V = (1/n)(Σ N_h s_h)² − Σ N_h s_h²`
//! * **Proportional** (Eq. 6): `V = ((N−n)/n) Σ N_h s_h²`

use crate::design::{Allocation, DesignParams};
use crate::pilot::PilotIndex;

/// Per-stratum statistics extracted from the pilot for a candidate
/// stratification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratumStat {
    /// Stratum size `N_h`.
    pub size: usize,
    /// Number of pilot samples inside.
    pub pilots: usize,
    /// Estimated within-stratum variance `s²_h`.
    pub s2: f64,
}

impl StratumStat {
    /// `s_h` (standard deviation).
    pub fn s(&self) -> f64 {
        self.s2.max(0.0).sqrt()
    }
}

/// Extract per-stratum stats for the candidate `cuts`, or `None` if any
/// constraint (`N_h ≥ N⊔`, `m_h ≥ m⊔`) is violated.
pub fn stratum_stats(
    pilot: &PilotIndex,
    cuts: &[usize],
    params: &DesignParams,
) -> Option<Vec<StratumStat>> {
    let n_objects = pilot.n_objects();
    let mut stats = Vec::with_capacity(cuts.len() + 1);
    let mut prev = 0usize;
    for &cut in cuts.iter().chain(std::iter::once(&n_objects)) {
        if cut <= prev || cut > n_objects {
            return None;
        }
        let size = cut - prev;
        if size < params.min_stratum_size {
            return None;
        }
        let (pilots, s2) = pilot.s2_for_cut_range(prev, cut);
        if pilots < params.min_pilots_per_stratum {
            return None;
        }
        let s2 = s2?;
        stats.push(StratumStat { size, pilots, s2 });
        prev = cut;
    }
    Some(stats)
}

/// Eq. (5): estimated count variance under Neyman allocation of `n`
/// second-stage samples.
pub fn neyman_variance(stats: &[StratumStat], budget: usize) -> f64 {
    let n = budget as f64;
    let weighted_sd: f64 = stats.iter().map(|st| st.size as f64 * st.s()).sum();
    let weighted_var: f64 = stats.iter().map(|st| st.size as f64 * st.s2).sum();
    weighted_sd * weighted_sd / n - weighted_var
}

/// Eq. (6): estimated count variance under proportional allocation.
pub fn proportional_variance(stats: &[StratumStat], budget: usize, n_objects: usize) -> f64 {
    let n = budget as f64;
    let nn = n_objects as f64;
    let weighted_var: f64 = stats.iter().map(|st| st.size as f64 * st.s2).sum();
    (nn - n) / n * weighted_var
}

/// Evaluate a candidate stratification under the chosen allocation.
/// Returns `None` when the cuts violate the constraints.
pub fn evaluate_cuts(
    pilot: &PilotIndex,
    cuts: &[usize],
    params: &DesignParams,
    allocation: Allocation,
) -> Option<f64> {
    let stats = stratum_stats(pilot, cuts, params)?;
    Some(match allocation {
        Allocation::Neyman => neyman_variance(&stats, params.budget),
        Allocation::Proportional => proportional_variance(&stats, params.budget, pilot.n_objects()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pilot_alternating(n_objects: usize, m: usize) -> PilotIndex {
        // Pilots evenly spread; labels: first half negative, second half
        // positive (a "good classifier ordering").
        let entries: Vec<(usize, bool)> = (0..m).map(|k| (k * n_objects / m, k >= m / 2)).collect();
        PilotIndex::new(n_objects, entries).unwrap()
    }

    fn params() -> DesignParams {
        DesignParams {
            n_strata: 2,
            budget: 10,
            min_stratum_size: 2,
            min_pilots_per_stratum: 2,
            epsilon: 1.0,
        }
    }

    #[test]
    fn stats_extracted_correctly() {
        let pilot = pilot_alternating(100, 10);
        let stats = stratum_stats(&pilot, &[50], &params()).unwrap();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].size + stats[1].size, 100);
        assert_eq!(stats[0].pilots + stats[1].pilots, 10);
        // Perfect split → homogeneous strata → zero variance.
        assert!(stats[0].s2.abs() < 1e-12);
        assert!(stats[1].s2.abs() < 1e-12);
    }

    #[test]
    fn constraint_violations_yield_none() {
        let pilot = pilot_alternating(100, 10);
        let p = params();
        // Degenerate cut orders.
        assert!(stratum_stats(&pilot, &[0], &p).is_none());
        assert!(stratum_stats(&pilot, &[100], &p).is_none());
        assert!(stratum_stats(&pilot, &[60, 40], &p).is_none());
        // Stratum too small.
        assert!(stratum_stats(&pilot, &[1], &p).is_none());
        // Too few pilots in the first stratum (cut before 2nd pilot).
        assert!(stratum_stats(&pilot, &[5], &p).is_none());
    }

    #[test]
    fn perfect_split_minimizes_neyman_objective() {
        let pilot = pilot_alternating(100, 10);
        let p = params();
        let perfect = evaluate_cuts(&pilot, &[50], &p, Allocation::Neyman).unwrap();
        let lopsided = evaluate_cuts(&pilot, &[30], &p, Allocation::Neyman).unwrap();
        assert!(perfect <= lopsided);
        assert!(perfect.abs() < 1e-9, "homogeneous strata → zero variance");
    }

    #[test]
    fn proportional_objective_matches_hand_computation() {
        let pilot = pilot_alternating(100, 10);
        let p = params();
        let stats = stratum_stats(&pilot, &[30], &p).unwrap();
        let want: f64 =
            stats.iter().map(|st| st.size as f64 * st.s2).sum::<f64>() * (100.0 - 10.0) / 10.0;
        let got = proportional_variance(&stats, 10, 100);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn neyman_never_exceeds_proportional_variance() {
        // For a given stratification, Neyman allocation is optimal, so
        // objective (5) ≤ objective (6) + the shared −Σ N_h s² term
        // rearrangement. We verify via the raw inequality
        // (Σ N_h s_h)²/n ≤ (N/n) Σ N_h s_h² (Cauchy–Schwarz).
        let pilot = pilot_alternating(300, 30);
        let p = DesignParams {
            n_strata: 3,
            ..params()
        };
        for cuts in [[100usize, 200], [50, 150], [90, 260]] {
            if let Some(stats) = stratum_stats(&pilot, &cuts, &p) {
                let ney = neyman_variance(&stats, p.budget);
                let prop = proportional_variance(&stats, p.budget, 300) - 0.0; // same units
                                                                               // prop = (N-n)/n Σ N s²; ney = (ΣNs)²/n − Σ N s².
                                                                               // Cauchy–Schwarz: (Σ N_h s_h)² ≤ N · Σ N_h s_h².
                assert!(ney <= prop + 1e-9, "ney {ney} vs prop {prop}");
            }
        }
    }
}
