//! The standard normal distribution: density, CDF, and quantile.
//!
//! The quantile (`Φ⁻¹`) uses Acklam's rational approximation followed by
//! one step of Halley refinement against our own CDF, which brings the
//! self-consistency error below 1e-9 — more than enough for the z-values
//! used in Wald/Wilson intervals.

#![allow(clippy::excessive_precision)] // reference-grade constants

use crate::error::{StatsError, StatsResult};
use crate::special::erfc;

/// Standard normal probability density function `φ(x)`.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Coefficients for Acklam's inverse-normal approximation.
const A: [f64; 6] = [
    -3.969_683_028_665_376e1,
    2.209_460_984_245_205e2,
    -2.759_285_104_469_687e2,
    1.383_577_518_672_69e2,
    -3.066_479_806_614_716e1,
    2.506_628_277_459_239,
];
const B: [f64; 5] = [
    -5.447_609_879_822_406e1,
    1.615_858_368_580_409e2,
    -1.556_989_798_598_866e2,
    6.680_131_188_771_972e1,
    -1.328_068_155_288_572e1,
];
const C: [f64; 6] = [
    -7.784_894_002_430_293e-3,
    -3.223_964_580_411_365e-1,
    -2.400_758_277_161_838,
    -2.549_732_539_343_734,
    4.374_664_141_464_968,
    2.938_163_982_698_783,
];
const D: [f64; 4] = [
    7.784_695_709_041_462e-3,
    3.224_671_290_700_398e-1,
    2.445_134_137_142_996,
    3.754_408_661_907_416,
];

/// Standard normal quantile function `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidProbability`] if `p` is outside `(0, 1)`
/// or not finite.
pub fn norm_quantile(p: f64) -> StatsResult<f64> {
    if !p.is_finite() || p <= 0.0 || p >= 1.0 {
        return Err(StatsError::InvalidProbability { value: p });
    }
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail (by symmetry).
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against our CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Two-sided critical value `z_{α/2}` for confidence level `1 − α`.
///
/// For example, `z_critical(0.95)? ≈ 1.959964`.
///
/// # Errors
///
/// Returns an error if `level` is outside `(0, 1)`.
pub fn z_critical(level: f64) -> StatsResult<f64> {
    if !level.is_finite() || level <= 0.0 || level >= 1.0 {
        return Err(StatsError::InvalidProbability { value: level });
    }
    norm_quantile(0.5 + level / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, tol: f64) {
        assert!(
            (got - want).abs() <= tol,
            "got {got}, want {want} (tol {tol})"
        );
    }

    #[test]
    fn cdf_reference_values() {
        assert_close(norm_cdf(0.0), 0.5, 1e-12);
        assert_close(norm_cdf(1.0), 0.841_344_746_068_542_9, 1e-12);
        assert_close(norm_cdf(-1.0), 0.158_655_253_931_457_05, 1e-12);
        assert_close(norm_cdf(1.959_963_985), 0.975, 1e-9);
        assert_close(norm_cdf(2.575_829_303), 0.995, 1e-9);
    }

    #[test]
    fn pdf_reference_values() {
        assert_close(norm_pdf(0.0), 0.398_942_280_4, 1e-10);
        assert_close(norm_pdf(1.0), 0.241_970_724_5, 1e-10);
        assert_close(norm_pdf(-1.0), norm_pdf(1.0), 1e-15);
    }

    #[test]
    fn quantile_reference_values() {
        assert_close(norm_quantile(0.5).unwrap(), 0.0, 1e-9);
        assert_close(norm_quantile(0.975).unwrap(), 1.959_963_984_540_054, 1e-9);
        assert_close(norm_quantile(0.995).unwrap(), 2.575_829_303_548_901, 1e-9);
        assert_close(norm_quantile(0.025).unwrap(), -1.959_963_984_540_054, 1e-9);
        assert_close(norm_quantile(1e-6).unwrap(), -4.753_424_3, 1e-4);
    }

    #[test]
    fn quantile_roundtrips_cdf() {
        for i in 1..200 {
            let p = f64::from(i) / 200.0;
            let x = norm_quantile(p).unwrap();
            assert_close(norm_cdf(x), p, 1e-8);
        }
    }

    #[test]
    fn quantile_rejects_invalid() {
        assert!(norm_quantile(0.0).is_err());
        assert!(norm_quantile(1.0).is_err());
        assert!(norm_quantile(-0.5).is_err());
        assert!(norm_quantile(f64::NAN).is_err());
    }

    #[test]
    fn z_critical_common_levels() {
        assert_close(z_critical(0.95).unwrap(), 1.959_963_985, 1e-6);
        assert_close(z_critical(0.90).unwrap(), 1.644_853_627, 1e-6);
        assert_close(z_critical(0.99).unwrap(), 2.575_829_303, 1e-6);
        assert!(z_critical(1.0).is_err());
        assert!(z_critical(0.0).is_err());
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -60..=60 {
            let x = f64::from(i) * 0.1;
            let c = norm_cdf(x);
            assert!(c >= prev);
            prev = c;
        }
    }
}
