//! Variance composition for sums of independent estimators.
//!
//! The sharded estimation layer runs one full estimator per shard and
//! reports their **sum**. Because the shards partition the population
//! and every shard runs on its own seed stream, the per-shard
//! estimators are independent, so the variance of the sum is exactly
//! the sum of the variances:
//!
//! ```text
//! X = Σ_k X_k        Var(X) = Σ_k Var(X_k)
//! ```
//!
//! In proportion units this is the familiar stratified form
//! `Var(p̂) = Σ_k w_k² Var(p̂_k)` with `w_k = N_k / N` — multiplying
//! through by `N²` turns each `w_k² Var(p̂_k)` term into the shard's
//! count-unit variance, so summing count-unit variances **is** the
//! weighted composition (no separate weighting step, no post-hoc
//! widening).
//!
//! Degrees of freedom compose by Welch–Satterthwaite:
//!
//! ```text
//! df ≈ (Σ_k v_k)² / Σ_k v_k²/df_k        v_k = Var(X_k)
//! ```
//!
//! Components with unknown (treated as infinite) degrees of freedom
//! contribute variance but no denominator mass; when *every* component
//! is df-free, the composed interval falls back to the normal
//! approximation.

use crate::error::{StatsError, StatsResult};
use crate::interval::{normal_interval, t_interval, ConfidenceInterval};

/// One independent component of a composed estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Point estimate of this component (count units).
    pub value: f64,
    /// Variance of this component (count units squared).
    pub variance: f64,
    /// Degrees of freedom behind `variance`, if the component's own
    /// interval was a t-interval; `None` means "normal/unknown"
    /// (treated as infinite in the Welch–Satterthwaite composition).
    pub df: Option<f64>,
}

/// A composed estimate: the sum of independent components with exact
/// variance composition and Welch–Satterthwaite degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Composed {
    /// Sum of the component estimates.
    pub value: f64,
    /// Composed standard error `√(Σ Var_k)`.
    pub std_error: f64,
    /// Welch–Satterthwaite degrees of freedom (`None` when every
    /// component was df-free, or the composed variance is zero).
    pub df: Option<f64>,
    /// t-interval on the composed df (normal interval when `df` is
    /// `None`): exactly `value ± crit · std_error`, no widening.
    pub interval: ConfidenceInterval,
}

/// Welch–Satterthwaite effective degrees of freedom for a sum of
/// independent variance estimates.
///
/// `parts` are `(variance, df)` pairs; `df = None` means the variance
/// is treated as exactly known (infinite df, zero denominator mass).
/// Returns `None` when the denominator vanishes — all components
/// df-free or all variances zero — in which case the normal
/// approximation applies.
pub fn welch_satterthwaite(parts: &[(f64, Option<f64>)]) -> Option<f64> {
    let total: f64 = parts.iter().map(|&(v, _)| v).sum();
    let denom: f64 = parts
        .iter()
        .filter_map(|&(v, df)| df.map(|d| if d > 0.0 { v * v / d } else { 0.0 }))
        .sum();
    if denom > 0.0 && total > 0.0 {
        Some((total * total / denom).max(1.0))
    } else {
        None
    }
}

/// Compose independent component estimates into one estimate of their
/// sum.
///
/// The point estimate is `Σ value_k`, the variance is exactly
/// `Σ variance_k` (see the module docs for why this equals the
/// weighted stratified composition), and the interval is a t-interval
/// on the Welch–Satterthwaite df (normal when no component carries a
/// finite df). Components are summed in slice order, so the result is
/// bit-identical for a fixed component order regardless of how the
/// components were produced.
///
/// # Errors
///
/// Returns an error on an empty slice, non-finite values, negative
/// variances, non-positive df, or an invalid level.
pub fn compose_independent(parts: &[Component], level: f64) -> StatsResult<Composed> {
    if parts.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut value = 0.0;
    let mut variance = 0.0;
    for part in parts {
        if !part.value.is_finite() {
            return Err(StatsError::NonFinite {
                name: "value",
                value: part.value,
            });
        }
        if !part.variance.is_finite() || part.variance < 0.0 {
            return Err(StatsError::NonFinite {
                name: "variance",
                value: part.variance,
            });
        }
        if let Some(df) = part.df {
            if df.is_nan() || df <= 0.0 {
                return Err(StatsError::InvalidDegreesOfFreedom { value: df });
            }
        }
        value += part.value;
        variance += part.variance;
    }
    let std_error = variance.sqrt();
    let pairs: Vec<(f64, Option<f64>)> = parts.iter().map(|p| (p.variance, p.df)).collect();
    let df = welch_satterthwaite(&pairs);
    let interval = match df {
        Some(d) => t_interval(value, std_error, d, level)?,
        None => normal_interval(value, std_error, level)?,
    };
    Ok(Composed {
        value,
        std_error,
        df,
        interval,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::z_critical;
    use crate::student::t_critical;

    fn assert_close(got: f64, want: f64, tol: f64) {
        assert!(
            (got - want).abs() <= tol,
            "got {got}, want {want} (tol {tol})"
        );
    }

    #[test]
    fn single_component_round_trips() {
        let c = Component {
            value: 100.0,
            variance: 25.0,
            df: Some(12.0),
        };
        let out = compose_independent(&[c], 0.95).unwrap();
        assert_close(out.value, 100.0, 1e-12);
        assert_close(out.std_error, 5.0, 1e-12);
        // WS df of a single component is its own df.
        assert_close(out.df.unwrap(), 12.0, 1e-9);
        let t = t_critical(0.95, 12.0).unwrap();
        assert_close(out.interval.width(), 2.0 * t * 5.0, 1e-9);
    }

    #[test]
    fn variance_adds_exactly() {
        let parts = [
            Component {
                value: 10.0,
                variance: 4.0,
                df: Some(9.0),
            },
            Component {
                value: 20.0,
                variance: 9.0,
                df: Some(19.0),
            },
            Component {
                value: 5.0,
                variance: 0.0,
                df: Some(5.0),
            },
        ];
        let out = compose_independent(&parts, 0.95).unwrap();
        assert_close(out.value, 35.0, 1e-12);
        assert_close(out.std_error * out.std_error, 13.0, 1e-12);
        // Half-width is exactly crit · se — the "no silent widening"
        // contract.
        let crit = t_critical(0.95, out.df.unwrap()).unwrap();
        assert_close(out.interval.width(), 2.0 * crit * out.std_error, 1e-9);
    }

    #[test]
    fn welch_satterthwaite_textbook_case() {
        // Equal variances and df: WS df = 2·df... exactly
        // (v+v)²/(v²/d + v²/d) = 4v²·d/(2v²) = 2d.
        let df = welch_satterthwaite(&[(3.0, Some(7.0)), (3.0, Some(7.0))]).unwrap();
        assert_close(df, 14.0, 1e-9);
        // A dominant low-df component drags the composed df down
        // toward its own.
        let df = welch_satterthwaite(&[(100.0, Some(3.0)), (1.0, Some(1000.0))]).unwrap();
        assert!(df < 4.0, "dominant 3-df component, got {df}");
    }

    #[test]
    fn df_free_components_fall_back_to_normal() {
        let parts = [
            Component {
                value: 4.0,
                variance: 1.0,
                df: None,
            },
            Component {
                value: 6.0,
                variance: 3.0,
                df: None,
            },
        ];
        let out = compose_independent(&parts, 0.95).unwrap();
        assert!(out.df.is_none());
        let z = z_critical(0.95).unwrap();
        assert_close(out.interval.width(), 2.0 * z * 2.0, 1e-9);
    }

    #[test]
    fn mixed_df_uses_only_finite_components_in_denominator() {
        // One df-free component: its variance still widens the
        // interval, but contributes no denominator mass, raising the
        // composed df above the finite component's own.
        let parts = [
            Component {
                value: 1.0,
                variance: 2.0,
                df: Some(4.0),
            },
            Component {
                value: 1.0,
                variance: 2.0,
                df: None,
            },
        ];
        let out = compose_independent(&parts, 0.95).unwrap();
        let df = out.df.unwrap();
        assert_close(df, 16.0, 1e-9); // (4)²/(4/4) = 16
    }

    #[test]
    fn zero_total_variance_gives_degenerate_interval() {
        let parts = [
            Component {
                value: 7.0,
                variance: 0.0,
                df: None,
            },
            Component {
                value: 3.0,
                variance: 0.0,
                df: Some(2.0),
            },
        ];
        let out = compose_independent(&parts, 0.95).unwrap();
        assert!(out.df.is_none());
        assert_close(out.interval.width(), 0.0, 1e-12);
        assert_close(out.interval.midpoint(), 10.0, 1e-12);
    }

    #[test]
    fn rejects_invalid_components() {
        let good = Component {
            value: 1.0,
            variance: 1.0,
            df: Some(2.0),
        };
        assert!(compose_independent(&[], 0.95).is_err());
        for bad in [
            Component {
                value: f64::NAN,
                ..good
            },
            Component {
                variance: -1.0,
                ..good
            },
            Component {
                variance: f64::INFINITY,
                ..good
            },
            Component {
                df: Some(0.0),
                ..good
            },
        ] {
            assert!(compose_independent(&[bad], 0.95).is_err(), "{bad:?}");
        }
        assert!(compose_independent(&[good], 2.0).is_err());
    }

    #[test]
    fn composition_is_order_stable_for_fixed_order() {
        let parts: Vec<Component> = (0..16)
            .map(|i| Component {
                value: (i as f64).sin() * 100.0,
                variance: (i as f64).cos().abs() * 10.0,
                df: Some(5.0 + i as f64),
            })
            .collect();
        let a = compose_independent(&parts, 0.95).unwrap();
        let b = compose_independent(&parts, 0.95).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.interval.lo.to_bits(), b.interval.lo.to_bits());
    }
}
