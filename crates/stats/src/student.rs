//! Student's t distribution: density, CDF, and quantile.
//!
//! The CDF is expressed through the regularized incomplete beta function;
//! the quantile inverts the CDF with a normal-quantile initial guess and
//! safeguarded Newton iterations. Used for the `t_{α/2}` critical values
//! in stratified-sampling confidence intervals (paper §3.1).

use crate::error::{StatsError, StatsResult};
use crate::normal::norm_quantile;
use crate::special::{betai, ln_gamma};

/// Student-t probability density with `df` degrees of freedom.
///
/// # Errors
///
/// Returns an error if `df <= 0` or not finite.
pub fn t_pdf(x: f64, df: f64) -> StatsResult<f64> {
    if !df.is_finite() || df <= 0.0 {
        return Err(StatsError::InvalidDegreesOfFreedom { value: df });
    }
    let ln_coef =
        ln_gamma((df + 1.0) / 2.0) - ln_gamma(df / 2.0) - 0.5 * (df * std::f64::consts::PI).ln();
    Ok((ln_coef - (df + 1.0) / 2.0 * (1.0 + x * x / df).ln()).exp())
}

/// Student-t cumulative distribution with `df` degrees of freedom.
///
/// # Errors
///
/// Returns an error if `df <= 0` or the underlying beta evaluation fails.
pub fn t_cdf(x: f64, df: f64) -> StatsResult<f64> {
    if !df.is_finite() || df <= 0.0 {
        return Err(StatsError::InvalidDegreesOfFreedom { value: df });
    }
    let ib = betai(df / 2.0, 0.5, df / (df + x * x))?;
    Ok(if x >= 0.0 { 1.0 - 0.5 * ib } else { 0.5 * ib })
}

/// Student-t quantile for probability `p ∈ (0, 1)` with `df` degrees of
/// freedom.
///
/// Inverts [`t_cdf`] with a normal initial guess plus a Cornish–Fisher
/// correction, followed by safeguarded Newton iterations (bisection
/// fallback). Self-consistency with [`t_cdf`] is better than 1e-10.
///
/// # Errors
///
/// Returns an error for invalid `p` or `df`, or (pathologically) if the
/// iteration fails to converge.
pub fn t_quantile(p: f64, df: f64) -> StatsResult<f64> {
    if !p.is_finite() || p <= 0.0 || p >= 1.0 {
        return Err(StatsError::InvalidProbability { value: p });
    }
    if !df.is_finite() || df <= 0.0 {
        return Err(StatsError::InvalidDegreesOfFreedom { value: df });
    }
    // Symmetry lets us work on the upper half only.
    if p < 0.5 {
        return Ok(-t_quantile(1.0 - p, df)?);
    }
    if (p - 0.5).abs() < 1e-15 {
        return Ok(0.0);
    }

    // Initial guess: normal quantile with the leading Cornish-Fisher
    // expansion term for the t distribution.
    let z = norm_quantile(p)?;
    let mut x = z + (z * z * z + z) / (4.0 * df);

    // Bracket the root: the CDF is increasing, target is in (0.5, 1.0).
    let (mut lo, mut hi) = (0.0f64, x.max(1.0));
    while t_cdf(hi, df)? < p {
        hi *= 2.0;
        if hi > 1e12 {
            return Err(StatsError::NoConvergence {
                routine: "t_quantile bracket",
            });
        }
    }
    if x < lo || x > hi {
        x = 0.5 * (lo + hi);
    }

    for _ in 0..100 {
        let f = t_cdf(x, df)? - p;
        if f.abs() < 1e-13 {
            return Ok(x);
        }
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let d = t_pdf(x, df)?;
        let newton = x - f / d;
        x = if newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if (hi - lo) < 1e-14 * (1.0 + x.abs()) {
            return Ok(x);
        }
    }
    Ok(x)
}

/// Two-sided critical value `t_{α/2, df}` for confidence level `1 − α`.
///
/// # Errors
///
/// Returns an error if `level` is outside `(0, 1)` or `df <= 0`.
pub fn t_critical(level: f64, df: f64) -> StatsResult<f64> {
    if !level.is_finite() || level <= 0.0 || level >= 1.0 {
        return Err(StatsError::InvalidProbability { value: level });
    }
    t_quantile(0.5 + level / 2.0, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, tol: f64) {
        assert!(
            (got - want).abs() <= tol,
            "got {got}, want {want} (tol {tol})"
        );
    }

    #[test]
    fn cdf_reference_values() {
        // t with 1 df is Cauchy: CDF(1) = 3/4.
        assert_close(t_cdf(1.0, 1.0).unwrap(), 0.75, 1e-10);
        assert_close(t_cdf(0.0, 5.0).unwrap(), 0.5, 1e-12);
        // Classic table values.
        assert_close(t_cdf(2.228, 10.0).unwrap(), 0.975, 5e-4);
        assert_close(t_cdf(1.812, 10.0).unwrap(), 0.95, 5e-4);
    }

    #[test]
    fn quantile_reference_values() {
        // Standard t-table critical values.
        assert_close(t_quantile(0.975, 10.0).unwrap(), 2.228_138_852, 1e-6);
        assert_close(t_quantile(0.975, 1.0).unwrap(), 12.706_204_74, 1e-4);
        assert_close(t_quantile(0.95, 30.0).unwrap(), 1.697_260_887, 1e-6);
        assert_close(t_quantile(0.025, 10.0).unwrap(), -2.228_138_852, 1e-6);
    }

    #[test]
    fn quantile_roundtrips_cdf() {
        for &df in &[1.0, 2.0, 5.0, 10.0, 30.0, 200.0] {
            for i in 1..40 {
                let p = f64::from(i) / 40.0;
                let x = t_quantile(p, df).unwrap();
                assert_close(t_cdf(x, df).unwrap(), p, 1e-9);
            }
        }
    }

    #[test]
    fn converges_to_normal_for_large_df() {
        let z = crate::normal::norm_quantile(0.975).unwrap();
        let t = t_quantile(0.975, 1e6).unwrap();
        assert_close(t, z, 1e-4);
    }

    #[test]
    fn pdf_integrates_to_cdf_difference() {
        // Trapezoid integration of the pdf should match the CDF.
        let df = 7.0;
        let (a, b) = (-2.0, 1.5);
        let steps = 20_000;
        let h = (b - a) / steps as f64;
        let mut integral = 0.0;
        for i in 0..steps {
            let x0 = a + i as f64 * h;
            let x1 = x0 + h;
            integral += 0.5 * h * (t_pdf(x0, df).unwrap() + t_pdf(x1, df).unwrap());
        }
        let want = t_cdf(b, df).unwrap() - t_cdf(a, df).unwrap();
        assert_close(integral, want, 1e-7);
    }

    #[test]
    fn rejects_invalid_arguments() {
        assert!(t_cdf(0.0, 0.0).is_err());
        assert!(t_cdf(0.0, -1.0).is_err());
        assert!(t_quantile(0.0, 5.0).is_err());
        assert!(t_quantile(0.5, f64::NAN).is_err());
        assert!(t_pdf(1.0, 0.0).is_err());
        assert!(t_critical(1.5, 5.0).is_err());
    }

    #[test]
    fn critical_values_match_tables() {
        assert_close(t_critical(0.95, 10.0).unwrap(), 2.228_138_852, 1e-6);
        assert_close(t_critical(0.99, 5.0).unwrap(), 4.032_142_983, 1e-5);
    }
}
