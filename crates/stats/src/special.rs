//! Special functions: log-gamma, error function, regularized incomplete beta.
//!
//! These are the numeric kernels behind the normal and Student-t
//! distributions. Implementations follow the classical Lanczos,
//! Lentz-continued-fraction, and Cody (SPECFUN) formulations; accuracy is
//! ~1e-10 relative for `ln_gamma` and the incomplete beta, and close to
//! machine precision for `erf`/`erfc`.

#![allow(clippy::excessive_precision)] // reference-grade constants

use crate::error::{StatsError, StatsResult};

/// Lanczos coefficients (g = 7, n = 9).
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_59,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`
/// (extended to non-integer negative arguments via reflection).
///
/// Uses the Lanczos approximation with g = 7, accurate to ~1e-13 relative
/// over the range used by this workspace (degrees of freedom up to ~1e6).
pub fn ln_gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS[0];
        for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Cody rational-approximation coefficients for `erf` on `|x| <= 0.46875`.
const ERF_A: [f64; 5] = [
    3.161_123_743_870_565_6,
    1.138_641_541_510_501_56e2,
    3.774_852_376_853_020_2e2,
    3.209_377_589_138_469_47e3,
    1.857_777_061_846_031_53e-1,
];
const ERF_B: [f64; 4] = [
    2.360_129_095_234_412_09e1,
    2.440_246_379_344_441_73e2,
    1.282_616_526_077_372_28e3,
    2.844_236_833_439_170_62e3,
];
/// Cody coefficients for `erfc` on `0.46875 < |x| <= 4.0`.
const ERF_C: [f64; 9] = [
    5.641_884_969_886_700_89e-1,
    8.883_149_794_388_375_94,
    6.611_919_063_714_162_95e1,
    2.986_351_381_974_001_31e2,
    8.819_522_212_417_690_9e2,
    1.712_047_612_634_070_58e3,
    2.051_078_377_826_071_47e3,
    1.230_339_354_797_997_25e3,
    2.153_115_354_744_038_46e-8,
];
const ERF_D: [f64; 8] = [
    1.574_492_611_070_983_47e1,
    1.176_939_508_913_124_99e2,
    5.371_811_018_620_098_58e2,
    1.621_389_574_566_690_19e3,
    3.290_799_235_733_459_63e3,
    4.362_619_090_143_247_16e3,
    3.439_367_674_143_721_64e3,
    1.230_339_354_803_749_42e3,
];
/// Cody coefficients for `erfc` on `|x| > 4.0`.
const ERF_P: [f64; 6] = [
    3.053_266_349_612_323_44e-1,
    3.603_448_999_498_044_39e-1,
    1.257_817_261_112_292_46e-1,
    1.608_378_514_874_227_66e-2,
    6.587_491_615_298_378_03e-4,
    1.631_538_713_730_209_78e-2,
];
const ERF_Q: [f64; 5] = [
    2.568_520_192_289_822_42,
    1.872_952_849_923_460_47,
    5.279_051_029_514_284_12e-1,
    6.051_834_131_244_131_91e-2,
    2.335_204_976_268_691_85e-3,
];
/// `1/√π`.
const SQRPI: f64 = 5.641_895_835_477_562_87e-1;

/// `erf` kernel for the central region `|x| <= 0.46875`.
fn erf_small(x: f64) -> f64 {
    let z = x * x;
    let mut xnum = ERF_A[4] * z;
    let mut xden = z;
    for i in 0..3 {
        xnum = (xnum + ERF_A[i]) * z;
        xden = (xden + ERF_B[i]) * z;
    }
    x * (xnum + ERF_A[3]) / (xden + ERF_B[3])
}

/// `erfc` kernel for positive `y` in `(0.46875, 4.0]`.
fn erfc_mid(y: f64) -> f64 {
    let mut xnum = ERF_C[8] * y;
    let mut xden = y;
    for i in 0..7 {
        xnum = (xnum + ERF_C[i]) * y;
        xden = (xden + ERF_D[i]) * y;
    }
    let result = (xnum + ERF_C[7]) / (xden + ERF_D[7]);
    (-y * y).exp() * result
}

/// `erfc` kernel for positive `y > 4.0`.
fn erfc_large(y: f64) -> f64 {
    let z = 1.0 / (y * y);
    let mut xnum = ERF_P[5] * z;
    let mut xden = z;
    for i in 0..4 {
        xnum = (xnum + ERF_P[i]) * z;
        xden = (xden + ERF_Q[i]) * z;
    }
    let mut result = z * (xnum + ERF_P[4]) / (xden + ERF_Q[4]);
    result = (SQRPI - result) / y;
    (-y * y).exp() * result
}

/// The error function `erf(x)`.
///
/// W. J. Cody's rational approximations (as in SPECFUN/CALERF), accurate
/// to roughly machine precision.
pub fn erf(x: f64) -> f64 {
    let y = x.abs();
    if y <= 0.46875 {
        erf_small(x)
    } else {
        let e = 1.0 - if y <= 4.0 { erfc_mid(y) } else { erfc_large(y) };
        if x >= 0.0 {
            e
        } else {
            -e
        }
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Evaluated directly in the tails (no catastrophic cancellation for
/// large positive `x`).
pub fn erfc(x: f64) -> f64 {
    let y = x.abs();
    let tail = if y <= 0.46875 {
        return 1.0 - erf_small(x);
    } else if y <= 4.0 {
        erfc_mid(y)
    } else {
        erfc_large(y)
    };
    if x >= 0.0 {
        tail
    } else {
        2.0 - tail
    }
}

/// Maximum iterations for the incomplete-beta continued fraction.
const BETACF_MAX_ITER: usize = 300;

/// Continued-fraction evaluation for the incomplete beta function
/// (modified Lentz's method).
fn betacf(a: f64, b: f64, x: f64) -> StatsResult<f64> {
    const FPMIN: f64 = 1e-300;
    const EPS: f64 = 3e-14;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=BETACF_MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence { routine: "betacf" })
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`.
///
/// This is the CDF of the Beta(a, b) distribution and the kernel of the
/// Student-t CDF.
pub fn betai(a: f64, b: f64, x: f64) -> StatsResult<f64> {
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidProbability { value: x });
    }
    if a <= 0.0 || b <= 0.0 {
        return Err(StatsError::NonFinite {
            name: "beta shape",
            value: if a <= 0.0 { a } else { b },
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let bt = (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(bt * betacf(a, b, x)? / a)
    } else {
        Ok(1.0 - bt * betacf(b, a, 1.0 - x)? / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, tol: f64) {
        assert!(
            (got - want).abs() <= tol,
            "got {got}, want {want} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            assert_close(ln_gamma(f64::from(n)), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Γ(3/2) = √π / 2.
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-10,
        );
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        assert_close(erf(0.0), 0.0, 1e-12);
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-12);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-3.0, -1.0, -0.2, 0.0, 0.7, 2.5] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn erf_is_odd_and_monotone() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.05).collect();
        for w in xs.windows(2) {
            assert!(erf(w[1]) >= erf(w[0]));
        }
        for &x in &xs {
            assert_close(erf(-x), -erf(x), 1e-12);
        }
    }

    #[test]
    fn betai_symmetry_and_bounds() {
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.0, 0.9)] {
            let lhs = betai(a, b, x).unwrap();
            let rhs = 1.0 - betai(b, a, 1.0 - x).unwrap();
            assert_close(lhs, rhs, 1e-10);
            assert!((0.0..=1.0).contains(&lhs));
        }
    }

    #[test]
    fn betai_uniform_case() {
        // Beta(1,1) is uniform: I_x(1,1) = x.
        for &x in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            assert_close(betai(1.0, 1.0, x).unwrap(), x, 1e-12);
        }
    }

    #[test]
    fn betai_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry.
        assert_close(betai(2.0, 2.0, 0.5).unwrap(), 0.5, 1e-12);
        // Beta(2,1) CDF is x^2.
        assert_close(betai(2.0, 1.0, 0.3).unwrap(), 0.09, 1e-10);
    }

    #[test]
    fn betai_rejects_bad_args() {
        assert!(betai(2.0, 2.0, -0.1).is_err());
        assert!(betai(2.0, 2.0, 1.1).is_err());
        assert!(betai(-1.0, 2.0, 0.5).is_err());
        assert!(betai(2.0, 0.0, 0.5).is_err());
    }
}
