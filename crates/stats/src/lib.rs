//! Statistical substrate for the `learning-to-sample` workspace.
//!
//! Everything here is implemented from scratch (no external numerics
//! dependencies): special functions (`lgamma`, `erf`, regularized
//! incomplete beta), the standard normal and Student-t distributions with
//! accurate quantile functions, proportion confidence intervals (Wald and
//! Wilson, with finite-population correction), streaming moment
//! accumulators, and order-statistic summaries (quartiles, IQR) matching
//! the evaluation metrics used in the paper.
//!
//! The paper relies on these pieces in §3.1 (Wald/Wilson intervals for
//! SRS, t-intervals for stratified estimates) and §5 (interquartile range
//! as the headline spread metric).

#![warn(missing_docs)]

pub mod compose;
pub mod error;
pub mod histogram;
pub mod interval;
pub mod normal;
pub mod special;
pub mod student;
pub mod summary;

pub use compose::{compose_independent, welch_satterthwaite, Component, Composed};
pub use error::{StatsError, StatsResult};
pub use histogram::Histogram;
pub use interval::{
    normal_interval, t_interval, wald_proportion, wilson_proportion, ConfidenceInterval,
    IntervalKind,
};
pub use normal::{norm_cdf, norm_pdf, norm_quantile, z_critical};
pub use student::{t_cdf, t_critical, t_pdf, t_quantile};
pub use summary::{
    iqr, mean, median, quantile_type7, quartiles, sample_variance, RunningStats, Summary,
};
