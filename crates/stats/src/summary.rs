//! Order-statistic and moment summaries.
//!
//! The paper's evaluation reports estimator quality through the
//! interquartile range of the estimate distribution over repeated trials
//! (§5, "IQR ... is less sensitive to outliers"); this module provides
//! those summaries plus a streaming Welford accumulator used by the
//! estimators themselves.

use crate::error::{StatsError, StatsResult};
use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long streams; used wherever an estimator needs
/// running moments (e.g. the Des Raj ordered estimates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`None` if fewer than 2 observations).
    pub fn sample_variance(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some(self.m2 / (self.n - 1) as f64)
        }
    }

    /// Population variance (`None` if empty).
    pub fn population_variance(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.m2 / self.n as f64)
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Arithmetic mean of a slice.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] on an empty slice.
pub fn mean(xs: &[f64]) -> StatsResult<f64> {
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance of a slice.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if fewer than two elements.
pub fn sample_variance(xs: &[f64]) -> StatsResult<f64> {
    if xs.len() < 2 {
        return Err(StatsError::EmptyInput);
    }
    let mut acc = RunningStats::new();
    for &x in xs {
        acc.push(x);
    }
    Ok(acc.sample_variance().expect("n >= 2"))
}

/// Linear-interpolation quantile (Hyndman–Fan type 7, the NumPy/Pandas
/// default) of **sorted** data.
///
/// # Errors
///
/// Returns an error for empty input or `q ∉ [0, 1]`.
pub fn quantile_type7(sorted: &[f64], q: f64) -> StatsResult<f64> {
    if sorted.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidProbability { value: q });
    }
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let h = (n - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Median of unsorted data.
///
/// # Errors
///
/// Returns an error on empty input.
pub fn median(xs: &[f64]) -> StatsResult<f64> {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    quantile_type7(&v, 0.5)
}

/// First, second (median), and third quartiles of unsorted data.
///
/// # Errors
///
/// Returns an error on empty input.
pub fn quartiles(xs: &[f64]) -> StatsResult<(f64, f64, f64)> {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    Ok((
        quantile_type7(&v, 0.25)?,
        quantile_type7(&v, 0.5)?,
        quantile_type7(&v, 0.75)?,
    ))
}

/// Interquartile range (Q3 − Q1), the paper's spread metric.
///
/// # Errors
///
/// Returns an error on empty input.
pub fn iqr(xs: &[f64]) -> StatsResult<f64> {
    let (q1, _, q3) = quartiles(xs)?;
    Ok(q3 - q1)
}

/// A five-number-plus summary of a sample: the per-cell statistic the
/// reproduction harness prints for every figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (0 when n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample.
    ///
    /// # Errors
    ///
    /// Returns an error on empty input.
    pub fn from_slice(xs: &[f64]) -> StatsResult<Self> {
        if xs.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let mut v = xs.to_vec();
        v.sort_by(f64::total_cmp);
        let mut acc = RunningStats::new();
        for &x in &v {
            acc.push(x);
        }
        Ok(Self {
            n: v.len(),
            mean: acc.mean(),
            std: acc.sample_std().unwrap_or(0.0),
            min: v[0],
            q1: quantile_type7(&v, 0.25)?,
            median: quantile_type7(&v, 0.5)?,
            q3: quantile_type7(&v, 0.75)?,
            max: *v.last().expect("non-empty"),
        })
    }

    /// Interquartile range (Q3 − Q1).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Count of Tukey outliers (beyond 1.5·IQR past the quartiles) in `xs`.
    pub fn tukey_outliers(&self, xs: &[f64]) -> usize {
        let lo = self.q1 - 1.5 * self.iqr();
        let hi = self.q3 + 1.5 * self.iqr();
        xs.iter().filter(|&&x| x < lo || x > hi).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, tol: f64) {
        assert!(
            (got - want).abs() <= tol,
            "got {got}, want {want} (tol {tol})"
        );
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = RunningStats::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_close(acc.mean(), 5.0, 1e-12);
        assert_close(acc.population_variance().unwrap(), 4.0, 1e-12);
        assert_close(acc.sample_variance().unwrap(), 32.0 / 7.0, 1e-12);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_close(left.mean(), whole.mean(), 1e-10);
        assert_close(
            left.sample_variance().unwrap(),
            whole.sample_variance().unwrap(),
            1e-10,
        );
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantile_matches_numpy_type7() {
        // numpy.percentile([1,2,3,4], [25,50,75]) = [1.75, 2.5, 3.25]
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_close(quantile_type7(&v, 0.25).unwrap(), 1.75, 1e-12);
        assert_close(quantile_type7(&v, 0.5).unwrap(), 2.5, 1e-12);
        assert_close(quantile_type7(&v, 0.75).unwrap(), 3.25, 1e-12);
        assert_close(quantile_type7(&v, 0.0).unwrap(), 1.0, 1e-12);
        assert_close(quantile_type7(&v, 1.0).unwrap(), 4.0, 1e-12);
    }

    #[test]
    fn quartiles_and_iqr() {
        let xs = [7.0, 15.0, 36.0, 39.0, 40.0, 41.0];
        let (q1, med, q3) = quartiles(&xs).unwrap();
        assert_close(q1, 20.25, 1e-12);
        assert_close(med, 37.5, 1e-12);
        assert_close(q3, 39.75, 1e-12);
        assert_close(iqr(&xs).unwrap(), 19.5, 1e-12);
    }

    #[test]
    fn median_handles_odd_and_even() {
        assert_close(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0, 1e-12);
        assert_close(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5, 1e-12);
        assert_close(median(&[5.0]).unwrap(), 5.0, 1e-12);
    }

    #[test]
    fn summary_from_slice() {
        let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
        let s = Summary::from_slice(&xs).unwrap();
        assert_eq!(s.n, 5);
        assert_close(s.min, 1.0, 1e-12);
        assert_close(s.max, 100.0, 1e-12);
        assert_close(s.median, 3.0, 1e-12);
        assert_eq!(s.tukey_outliers(&xs), 1);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(median(&[]).is_err());
        assert!(iqr(&[]).is_err());
        assert!(Summary::from_slice(&[]).is_err());
        assert!(quantile_type7(&[], 0.5).is_err());
        assert!(sample_variance(&[1.0]).is_err());
    }

    #[test]
    fn quantile_rejects_bad_q() {
        assert!(quantile_type7(&[1.0, 2.0], -0.1).is_err());
        assert!(quantile_type7(&[1.0, 2.0], 1.1).is_err());
    }
}
