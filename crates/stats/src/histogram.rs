//! Fixed-width histograms.
//!
//! Used by the reproduction harness to summarize classifier-score
//! distributions (Figure 1's heat-map data) and estimate distributions.

use crate::error::{StatsError, StatsResult};
use serde::{Deserialize, Serialize};

/// A fixed-bin histogram over `[min, max)` with an explicit overflow rule:
/// values exactly at `max` land in the last bin; values outside the range
/// are counted separately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
    total_in_range: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[min, max)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `bins == 0`, the bounds are not finite, or
    /// `min >= max`.
    pub fn new(min: f64, max: f64, bins: usize) -> StatsResult<Self> {
        if bins == 0 {
            return Err(StatsError::InvalidSampleSize {
                n: 0,
                population: None,
            });
        }
        if !min.is_finite() {
            return Err(StatsError::NonFinite {
                name: "min",
                value: min,
            });
        }
        if !max.is_finite() || max <= min {
            return Err(StatsError::NonFinite {
                name: "max",
                value: max,
            });
        }
        Ok(Self {
            min,
            max,
            counts: vec![0; bins],
            below: 0,
            above: 0,
            total_in_range: 0,
        })
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.max - self.min) / self.counts.len() as f64
    }

    /// Add an observation.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if x < self.min {
            self.below += 1;
        } else if x > self.max {
            self.above += 1;
        } else {
            let mut idx = ((x - self.min) / self.bin_width()) as usize;
            if idx >= self.counts.len() {
                idx = self.counts.len() - 1; // x == max
            }
            self.counts[idx] += 1;
            self.total_in_range += 1;
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of observations below `min` / above `max`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        self.min + (i as f64 + 0.5) * self.bin_width()
    }

    /// Normalized bin frequencies (fractions of in-range observations).
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total_in_range.max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Total observations that fell inside the range.
    pub fn total(&self) -> u64 {
        self.total_in_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_values_correctly() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        for &x in &[0.0, 0.1, 0.3, 0.6, 0.9, 1.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 2]); // 1.0 lands in last bin
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-0.5);
        h.add(2.0);
        h.add(0.5);
        assert_eq!(h.out_of_range(), (1, 1));
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn nan_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
        assert_eq!(h.out_of_range(), (0, 0));
    }

    #[test]
    fn centers_and_frequencies() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
        h.add(1.0);
        h.add(1.5);
        h.add(9.0);
        let f = h.frequencies();
        assert!((f[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((f[4] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn constructor_rejects_bad_args() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 0.0, 3).is_err());
        assert!(Histogram::new(0.0, f64::INFINITY, 3).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 3).is_err());
    }
}
