//! Confidence intervals for proportions and means.
//!
//! Implements the interval machinery of the paper's §3.1: the Wald
//! interval with finite-population correction for simple random sampling,
//! the Wilson interval recommended for extreme selectivities, and
//! normal/t intervals for general estimators (stratified, Des Raj).

use crate::error::{StatsError, StatsResult};
use crate::normal::z_critical;
use crate::student::t_critical;
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Construct an interval, normalizing the bound order.
    pub fn new(lo: f64, hi: f64, level: f64) -> Self {
        if lo <= hi {
            Self { lo, hi, level }
        } else {
            Self {
                lo: hi,
                hi: lo,
                level,
            }
        }
    }

    /// Width (`hi - lo`) of the interval.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Scale both endpoints by a constant (e.g. proportion → count).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self::new(self.lo * factor, self.hi * factor, self.level)
    }

    /// Clamp the interval to `[lo_bound, hi_bound]`.
    #[must_use]
    pub fn clamped(&self, lo_bound: f64, hi_bound: f64) -> Self {
        Self::new(
            self.lo.clamp(lo_bound, hi_bound),
            self.hi.clamp(lo_bound, hi_bound),
            self.level,
        )
    }
}

/// Which proportion-interval construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum IntervalKind {
    /// Wald (normal approximation) interval — the paper's default.
    #[default]
    Wald,
    /// Wilson score interval — more reliable for extreme selectivities.
    Wilson,
}

/// Finite-population correction factor `√((N − n) / (N − 1))`.
///
/// Returns 1.0 when no population size is given, and 0.0 for a census
/// (`n == N`).
pub fn fpc(n: usize, population: Option<usize>) -> f64 {
    match population {
        Some(pop) if pop > 1 => {
            let num = pop.saturating_sub(n) as f64;
            (num / (pop - 1) as f64).sqrt()
        }
        Some(_) => 0.0,
        None => 1.0,
    }
}

/// Wald confidence interval for a proportion estimated from an SRS of
/// size `n` (optionally without replacement from a population of
/// `population`, applying the finite-population correction).
///
/// The interval is `p̂ ± z_{α/2} √(p̂(1−p̂)/n) · √((N−n)/(N−1))`,
/// clamped to `[0, 1]`.
///
/// # Errors
///
/// Returns an error for `n == 0`, `p̂ ∉ [0, 1]`, or an invalid level.
pub fn wald_proportion(
    p_hat: f64,
    n: usize,
    population: Option<usize>,
    level: f64,
) -> StatsResult<ConfidenceInterval> {
    if n == 0 {
        return Err(StatsError::InvalidSampleSize { n, population });
    }
    if !(0.0..=1.0).contains(&p_hat) {
        return Err(StatsError::InvalidProbability { value: p_hat });
    }
    let z = z_critical(level)?;
    let se = (p_hat * (1.0 - p_hat) / n as f64).sqrt() * fpc(n, population);
    Ok(ConfidenceInterval::new(p_hat - z * se, p_hat + z * se, level).clamped(0.0, 1.0))
}

/// Wilson score interval for a proportion with `successes` out of `n`
/// trials.
///
/// More reliable than Wald when the proportion is close to 0 or 1 (the
/// caveat the paper raises for highly selective predicates). The
/// optional population triggers a finite-population shrinkage of the
/// half-width (the standard FPC heuristic for Wilson).
///
/// # Errors
///
/// Returns an error for `n == 0`, `successes > n`, or invalid level.
pub fn wilson_proportion(
    successes: usize,
    n: usize,
    population: Option<usize>,
    level: f64,
) -> StatsResult<ConfidenceInterval> {
    if n == 0 || successes > n {
        return Err(StatsError::InvalidSampleSize { n, population });
    }
    let z = z_critical(level)?;
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = z * ((p * (1.0 - p) + z2 / (4.0 * nf)) / nf).sqrt() / denom;
    let half = half * fpc(n, population);
    Ok(ConfidenceInterval::new(center - half, center + half, level).clamped(0.0, 1.0))
}

/// Normal-approximation interval `x̄ ± z_{α/2} · se`.
///
/// # Errors
///
/// Returns an error for non-finite arguments or an invalid level.
pub fn normal_interval(mean: f64, se: f64, level: f64) -> StatsResult<ConfidenceInterval> {
    if !mean.is_finite() {
        return Err(StatsError::NonFinite {
            name: "mean",
            value: mean,
        });
    }
    if !se.is_finite() || se < 0.0 {
        return Err(StatsError::NonFinite {
            name: "se",
            value: se,
        });
    }
    let z = z_critical(level)?;
    Ok(ConfidenceInterval::new(mean - z * se, mean + z * se, level))
}

/// Student-t interval `x̄ ± t_{α/2, df} · se`.
///
/// Used by stratified estimators where the variance is itself estimated;
/// paper §3.1. If `df` is very large this converges to the normal
/// interval.
///
/// # Errors
///
/// Returns an error for non-finite arguments, invalid level, or `df <= 0`.
pub fn t_interval(mean: f64, se: f64, df: f64, level: f64) -> StatsResult<ConfidenceInterval> {
    if !mean.is_finite() {
        return Err(StatsError::NonFinite {
            name: "mean",
            value: mean,
        });
    }
    if !se.is_finite() || se < 0.0 {
        return Err(StatsError::NonFinite {
            name: "se",
            value: se,
        });
    }
    let t = t_critical(level, df)?;
    Ok(ConfidenceInterval::new(mean - t * se, mean + t * se, level))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, tol: f64) {
        assert!(
            (got - want).abs() <= tol,
            "got {got}, want {want} (tol {tol})"
        );
    }

    #[test]
    fn interval_basics() {
        let ci = ConfidenceInterval::new(3.0, 1.0, 0.95);
        assert_eq!(ci.lo, 1.0);
        assert_eq!(ci.hi, 3.0);
        assert_close(ci.width(), 2.0, 1e-12);
        assert_close(ci.midpoint(), 2.0, 1e-12);
        assert!(ci.contains(2.5));
        assert!(!ci.contains(0.5));
        let scaled = ci.scaled(10.0);
        assert_close(scaled.lo, 10.0, 1e-12);
        assert_close(scaled.hi, 30.0, 1e-12);
    }

    #[test]
    fn wald_textbook_example() {
        // p̂ = 0.5, n = 100, 95%: half-width = 1.96 * 0.05 ≈ 0.098.
        let ci = wald_proportion(0.5, 100, None, 0.95).unwrap();
        assert_close(ci.width(), 2.0 * 1.959_963_985 * 0.05, 1e-6);
        assert!(ci.contains(0.5));
    }

    #[test]
    fn wald_fpc_shrinks_interval() {
        let without = wald_proportion(0.3, 100, None, 0.95).unwrap();
        let with = wald_proportion(0.3, 100, Some(200), 0.95).unwrap();
        assert!(with.width() < without.width());
        // Census: width 0.
        let census = wald_proportion(0.3, 200, Some(200), 0.95).unwrap();
        assert_close(census.width(), 0.0, 1e-12);
    }

    #[test]
    fn wald_clamps_to_unit_interval() {
        let ci = wald_proportion(0.01, 20, None, 0.99).unwrap();
        assert!(ci.lo >= 0.0);
        let ci = wald_proportion(0.99, 20, None, 0.99).unwrap();
        assert!(ci.hi <= 1.0);
    }

    #[test]
    fn wilson_reference_value() {
        // Known Wilson interval: k=8, n=10, 95% -> approx (0.49, 0.943).
        let ci = wilson_proportion(8, 10, None, 0.95).unwrap();
        assert_close(ci.lo, 0.49, 0.01);
        assert_close(ci.hi, 0.943, 0.01);
    }

    #[test]
    fn wilson_never_degenerates_at_extremes() {
        // Unlike Wald, Wilson gives a nonzero-width interval at p̂ = 0.
        let wald = wald_proportion(0.0, 50, None, 0.95).unwrap();
        let wilson = wilson_proportion(0, 50, None, 0.95).unwrap();
        assert_close(wald.width(), 0.0, 1e-12);
        assert!(wilson.width() > 0.0);
        assert!(wilson.lo >= 0.0);
    }

    #[test]
    fn t_interval_wider_than_normal_for_small_df() {
        let norm = normal_interval(10.0, 2.0, 0.95).unwrap();
        let t5 = t_interval(10.0, 2.0, 5.0, 0.95).unwrap();
        assert!(t5.width() > norm.width());
        let t_big = t_interval(10.0, 2.0, 1e6, 0.95).unwrap();
        assert_close(t_big.width(), norm.width(), 1e-3);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(wald_proportion(0.5, 0, None, 0.95).is_err());
        assert!(wald_proportion(1.5, 10, None, 0.95).is_err());
        assert!(wilson_proportion(11, 10, None, 0.95).is_err());
        assert!(normal_interval(f64::NAN, 1.0, 0.95).is_err());
        assert!(normal_interval(0.0, -1.0, 0.95).is_err());
        assert!(t_interval(0.0, 1.0, 0.0, 0.95).is_err());
    }

    #[test]
    fn fpc_limits() {
        assert_close(fpc(10, None), 1.0, 1e-12);
        assert_close(fpc(10, Some(10)), 0.0, 1e-12);
        assert!(fpc(10, Some(1_000_000)) > 0.999);
    }

    #[test]
    fn higher_level_gives_wider_interval() {
        let ci90 = wald_proportion(0.4, 50, None, 0.90).unwrap();
        let ci99 = wald_proportion(0.4, 50, None, 0.99).unwrap();
        assert!(ci99.width() > ci90.width());
    }
}
