//! Error types for statistical routines.

use std::fmt;

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A probability argument was outside `(0, 1)` (or `[0, 1]` where noted).
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A degrees-of-freedom argument was not strictly positive.
    InvalidDegreesOfFreedom {
        /// The offending value.
        value: f64,
    },
    /// An input slice was empty where at least one element is required.
    EmptyInput,
    /// A numeric argument was NaN or infinite where a finite value is required.
    NonFinite {
        /// Name of the offending argument.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A sample size argument was invalid (zero, or larger than the population).
    InvalidSampleSize {
        /// The requested sample size.
        n: usize,
        /// The population size, if applicable.
        population: Option<usize>,
    },
    /// An iterative numeric routine failed to converge.
    NoConvergence {
        /// Name of the routine.
        routine: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidProbability { value } => {
                write!(f, "probability must lie in (0, 1), got {value}")
            }
            StatsError::InvalidDegreesOfFreedom { value } => {
                write!(f, "degrees of freedom must be positive, got {value}")
            }
            StatsError::EmptyInput => write!(f, "input slice must be non-empty"),
            StatsError::NonFinite { name, value } => {
                write!(f, "argument `{name}` must be finite, got {value}")
            }
            StatsError::InvalidSampleSize { n, population } => match population {
                Some(pop) => write!(f, "sample size {n} invalid for population of {pop}"),
                None => write!(f, "sample size {n} is invalid"),
            },
            StatsError::NoConvergence { routine } => {
                write!(f, "numeric routine `{routine}` failed to converge")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias used throughout the crate.
pub type StatsResult<T> = Result<T, StatsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StatsError::InvalidProbability { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
        let e = StatsError::InvalidSampleSize {
            n: 10,
            population: Some(5),
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));
        let e = StatsError::NoConvergence { routine: "betacf" };
        assert!(e.to_string().contains("betacf"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StatsError::EmptyInput, StatsError::EmptyInput);
        assert_ne!(
            StatsError::EmptyInput,
            StatsError::InvalidProbability { value: 0.0 }
        );
    }
}
