//! Property-based tests for the statistical kernels.

use lts_stats::{
    norm_cdf, norm_quantile, quantile_type7, t_cdf, t_quantile, wald_proportion, wilson_proportion,
    IntervalKind, RunningStats, Summary,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn normal_quantile_roundtrips(p in 1e-6f64..=0.999999) {
        let x = norm_quantile(p).unwrap();
        prop_assert!((norm_cdf(x) - p).abs() < 1e-7);
    }

    #[test]
    fn normal_cdf_monotone(a in -8.0f64..8.0, b in -8.0f64..8.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(norm_cdf(lo) <= norm_cdf(hi) + 1e-15);
    }

    #[test]
    fn t_quantile_roundtrips(p in 0.001f64..=0.999, df in 1.0f64..200.0) {
        let x = t_quantile(p, df).unwrap();
        prop_assert!((t_cdf(x, df).unwrap() - p).abs() < 1e-8);
    }

    #[test]
    fn t_is_symmetric(x in 0.0f64..30.0, df in 1.0f64..100.0) {
        let upper = t_cdf(x, df).unwrap();
        let lower = t_cdf(-x, df).unwrap();
        prop_assert!((upper + lower - 1.0).abs() < 1e-10);
    }

    #[test]
    fn wald_and_wilson_contain_p_hat_center(
        k in 0usize..50,
        extra in 1usize..50,
        level in 0.5f64..0.999,
    ) {
        let n = k + extra;
        let p_hat = k as f64 / n as f64;
        let wald = wald_proportion(p_hat, n, None, level).unwrap();
        prop_assert!(wald.contains(p_hat));
        let wilson = wilson_proportion(k, n, None, level).unwrap();
        // Wilson recenters, but must still lie within [0, 1] and have
        // positive width for interior levels.
        prop_assert!(wilson.lo >= 0.0 && wilson.hi <= 1.0);
        prop_assert!(wilson.width() > 0.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        mut xs in proptest::collection::vec(-1e3f64..1e3, 2..40),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        xs.sort_by(f64::total_cmp);
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile_type7(&xs, lo).unwrap();
        let b = quantile_type7(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e4f64..1e4, 2..60)) {
        let mut acc = RunningStats::new();
        for &x in &xs {
            acc.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (xs.len() - 1) as f64;
        prop_assert!((acc.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((acc.sample_variance().unwrap() - var).abs() < 1e-5 * (1.0 + var));
    }

    #[test]
    fn summary_orders_quartiles(xs in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
        let s = Summary::from_slice(&xs).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-12);
        prop_assert!(s.q1 <= s.median + 1e-12);
        prop_assert!(s.median <= s.q3 + 1e-12);
        prop_assert!(s.q3 <= s.max + 1e-12);
        prop_assert!(s.iqr() >= 0.0);
    }

    #[test]
    fn census_intervals_collapse(k in 0usize..40, level in 0.6f64..0.99) {
        // With the finite-population correction and n = N, Wald width is 0.
        let n = k + 10;
        let p_hat = k as f64 / n as f64;
        let wald = wald_proportion(p_hat, n, Some(n), level).unwrap();
        prop_assert!(wald.width() < 1e-12);
        let _ = IntervalKind::Wald;
    }
}
