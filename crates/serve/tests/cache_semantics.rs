//! Cache-semantics contract of the serving layer:
//!
//! * structurally different queries never alias (fingerprints or
//!   catalog entries);
//! * table-version bumps invalidate models and results;
//! * warm starts replay bit-identically against cold starts at the
//!   same request seed and spend ≥ 5× fewer oracle evaluations at the
//!   same designed CI width;
//! * shuffled arrival order and worker interleaving never change any
//!   per-request response.

use lts_serve::{Request, Response, Service, ServiceConfig, StalenessPolicy, Target};
use lts_table::table_of_floats;
use std::sync::Arc;

fn linear_table(n: usize) -> Arc<lts_table::Table> {
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i * 37) % n) as f64).collect();
    Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap())
}

fn service(n: usize) -> Service {
    let mut s = Service::new(ServiceConfig::default());
    s.register_dataset("d", linear_table(n), &["x", "y"])
        .unwrap();
    s
}

fn req(id: u64, condition: &str, budget: usize, fresh: bool) -> Request {
    Request {
        id,
        dataset: "d".into(),
        condition: condition.into(),
        target: Target::Budget(budget),
        fresh,
    }
}

fn bits(r: &Response) -> (u64, u64, u64, u64) {
    (
        r.estimate.to_bits(),
        r.std_error.to_bits(),
        r.lo.to_bits(),
        r.hi.to_bits(),
    )
}

#[test]
fn distinct_queries_never_alias() {
    let mut s = service(1_000);
    // Semantically different queries that a sloppy normalizer could
    // conflate: strict vs non-strict, negation, and/or, columns.
    let conditions = [
        "x < 300",
        "x <= 300",
        "NOT (x < 300)",
        "y < 300",
        "x < 300 AND y < 300",
        "x < 300 OR y < 300",
    ];
    let responses: Vec<Response> = conditions
        .iter()
        .enumerate()
        .map(|(i, c)| s.run(req(i as u64, c, 200, false)))
        .collect();
    for r in &responses {
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.served, "cold");
    }
    let mut fps: Vec<u64> = responses.iter().map(|r| r.fingerprint).collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), conditions.len(), "fingerprints must be distinct");
    assert_eq!(s.catalog_len(), conditions.len());
    assert_eq!(s.store_len(), conditions.len());
    // Equivalent spellings DO alias: commuted AND hits the cache.
    let r = s.run(req(100, "y < 300 AND x < 300", 200, false));
    assert_eq!(r.served, "cached");
    assert_eq!(s.catalog_len(), conditions.len());
}

#[test]
fn repeats_hit_result_cache_and_fresh_bypasses_it() {
    let mut s = service(1_000);
    let cold = s.run(req(1, "x < 400", 200, false));
    assert_eq!(cold.served, "cold");
    assert!(
        cold.evals >= 200,
        "cold pays full budget, got {}",
        cold.evals
    );

    let hit = s.run(req(2, "x < 400", 200, false));
    assert_eq!(hit.served, "cached");
    assert_eq!(hit.evals, 0);
    assert_eq!(bits(&hit), bits(&cold), "cache returns the same estimate");

    // `fresh` bypasses the result cache but warm-starts from the store.
    let fresh = s.run(req(3, "x < 400", 200, true));
    assert_eq!(fresh.served, "warm");
    assert!(fresh.evals > 0);
    assert_ne!(bits(&fresh), bits(&cold), "fresh draws a new sample");
    assert_eq!(
        fresh.model_version, cold.model_version,
        "fresh reuses the same model+design"
    );
    let stats = s.stats();
    assert_eq!((stats.cold, stats.cached, stats.warm), (1, 1, 1));
    assert_eq!(stats.oracle_evals_saved, cold.evals as u64);
}

#[test]
fn warm_start_spends_5x_fewer_evals_at_the_same_design_width() {
    let mut s = service(2_000);
    // A predicate the 2-feature proxy learns only approximately, so
    // strata keep genuine label mixtures and intervals nonzero width.
    let cond = "x + y < 1700";
    let cold = s.run(req(1, cond, 300, false));
    assert_eq!(cold.served, "cold");
    let warm = s.run(req(2, cond, 300, true));
    assert_eq!(warm.served, "warm");
    assert!(
        cold.evals as f64 >= 5.0 * warm.evals as f64,
        "cold {} vs warm {} evals",
        cold.evals,
        warm.evals
    );
    // Same design ⇒ comparable interval widths (independent stage-2
    // draws wiggle the realized width, not its scale).
    let (cw, ww) = (cold.hi - cold.lo, warm.hi - warm.lo);
    assert!(cw > 0.0 && ww > 0.0, "degenerate widths: {cw} vs {ww}");
    assert!(
        ww <= cw * 3.0 + 1.0 && cw <= ww * 3.0 + 1.0,
        "widths diverged: cold {cw} vs warm {ww}"
    );
}

#[test]
fn invalidation_drops_models_and_results() {
    let mut s = service(1_000);
    let cold = s.run(req(1, "x < 250", 200, false));
    assert_eq!(cold.served, "cold");
    assert_eq!(cold.table_version, 0);
    assert_eq!((s.store_len(), s.cache_len()), (1, 1));

    s.invalidate("d").unwrap();
    assert_eq!(s.dataset_version("d"), Some(1));
    assert_eq!((s.store_len(), s.cache_len()), (0, 0));

    // Same query re-colds against the new version; fingerprint moves.
    let recold = s.run(req(2, "x < 250", 200, false));
    assert_eq!(recold.served, "cold");
    assert_eq!(recold.table_version, 1);
    assert_ne!(recold.fingerprint, cold.fingerprint);

    // Re-registering a dataset also bumps + invalidates.
    s.register_dataset("d", linear_table(1_000), &["x", "y"])
        .unwrap();
    assert_eq!(s.dataset_version("d"), Some(2));
    assert_eq!(s.store_len(), 0);
}

#[test]
fn warm_and_cold_replay_bit_identically_at_the_same_request_seed() {
    // Service A answers request id=7 cold (it prepares the state);
    // service B warms the state first with other requests, then
    // answers the SAME id=7. The responses must be bit-identical:
    // per-request seed streams are independent of cache temperature.
    let mut a = service(1_500);
    let ra = a.run(req(7, "x < 600", 250, true));
    assert_eq!(ra.served, "cold");

    let mut b = service(1_500);
    b.run(req(100, "x < 600", 250, true));
    b.run(req(101, "x < 600", 250, true));
    let rb = b.run(req(7, "x < 600", 250, true));
    assert_eq!(rb.served, "warm");
    assert_eq!(bits(&ra), bits(&rb), "same id ⇒ bit-identical estimate");
    assert_eq!(ra.fingerprint, rb.fingerprint);
    assert_eq!(ra.model_version, rb.model_version);
    // Evals differ by design: cold pays prepare + stage 2.
    assert!(ra.evals > rb.evals);
}

#[test]
fn shuffled_arrival_order_yields_identical_per_request_responses() {
    let make_requests = || -> Vec<Request> {
        let mut v = Vec::new();
        for i in 0..24u64 {
            let cond = match i % 3 {
                0 => "x < 500",
                1 => "x < 500 AND y < 800",
                _ => "y < 200",
            };
            v.push(req(i, cond, 200, i % 4 == 3));
        }
        v
    };
    let run_order = |order: &[usize]| -> Vec<Response> {
        let mut s = service(1_200);
        let requests = make_requests();
        let batch: Vec<Request> = order.iter().map(|&k| requests[k].clone()).collect();
        let mut responses = s.run_batch(batch);
        responses.sort_by_key(|r| r.id);
        responses
    };
    let forward: Vec<usize> = (0..24).collect();
    // A fixed pseudo-shuffle (deterministic test input).
    let shuffled: Vec<usize> = (0..24).map(|i| (i * 17 + 5) % 24).collect();
    let a = run_order(&forward);
    let b = run_order(&shuffled);
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.id, rb.id);
        assert_eq!(ra.ok, rb.ok);
        assert_eq!(bits(ra), bits(rb), "request {} diverged", ra.id);
        assert_eq!(ra.evals, rb.evals, "request {} evals diverged", ra.id);
        assert_eq!(ra.served, rb.served, "request {} flag diverged", ra.id);
        assert_eq!(ra.fingerprint, rb.fingerprint);
    }
}

#[test]
fn staleness_policy_bounds_reserves() {
    let mut s = Service::new(ServiceConfig {
        staleness: StalenessPolicy {
            max_serves: Some(2),
            max_age: None,
        },
        ..ServiceConfig::default()
    });
    s.register_dataset("d", linear_table(900), &["x", "y"])
        .unwrap();
    let cold = s.run(req(1, "x < 300", 150, false));
    assert_eq!(cold.served, "cold");
    assert_eq!(s.run(req(2, "x < 300", 150, false)).served, "cached");
    assert_eq!(s.run(req(3, "x < 300", 150, false)).served, "cached");
    // Policy exhausted: recomputed from the (still warm) model store.
    let recomputed = s.run(req(4, "x < 300", 150, false));
    assert_eq!(recomputed.served, "warm");
    assert!(recomputed.evals > 0);
    // The recomputation refreshed the cache.
    assert_eq!(s.run(req(5, "x < 300", 150, false)).served, "cached");
}

#[test]
fn store_export_restores_warm_states_without_oracle_work() {
    let mut a = service(1_000);
    let cold = a.run(req(1, "x < 350", 200, false));
    assert_eq!(cold.served, "cold");
    let export = a.export_store();
    assert!(export.contains("entry\t"));

    // A fresh service restores the state: zero oracle evals, and the
    // restored model answers warm with the exact same model version.
    let mut b = service(1_000);
    let restored = b.import_store(&export).unwrap();
    assert_eq!(restored, 1);
    assert_eq!(b.store_len(), 1);
    let warm = b.run(req(2, "x < 350", 200, true));
    assert_eq!(warm.served, "warm");
    assert_eq!(warm.model_version, cold.model_version);

    // The same fresh request replays identically on both services.
    let mut a2 = service(1_000);
    a2.run(req(1, "x < 350", 200, false));
    let wa = a2.run(req(9, "x < 350", 200, true));
    let wb = b.run(req(9, "x < 350", 200, true));
    assert_eq!(bits(&wa), bits(&wb));
}

/// A decomposable conjunction over the linear table: the subquery
/// counts strict dominators on `x`, so `(SELECT ...) > 700` is
/// equivalent to `x > 700` — an exact ground truth — while still being
/// an expensive oracle conjunct to the decomposer. The `y` bound is the
/// cheap prefilter; `y = (37·i) mod n` is a permutation for n=1000, so
/// `y < 500` keeps exactly 500 of 1000 rows (selective enough to plan).
const DECOMPOSABLE: &str = "y < 500 AND (SELECT COUNT(*) FROM d WHERE x < o.x) > 700";

#[test]
fn decomposed_spellings_alias_their_monolithic_twin() {
    let mut s = service(1_000);
    let cold = s.run(req(1, DECOMPOSABLE, 200, false));
    assert!(cold.ok, "{:?}", cold.error);
    assert_eq!(cold.served, "cold");
    let plan = cold.plan.as_ref().expect("decomposed query carries a plan");
    assert_eq!(plan.kind, "prefilter_estimate");
    assert_eq!(plan.survivors, Some(500));
    assert_eq!(plan.selectivity, Some(0.5));

    // The commuted spelling canonicalizes to the same query: result
    // cache hit, same fingerprint, no new catalog entry.
    let commuted = s.run(req(
        2,
        "(SELECT COUNT(*) FROM d WHERE x < o.x) > 700 AND y < 500",
        200,
        false,
    ));
    assert_eq!(commuted.served, "cached");
    assert_eq!(commuted.fingerprint, cold.fingerprint);
    assert_eq!(bits(&commuted), bits(&cold));
    assert_eq!(s.catalog_len(), 1);

    // Near-misses do NOT alias: a different prefilter bound or a
    // different residual threshold is a different query.
    for (id, near) in [
        (
            3,
            "y < 501 AND (SELECT COUNT(*) FROM d WHERE x < o.x) > 700",
        ),
        (
            4,
            "y < 500 AND (SELECT COUNT(*) FROM d WHERE x < o.x) > 699",
        ),
    ] {
        let r = s.run(req(id, near, 200, false));
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.served, "cold", "near-miss `{near}` must not alias");
        assert_ne!(r.fingerprint, cold.fingerprint);
    }
    assert_eq!(s.catalog_len(), 3);
}

#[test]
fn prefiltered_warm_states_export_and_restore() {
    let mut a = service(1_000);
    let cold = a.run(req(1, DECOMPOSABLE, 200, false));
    assert_eq!(cold.served, "cold");
    assert_eq!(cold.route, "lss");
    let export = a.export_store();
    assert!(
        export.contains("\tlss+pf\t"),
        "restricted state exports with the +pf tag:\n{export}"
    );

    // A fresh service restores the restricted state (re-decomposes,
    // re-scans, replays prepare with known labels — zero oracle work)
    // and resumes it warm with the exact same model version.
    let mut b = service(1_000);
    assert_eq!(b.import_store(&export).unwrap(), 1);
    let warm = b.run(req(2, DECOMPOSABLE, 200, true));
    assert_eq!(warm.served, "warm");
    assert_eq!(warm.model_version, cold.model_version);

    // The same fresh request replays bit-identically on a service that
    // prepared its own state.
    let mut a2 = service(1_000);
    a2.run(req(1, DECOMPOSABLE, 200, false));
    let wa = a2.run(req(9, DECOMPOSABLE, 200, true));
    let wb = b.run(req(9, DECOMPOSABLE, 200, true));
    assert_eq!(bits(&wa), bits(&wb));
}

#[test]
fn zero_survivor_prefilters_answer_exact_zero_for_free() {
    let mut s = service(1_000);
    let r = s.run(req(
        1,
        "y < 0 AND (SELECT COUNT(*) FROM d WHERE x < o.x) > 700",
        200,
        false,
    ));
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.served, "exact");
    assert_eq!(r.route, "exact");
    assert_eq!(r.estimate, 0.0);
    assert_eq!((r.lo, r.hi), (0.0, 0.0));
    assert_eq!(r.evals, 0, "no oracle evaluation for an empty scope");
    let plan = r.plan.as_ref().unwrap();
    assert_eq!(plan.kind, "exact_prefilter");
    assert_eq!(plan.survivors, Some(0));
}

#[test]
fn planned_census_matches_forced_monolithic_census_with_fewer_evals() {
    // A width target tight enough to force the census on both plans.
    let tight = |id: u64| Request {
        id,
        dataset: "d".into(),
        condition: DECOMPOSABLE.into(),
        target: Target::RelWidth(0.0001),
        fresh: false,
    };
    let mut planned = service(1_000);
    let rp = planned.run(tight(1));
    assert!(rp.ok, "{:?}", rp.error);
    assert_eq!(rp.route, "exact");
    assert_eq!(rp.plan.as_ref().unwrap().kind, "exact_prefilter");

    let mut mono = Service::new(ServiceConfig {
        planner: lts_serve::BudgetPlanner {
            monolithic_selectivity: 0.0,
            ..lts_serve::BudgetPlanner::default()
        },
        ..ServiceConfig::default()
    });
    mono.register_dataset("d", linear_table(1_000), &["x", "y"])
        .unwrap();
    let rm = mono.run(tight(1));
    assert!(rm.ok, "{:?}", rm.error);
    assert_eq!(rm.route, "exact");
    assert!(rm.plan.is_none(), "forced-monolithic carries no plan echo");

    assert_eq!(rp.estimate, rm.estimate, "same exact count either way");
    assert_eq!(rp.evals, 500, "restricted census labels only survivors");
    assert_eq!(rm.evals, 1_000, "monolithic census labels everything");
}

#[test]
fn version_bump_drops_plan_state_and_selectivity_feedback() {
    let mut s = service(1_000);
    let cold = s.run(req(1, DECOMPOSABLE, 200, false));
    assert_eq!(cold.served, "cold");
    assert_eq!(s.store_len(), 1);

    s.invalidate("d").unwrap();
    assert_eq!((s.store_len(), s.cache_len()), (0, 0));

    // Re-colds against the new version: the prefilter re-scans (the
    // data is unchanged, so the plan echo is identical) and the
    // fingerprint moves with the version.
    let recold = s.run(req(2, DECOMPOSABLE, 200, false));
    assert_eq!(recold.served, "cold");
    assert_eq!(recold.table_version, 1);
    assert_ne!(recold.fingerprint, cold.fingerprint);
    let plan = recold.plan.as_ref().unwrap();
    assert_eq!(plan.kind, "prefilter_estimate");
    assert_eq!(plan.survivors, Some(500));
}

#[test]
fn small_populations_and_tight_targets_take_the_exact_route() {
    let mut s = service(50);
    let r = s.run(req(1, "x < 20", 40, false));
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.route, "exact");
    assert_eq!(r.estimate, 20.0);
    assert_eq!(r.lo, r.hi);
    assert_eq!(r.evals, 50);
    // Exact results cache like any other.
    let hit = s.run(req(2, "x < 20", 40, false));
    assert_eq!(hit.served, "cached");
    assert_eq!(hit.evals, 0);

    // Tight relative width on a larger population → census too.
    let mut s = service(2_000);
    let r = s.run(Request {
        id: 3,
        dataset: "d".into(),
        condition: "x < 900".into(),
        target: Target::RelWidth(0.001),
        fresh: false,
    });
    assert_eq!(r.route, "exact");
    assert_eq!(r.estimate, 900.0);
}
