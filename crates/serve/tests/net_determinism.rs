//! Concurrent-client determinism: N TCP clients submit a shuffled
//! partition of a scripted session with explicit request ids, and
//! every response must be **bit-identical** to the single-client
//! golden transcript for the same id — across client counts {1, 4, 16}
//! (CI additionally runs this test binary under `RAYON_NUM_THREADS=1`
//! and default threads).
//!
//! The session has two phases:
//!
//! * **setup** (one client, sequential): register the dataset, then
//!   one cold `count` per query — this pins the model store so the
//!   concurrent phase's `served`/`evals` bookkeeping cannot depend on
//!   which client happens to arrive first;
//! * **body** (shuffled across clients): `fresh` counts with explicit
//!   ids — by the service's determinism contract each response is a
//!   pure function of (seed, dataset version, canonical query, budget,
//!   id), so arbitrary interleaving must reproduce the golden bytes.

mod net_common;

use lts_serve::{run_repl, NetConfig, NetServer, ReplOptions, ServiceConfig};
use net_common::{field_u64, Client};
use std::collections::HashMap;
use std::sync::{Arc, Barrier};

const QUERIES: [&str; 3] = [
    "strikeouts < 120",
    "wins > 10 AND strikeouts < 150",
    "(SELECT COUNT(*) FROM s WHERE strikeouts >= o.strikeouts AND wins >= o.wins \
     AND (strikeouts > o.strikeouts OR wins > o.wins)) < 50",
];

fn setup_lines() -> Vec<String> {
    let mut lines = vec!["register sports s rows=1200 level=M seed=3".to_string()];
    for (q, cond) in QUERIES.iter().enumerate() {
        lines.push(format!("count s budget=150 id={} :: {cond}", 1_000 + q));
    }
    lines
}

fn body_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for (q, cond) in QUERIES.iter().enumerate() {
        for rep in 0..8 {
            lines.push(format!(
                "count s budget=150 fresh id={} :: {cond}",
                100 * q as u64 + rep
            ));
        }
    }
    lines
}

/// id → golden response line, from a single-client REPL run of the
/// same session (the REPL and the TCP server share one protocol
/// implementation, so the REPL transcript is the source of truth).
fn golden_by_id() -> HashMap<u64, String> {
    let script: String = setup_lines()
        .into_iter()
        .chain(body_lines())
        .map(|l| l + "\n")
        .collect();
    let mut out = Vec::new();
    run_repl(
        ServiceConfig::default(),
        ReplOptions {
            deterministic: true,
        },
        script.as_bytes(),
        &mut out,
    )
    .unwrap();
    let mut by_id = HashMap::new();
    for line in String::from_utf8(out).unwrap().lines() {
        if let Some(id) = field_u64(line, "id") {
            assert!(
                by_id.insert(id, line.to_string()).is_none(),
                "duplicate id in golden transcript"
            );
        }
    }
    assert_eq!(by_id.len(), 3 + 24, "3 setup counts + 24 body counts");
    by_id
}

/// Deterministic Fisher–Yates (LCG), so the partition is stable per
/// client count but different across counts.
fn shuffled(mut lines: Vec<String>, seed: u64) -> Vec<String> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for i in (1..lines.len()).rev() {
        let j = (next() as usize) % (i + 1);
        lines.swap(i, j);
    }
    lines
}

fn run_with_clients(n_clients: usize, golden: &HashMap<u64, String>) {
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            repl: ReplOptions {
                deterministic: true,
            },
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Setup phase: one client, sequential; cold responses must already
    // match the golden transcript byte-for-byte.
    let mut c0 = Client::connect(addr);
    for line in setup_lines() {
        let resp = c0.roundtrip(&line);
        if let Some(id) = field_u64(&resp, "id") {
            assert_eq!(
                Some(&resp),
                golden.get(&id),
                "[{n_clients} clients] setup response for id {id} diverged"
            );
        } else {
            assert!(resp.contains("\"registered\""), "{resp}");
        }
    }

    // Body phase: a shuffled partition of the session, round-robin
    // across n concurrent connections.
    let lines = shuffled(body_lines(), n_clients as u64);
    let mut slices: Vec<Vec<String>> = vec![Vec::new(); n_clients];
    for (k, line) in lines.into_iter().enumerate() {
        slices[k % n_clients].push(line);
    }
    let barrier = Arc::new(Barrier::new(n_clients));
    let handles: Vec<_> = slices
        .into_iter()
        .map(|slice| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                barrier.wait();
                slice
                    .iter()
                    .map(|line| client.roundtrip(line))
                    .collect::<Vec<String>>()
            })
        })
        .collect();
    let mut seen = 0usize;
    for handle in handles {
        for resp in handle.join().expect("client thread") {
            let id = field_u64(&resp, "id").expect("response carries its id");
            assert_eq!(
                Some(&resp),
                golden.get(&id),
                "[{n_clients} clients] response for id {id} diverged from golden"
            );
            assert!(
                resp.contains("\"served\": \"warm\""),
                "body requests resume the pinned store: {resp}"
            );
            seen += 1;
        }
    }
    assert_eq!(seen, 24, "every partitioned request must be answered");

    server.shutdown();
    server.join();
}

#[test]
fn shuffled_partitions_reproduce_the_golden_transcript() {
    let golden = golden_by_id();
    for n_clients in [1usize, 4, 16] {
        run_with_clients(n_clients, &golden);
    }
}
