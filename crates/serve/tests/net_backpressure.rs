//! Backpressure / soak: one slow reader floods the server with
//! large-response requests and never reads, while fast clients keep
//! doing small cached round-trips. The slow connection must be dropped
//! by the bounded write-queue policy; the fast clients must all
//! complete correctly. (The write-queue policy itself is unit-tested at
//! its limits in `lts_serve::net`.)

mod net_common;

use lts_serve::{NetConfig, NetServer, ReplOptions};
use net_common::Client;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Lines the slow client writes. Each is an unknown command whose
/// structured error echoes the ~32 KiB token back, so the responses
/// (~25 MiB total) vastly exceed loopback socket buffering: the writer
/// thread stalls on the unread socket, the 2-slot write queue
/// overflows, and the policy drops the connection.
const FLOOD_LINES: usize = 800;

#[test]
fn slow_reader_is_dropped_while_fast_clients_stay_served() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            repl: ReplOptions {
                deterministic: true,
            },
            write_queue_capacity: 2,
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Warm the cache so the fast clients' round-trips are `cached`
    // replays with a known byte-exact response.
    let mut setup = Client::connect(addr);
    let resp = setup.roundtrip("register sports s rows=800 level=M seed=3");
    assert!(resp.contains("\"registered\""), "{resp}");
    let cold = setup.roundtrip("count s budget=100 id=7 :: wins > 10");
    assert!(cold.contains("\"served\": \"cold\""), "{cold}");
    let cached = setup.roundtrip("count s budget=100 id=7 :: wins > 10");
    assert!(cached.contains("\"served\": \"cached\""), "{cached}");

    let barrier = Arc::new(Barrier::new(3));

    // The slow reader: floods requests, never reads responses. Write
    // errors are expected once the server drops the connection.
    let slow = {
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect slow");
            stream.set_nodelay(true).expect("nodelay");
            let junk = "x".repeat(32 * 1024);
            barrier.wait();
            let mut written = 0usize;
            for _ in 0..FLOOD_LINES {
                if writeln!(stream, "{junk}").is_err() {
                    break;
                }
                written += 1;
            }
            (stream, written)
        })
    };

    // Two fast clients doing small cached round-trips throughout the
    // flood: every one must come back correct.
    let fast: Vec<_> = (0..2)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let expect = cached.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.set_read_timeout(Duration::from_secs(60));
                barrier.wait();
                for _ in 0..25 {
                    let resp = client.roundtrip("count s budget=100 id=7 :: wins > 10");
                    assert_eq!(resp, expect, "fast client response diverged under flood");
                }
            })
        })
        .collect();

    for handle in fast {
        handle
            .join()
            .expect("fast client must complete under flood");
    }

    // The slow connection was dropped: reading it back yields fewer
    // responses than requests, ending in EOF or a reset.
    let (stream, written) = slow.join().expect("slow client thread");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut reader = std::io::BufReader::new(stream);
    let mut received = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::BufRead::read_line(&mut reader, &mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => received += 1,
        }
    }
    assert!(
        received < FLOOD_LINES,
        "slow reader must be dropped, not buffered without bound \
         (wrote {written}, got {received} of {FLOOD_LINES} responses)"
    );

    // And the server is still healthy afterwards.
    let resp = setup.roundtrip("count s budget=100 id=7 :: wins > 10");
    assert_eq!(resp, cached, "server must keep serving after the drop");

    server.shutdown();
    server.join();
}
