//! Sharded serving contract: with `ServiceConfig::shards > 1` cold
//! estimates run the per-shard pipeline and merge with composed
//! variance, warm resumes replay the stored per-shard snapshots, and
//! the store export round-trips sharded states (`lss@k` tags) at zero
//! oracle cost.

use lts_serve::{Request, Response, Service, ServiceConfig, Target};
use lts_table::table_of_floats;
use std::sync::Arc;

fn linear_table(n: usize) -> Arc<lts_table::Table> {
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i * 37) % n) as f64).collect();
    Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap())
}

fn sharded_service(n: usize, shards: usize) -> Service {
    let config = ServiceConfig {
        shards,
        ..ServiceConfig::default()
    };
    let mut s = Service::new(config);
    s.register_dataset("d", linear_table(n), &["x", "y"])
        .unwrap();
    s
}

fn req(id: u64, condition: &str, budget: usize, fresh: bool) -> Request {
    Request {
        id,
        dataset: "d".into(),
        condition: condition.into(),
        target: Target::Budget(budget),
        fresh,
    }
}

fn bits(r: &Response) -> (u64, u64, u64, u64) {
    (
        r.estimate.to_bits(),
        r.std_error.to_bits(),
        r.lo.to_bits(),
        r.hi.to_bits(),
    )
}

#[test]
fn sharded_cold_and_warm_serve_with_honest_intervals() {
    let mut s = sharded_service(4_000, 4);
    let cold = s.run(req(1, "x < 1500", 600, false));
    assert!(cold.ok, "{:?}", cold.error);
    assert_eq!(cold.served, "cold");
    assert_eq!(cold.route, "lss");
    assert!(cold.model_version != 0);
    // A perfectly learnable predicate can legitimately compose to zero
    // variance; the interval must stay consistent either way.
    assert!(cold.std_error >= 0.0);
    assert!(cold.lo <= cold.estimate && cold.estimate <= cold.hi);
    assert!(
        (cold.estimate - 1_500.0).abs() < 400.0,
        "estimate {} too far from truth 1500",
        cold.estimate
    );

    // A fresh request warm-starts from the stored sharded state and
    // spends only the per-shard stage-2 budgets.
    let warm = s.run(req(2, "x < 1500", 600, true));
    assert_eq!(warm.served, "warm");
    assert_eq!(warm.model_version, cold.model_version);
    assert!(
        warm.evals < cold.evals,
        "warm {} must resume cheaper than cold {}",
        warm.evals,
        cold.evals
    );
}

#[test]
fn sharded_responses_are_deterministic_per_config() {
    let run = || {
        let mut s = sharded_service(3_000, 4);
        let batch = vec![
            req(1, "x < 900", 500, false),
            req(2, "y < 600", 500, false),
            req(3, "x < 900", 500, true),
        ];
        s.run_batch(batch)
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(&b) {
        assert!(ra.ok);
        assert_eq!(bits(ra), bits(rb), "response {} diverged", ra.id);
        assert_eq!(ra.served, rb.served);
        assert_eq!(ra.model_version, rb.model_version);
    }
}

#[test]
fn shard_counts_change_the_layout_but_not_validity() {
    let mut one = sharded_service(3_000, 1);
    let mut four = sharded_service(3_000, 4);
    let a = one.run(req(1, "x < 1000", 500, false));
    let b = four.run(req(1, "x < 1000", 500, false));
    assert!(a.ok && b.ok);
    // Different layouts are different (salted) sample streams…
    assert_ne!(a.model_version, b.model_version);
    // …but both stay near the truth with sane intervals.
    for r in [&a, &b] {
        assert!((r.estimate - 1_000.0).abs() < 400.0);
        assert!(r.lo <= r.estimate && r.estimate <= r.hi);
    }
}

#[test]
fn sharded_store_export_roundtrips_at_zero_oracle_cost() {
    let mut s = sharded_service(3_000, 4);
    let cold = s.run(req(1, "x < 800", 500, false));
    assert_eq!(cold.served, "cold");
    let export = s.export_store();
    assert!(
        export.contains("\tlss@4\t"),
        "sharded states must export with a shard-count tag:\n{export}"
    );

    let mut restored = sharded_service(3_000, 4);
    let n = restored.import_store(&export).unwrap();
    assert_eq!(n, 1);
    assert_eq!(restored.stats().oracle_evals, 0, "restore must be free");

    // The restored state serves warm with the same model version.
    let warm = restored.run(req(9, "x < 800", 500, true));
    assert_eq!(warm.served, "warm");
    assert_eq!(warm.model_version, cold.model_version);
}

#[test]
fn malformed_shard_tags_are_rejected_on_import() {
    let mut s = sharded_service(1_000, 2);
    for tag in ["lss@0", "lss@x", "nope@4"] {
        let text = format!("lts-store/v1\nentry\td\t200\t7\t0\t{tag}\tx %3c 100\t\n");
        assert!(
            s.import_store(&text).is_err(),
            "tag `{tag}` must be rejected"
        );
    }
}
