//! Graceful-shutdown battery: a `shutdown` arriving mid-batch lets
//! in-flight requests complete with valid responses, answers
//! queued-but-unadmitted requests with a `shutting_down` error, closes
//! the listener, and (for the `lts-served` binary) exits 0 — also on
//! SIGTERM.

mod net_common;

use lts_serve::{NetConfig, NetServer, ReplOptions};
use net_common::{field_u64, Client};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn deterministic_config() -> NetConfig {
    NetConfig {
        repl: ReplOptions {
            deterministic: true,
        },
        ..NetConfig::default()
    }
}

#[test]
fn shutdown_mid_batch_drains_inflight_and_refuses_queued() {
    let server = NetServer::bind("127.0.0.1:0", deterministic_config()).expect("bind");
    let addr = server.local_addr();

    let mut a = Client::connect(addr);
    // A second connection that is idle while shutdown happens; any
    // request it sends afterwards must be refused or see a closed
    // socket — never hang.
    let mut b = Client::connect(addr);

    let resp = a.roundtrip("register sports s rows=800 level=M seed=3");
    assert!(resp.contains("\"registered\""), "{resp}");

    // Pipeline a burst: 10 counts, then `shutdown`, then 5 more counts,
    // all written before reading anything. The single reader thread
    // preserves submission order, so the 10 are admitted ahead of the
    // shutdown and must complete; the trailing 5 are past it.
    for i in 0..10 {
        a.send(&format!("count s budget=80 fresh id={i} :: wins > 10"));
    }
    a.send("shutdown");
    for i in 10..15 {
        a.send(&format!("count s budget=80 fresh id={i} :: wins > 10"));
    }

    for i in 0..10 {
        let resp = a.recv().expect("in-flight request must be answered");
        assert!(
            resp.contains("\"ok\": true"),
            "in-flight request {i} must complete with a valid response: {resp}"
        );
        assert_eq!(field_u64(&resp, "id"), Some(i));
    }
    let ack = a.recv().expect("shutdown must be acknowledged");
    assert!(ack.contains("\"shutting_down\": true"), "{ack}");

    // Everything after the ack is either a structured refusal or a
    // clean EOF once the flushed responses run out.
    a.set_read_timeout(Duration::from_secs(10));
    let mut refused = 0;
    while let Some(resp) = a.recv() {
        assert!(
            resp.contains("shutting_down"),
            "post-shutdown requests must be refused, not served: {resp}"
        );
        refused += 1;
    }
    assert!(refused <= 5, "at most the 5 trailing requests reply");

    // The idle connection: a request now is refused or the socket is
    // already closed. Tolerate a send error (server may have FINed).
    b.set_read_timeout(Duration::from_secs(10));
    let _ = writeln!(b.stream, "count s budget=80 id=99 :: wins > 10");
    if let Some(resp) = b.recv() {
        assert!(resp.contains("shutting_down"), "{resp}");
    }

    // The server drains and joins without a wedged worker, and the
    // listener is closed: fresh connections are refused.
    server.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after shutdown"
    );
}

#[test]
fn shutdown_via_server_handle_unblocks_idle_clients() {
    let server = NetServer::bind("127.0.0.1:0", deterministic_config()).expect("bind");
    let addr = server.local_addr();
    let mut c = Client::connect(addr);
    let resp = c.roundtrip("register sports s rows=400 level=M seed=3");
    assert!(resp.contains("\"registered\""), "{resp}");

    // Shutdown initiated out-of-band (the SIGTERM path) while a client
    // sits idle mid-session: the client sees EOF, not a hang.
    server.shutdown();
    server.join();
    c.set_read_timeout(Duration::from_secs(10));
    assert_eq!(c.recv(), None, "idle client must observe a clean close");
}

/// End-to-end on the real binary: SIGTERM drains and exits 0.
#[cfg(unix)]
#[test]
fn lts_served_binary_exits_zero_on_sigterm() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_lts-served"))
        .args(["--addr", "127.0.0.1:0", "--deterministic"])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lts-served");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let banner = lines
        .next()
        .expect("server banner")
        .expect("read server banner");
    let addr = banner
        .rsplit("listening on ")
        .next()
        .expect("banner names the bound address")
        .trim()
        .to_string();

    let mut c = Client::connect(addr.parse().expect("bound address"));
    let resp = c.roundtrip("register sports s rows=400 level=M seed=3");
    assert!(resp.contains("\"registered\""), "{resp}");
    let resp = c.roundtrip("count s budget=80 id=0 :: wins > 10");
    assert!(resp.contains("\"ok\": true"), "{resp}");

    let kill = Command::new("sh")
        .arg("-c")
        .arg(format!("kill -TERM {}", child.id()))
        .status()
        .expect("run kill");
    assert!(kill.success(), "kill -TERM must succeed");

    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("lts-served did not exit within 30s of SIGTERM");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "lts-served must exit 0, got {status:?}");
    c.set_read_timeout(Duration::from_secs(10));
    assert_eq!(c.recv(), None, "client sees a clean close at exit");
}
