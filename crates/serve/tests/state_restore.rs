//! Durable warm state: restore = bit-identical replay.
//!
//! * A snapshot saved by one service and loaded into a fresh one must
//!   answer the first repeat request from the restored result cache —
//!   **zero oracle evaluations, byte-identical response** — and replay
//!   `fresh` requests bit-identically from the restored model store.
//! * A version-mismatched, torn, or corrupted snapshot yields a
//!   structured error and a clean cold start — never a panic, never a
//!   silently different count.
//! * The TCP server (`--state-dir`) round-trips the same contract
//!   across a real restart.

mod net_common;

use lts_serve::state;
use lts_serve::{
    DatasetSpec, NetConfig, NetServer, ReplOptions, Request, Response, Service, ServiceConfig,
    StateError, Target,
};
use net_common::Client;
use std::fs;
use std::path::PathBuf;

const PLAIN: &str = "strikeouts < 120";
const DECOMPOSED: &str = "strikeouts < 150 AND (SELECT COUNT(*) FROM s WHERE wins >= o.wins) < 300";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lts_state_restore_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec() -> DatasetSpec {
    DatasetSpec {
        kind: "sports".to_string(),
        rows: 600,
        level: "M".to_string(),
        seed: 3,
    }
}

fn count(svc: &mut Service, id: u64, condition: &str, fresh: bool) -> Response {
    let r = svc.run(Request {
        id,
        dataset: "s".to_string(),
        condition: condition.to_string(),
        target: Target::Budget(150),
        fresh,
    });
    assert!(r.ok, "request failed: {:?}", r.error);
    r
}

fn assert_bits_equal(a: &Response, b: &Response, what: &str) {
    assert_eq!(
        a.estimate.to_bits(),
        b.estimate.to_bits(),
        "{what}: estimate"
    );
    assert_eq!(
        a.std_error.to_bits(),
        b.std_error.to_bits(),
        "{what}: std_error"
    );
    assert_eq!(a.lo.to_bits(), b.lo.to_bits(), "{what}: lo");
    assert_eq!(a.hi.to_bits(), b.hi.to_bits(), "{what}: hi");
    assert_eq!(a.level.to_bits(), b.level.to_bits(), "{what}: level");
    assert_eq!(a.route, b.route, "{what}: route");
    assert_eq!(a.model_version, b.model_version, "{what}: model_version");
    assert_eq!(a.table_version, b.table_version, "{what}: table_version");
}

#[test]
fn snapshot_roundtrip_replays_bit_identically() {
    let dir = temp_dir("roundtrip");

    // Service A: cold-start two queries (one of which decomposes into
    // prefilter + residual, exercising the `+pf` store lineage), cache
    // their results, and take one `fresh` warm replay as a reference.
    let mut a = Service::new(ServiceConfig::default());
    a.register_generated("s", &spec()).unwrap();
    let a_cold_plain = count(&mut a, 0, PLAIN, false);
    assert_eq!(a_cold_plain.served, "cold");
    let a_cold_decomp = count(&mut a, 1, DECOMPOSED, false);
    let a_cached_plain = count(&mut a, 2, PLAIN, false);
    assert_eq!(a_cached_plain.served, "cached");
    let a_fresh = count(&mut a, 42, PLAIN, true);
    assert_eq!(a_fresh.served, "warm");
    let saved_to = state::save(&a, &dir).unwrap();
    assert!(saved_to.ends_with(lts_serve::STATE_FILE));

    // Service B: load the snapshot and serve.
    let mut b = Service::new(ServiceConfig::default());
    let summary = state::load(&mut b, &dir)
        .unwrap()
        .expect("snapshot present");
    assert_eq!(summary.datasets, 1);
    assert!(summary.models >= 2, "both queries' warm states restored");
    assert!(summary.cached >= 2, "both cached results restored");
    assert_eq!(b.dataset_version("s"), a.dataset_version("s"));

    // First repeat request: answered from the restored cache — zero
    // oracle evaluations, bit-identical to the pre-restart response.
    let b_first = count(&mut b, 100, PLAIN, false);
    assert_eq!(b_first.served, "cached");
    assert_eq!(b_first.evals, 0);
    assert_eq!(b.stats().oracle_evals, 0, "warm-from-first-request");
    assert_bits_equal(&b_first, &a_cached_plain, "restored cached (plain)");

    let b_decomp = count(&mut b, 101, DECOMPOSED, false);
    assert_eq!(b_decomp.served, "cached");
    assert_eq!(b_decomp.evals, 0);
    assert_bits_equal(&b_decomp, &a_cold_decomp, "restored cached (decomposed)");

    // `fresh` replay: the restored model store reproduces the exact
    // warm estimate (same per-id seed stream, same state digest).
    let b_fresh = count(&mut b, 42, PLAIN, true);
    assert_eq!(b_fresh.served, "warm");
    assert_eq!(b_fresh.evals, a_fresh.evals, "stage-2-only budget");
    assert_bits_equal(&b_fresh, &a_fresh, "fresh warm replay");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_snapshot_is_a_normal_cold_start() {
    let dir = temp_dir("missing");
    let mut svc = Service::new(ServiceConfig::default());
    assert!(state::load(&mut svc, &dir).unwrap().is_none());
    // The service is untouched and serves normally.
    svc.register_generated("s", &spec()).unwrap();
    assert_eq!(count(&mut svc, 0, PLAIN, false).served, "cold");
}

#[test]
fn corrupt_snapshots_error_structurally_and_cold_start_cleanly() {
    let dir = temp_dir("corrupt");

    // Reference: the response a pure cold start produces.
    let mut reference = Service::new(ServiceConfig::default());
    reference.register_generated("s", &spec()).unwrap();
    let ref_cold = count(&mut reference, 0, PLAIN, false);
    state::save(&reference, &dir).unwrap();
    let path = dir.join(lts_serve::STATE_FILE);
    let good = fs::read_to_string(&path).unwrap();

    // (a) Version-mismatched snapshot: future header, valid checksum.
    let body = good
        .replacen("lts-state/v1", "lts-state/v2", 1)
        .lines()
        .filter(|l| !l.starts_with("checksum\t"))
        .map(|l| format!("{l}\n"))
        .collect::<String>();
    let reseal = format!(
        "{body}checksum\t{:016x}\n",
        lts_core::fnv1a(body.as_bytes())
    );
    fs::write(&path, reseal).unwrap();
    let mut svc = Service::new(ServiceConfig::default());
    assert!(matches!(
        state::load(&mut svc, &dir),
        Err(StateError::BadVersion { found }) if found == "lts-state/v2"
    ));

    // (b) Torn write: the file ends mid-line, before the trailer.
    fs::write(&path, &good[..good.len() / 2]).unwrap();
    let mut svc = Service::new(ServiceConfig::default());
    let torn = state::load(&mut svc, &dir);
    assert!(
        matches!(
            torn,
            Err(StateError::Corrupt { .. } | StateError::ChecksumMismatch)
        ),
        "torn snapshot must surface structurally: {torn:?}"
    );

    // (c) One flipped payload byte under the stale checksum.
    let flipped = good.replacen("sports", "sporks", 1);
    assert_ne!(flipped, good, "fixture must actually flip a byte");
    fs::write(&path, flipped).unwrap();
    let mut svc = Service::new(ServiceConfig::default());
    assert!(matches!(
        state::load(&mut svc, &dir),
        Err(StateError::ChecksumMismatch)
    ));

    // After every rejected restore: a clean cold start serves the same
    // bits as a never-snapshotted service — corruption can delay
    // warmth, never change a count.
    let mut cold = Service::new(ServiceConfig::default());
    cold.register_generated("s", &spec()).unwrap();
    let cold_resp = count(&mut cold, 0, PLAIN, false);
    assert_eq!(cold_resp.served, "cold");
    assert_bits_equal(&cold_resp, &ref_cold, "cold start after rejected restore");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn tcp_restart_serves_first_warm_request_bit_identically() {
    let dir = temp_dir("tcp");
    let config = NetConfig {
        repl: ReplOptions {
            deterministic: true,
        },
        state_dir: Some(dir.clone()),
        ..NetConfig::default()
    };

    // Run 1: register, cold count, cached repeat; graceful shutdown
    // writes the snapshot.
    let server = NetServer::bind("127.0.0.1:0", config.clone()).expect("bind");
    let golden_cached = {
        let mut c = Client::connect(server.local_addr());
        let resp = c.roundtrip("register sports s rows=600 level=M seed=3");
        assert!(resp.contains("\"registered\""), "{resp}");
        let cold = c.roundtrip(&format!("count s budget=150 id=7 :: {PLAIN}"));
        assert!(cold.contains("\"served\": \"cold\""), "{cold}");
        let cached = c.roundtrip(&format!("count s budget=150 id=7 :: {PLAIN}"));
        assert!(cached.contains("\"served\": \"cached\""), "{cached}");
        let ack = c.roundtrip("shutdown");
        assert!(ack.contains("\"shutting_down\": true"), "{ack}");
        cached
    };
    server.join();
    assert!(
        dir.join(lts_serve::STATE_FILE).is_file(),
        "snapshot written"
    );

    // Run 2: a NEW server process-equivalent on the same state dir.
    // Its very first request — no register, no warm-up — must be the
    // byte-identical cached response, at zero oracle cost.
    let server = NetServer::bind("127.0.0.1:0", config).expect("bind restarted");
    {
        let mut c = Client::connect(server.local_addr());
        let first = c.roundtrip(&format!("count s budget=150 id=7 :: {PLAIN}"));
        assert_eq!(first, golden_cached, "restart must replay the exact bytes");
        assert!(first.contains("\"evals\": 0"), "{first}");
        let stats = c.roundtrip("stats");
        assert!(
            stats.contains("\"oracle_evals\": 0,"),
            "zero oracle evaluations across the whole restarted run: {stats}"
        );
        let ack = c.roundtrip("shutdown");
        assert!(ack.contains("\"shutting_down\": true"), "{ack}");
    }
    server.join();

    let _ = fs::remove_dir_all(&dir);
}
