//! Trace-span goldens: with `ServiceConfig::trace` on, the scripted
//! session — responses with embedded trace spans, `trace <id>` ring
//! lookups, the masked `metrics` exposition, and the `slow` log — must
//! reproduce its golden transcript byte-for-byte.
//!
//! Two goldens pin both execution shapes: the monolithic single-shard
//! service and a 4-shard fan-out (whose spans carry `ShardFanout` /
//! `Shard` events instead of phase events). Deterministic mode masks
//! every `wall_*` field; all remaining fields are pure functions of
//! (seed, dataset version, canonical query, budget, id), so each
//! transcript is identical at any `RAYON_NUM_THREADS` (CI runs this
//! test under 1 worker and default workers) and on any host.
//!
//! Regenerate after an intentional trace-format change with
//! `UPDATE_GOLDENS=1 cargo test -p lts-serve --test trace_golden`.

use lts_serve::{run_repl, ReplOptions, ServiceConfig};

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

fn run_script(config: ServiceConfig) -> String {
    let script = include_str!("data/trace_requests.txt");
    let mut out = Vec::new();
    run_repl(
        config,
        ReplOptions {
            deterministic: true,
        },
        script.as_bytes(),
        &mut out,
    )
    .unwrap();
    String::from_utf8(out).unwrap()
}

fn check(golden_file: &str, got: &str) {
    let path = golden_path(golden_file);
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::write(&path, got).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap();
    if got != golden {
        for (i, (g, w)) in golden.lines().zip(got.lines()).enumerate() {
            if g != w {
                panic!(
                    "{golden_file} diverges at line {}:\n golden: {g}\n    got: {w}",
                    i + 1
                );
            }
        }
        panic!(
            "{golden_file} length mismatch: golden {} lines, got {}",
            golden.lines().count(),
            got.lines().count()
        );
    }
}

#[test]
fn traced_session_matches_golden_transcript() {
    let config = ServiceConfig {
        trace: true,
        ..ServiceConfig::default()
    };
    check("trace_responses.golden", &run_script(config));
}

#[test]
fn traced_sharded_session_matches_golden_transcript() {
    let config = ServiceConfig {
        trace: true,
        shards: 4,
        ..ServiceConfig::default()
    };
    check("trace_responses_s4.golden", &run_script(config));
}
