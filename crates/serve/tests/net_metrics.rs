//! The live metrics/trace surface over TCP:
//!
//! * the `--metrics-addr` Prometheus scrape endpoint serves the text
//!   exposition over plain HTTP, straight from the shared registry;
//! * **fault injection**: scrapers that stall silently, disconnect
//!   mid-request, or vanish before reading the response never wedge
//!   the dispatcher — the scrape path does not touch it by
//!   construction, and this battery proves the claim under abuse;
//! * a 16-client scripted session produces **byte-identical**
//!   `metrics`, `trace`, and `slow` lines across two independent
//!   server instances *and* the single-client REPL run of the same
//!   session — the deterministic fields of the telemetry surface are
//!   pure functions of the workload, not of client interleaving (CI
//!   additionally runs this binary under `RAYON_NUM_THREADS=1` and
//!   default threads).

mod net_common;

use lts_serve::{run_repl, NetConfig, NetServer, ReplOptions, ServiceConfig};
use net_common::Client;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn bind_with_metrics() -> NetServer {
    NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            repl: ReplOptions {
                deterministic: true,
            },
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..NetConfig::default()
        },
    )
    .expect("bind")
}

/// One well-behaved scrape: GET, read to EOF, split off the body.
fn scrape(addr: SocketAddr) -> String {
    let mut s = TcpStream::connect(addr).expect("connect scrape");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read exposition");
    let (head, body) = raw.split_once("\r\n\r\n").expect("http header split");
    assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
    assert!(head.contains("Content-Type: text/plain"), "{head}");
    body.to_string()
}

#[test]
fn scrape_endpoint_serves_the_exposition() {
    let server = bind_with_metrics();
    let maddr = server.metrics_addr().expect("metrics endpoint bound");

    let mut c = Client::connect(server.local_addr());
    let resp = c.roundtrip("register sports s rows=1200 level=M seed=3");
    assert!(resp.contains("\"registered\""), "{resp}");
    let resp = c.roundtrip("count s budget=150 :: strikeouts < 120");
    assert!(resp.contains("\"served\": \"cold\""), "{resp}");

    let body = scrape(maddr);
    assert!(
        body.contains("# TYPE requests_total counter"),
        "missing TYPE line:\n{body}"
    );
    assert!(body.contains("requests_total 1"), "{body}");
    assert!(body.contains("served_cold 1"), "{body}");
    assert!(
        body.contains("request_evals_bucket"),
        "histogram missing:\n{body}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn hostile_scrapers_never_wedge_the_dispatcher() {
    let server = bind_with_metrics();
    let addr = server.local_addr();
    let maddr = server.metrics_addr().expect("metrics endpoint bound");

    let mut c = Client::connect(addr);
    c.set_read_timeout(Duration::from_secs(10));
    let resp = c.roundtrip("register sports s rows=1200 level=M seed=3");
    assert!(resp.contains("\"registered\""), "{resp}");

    // A stalled scraper: connects, sends nothing, stays open for the
    // whole test. The scrape thread it occupies times out on its own;
    // nothing else should notice.
    let stalled = TcpStream::connect(maddr).expect("stalled connect");

    // Mid-scrape disconnects, in volume: partial request then an
    // immediate hard close; full request with the read side slammed
    // shut before the response can be written.
    for i in 0..20 {
        let mut s = TcpStream::connect(maddr).expect("abusive connect");
        if i % 2 == 0 {
            let _ = s.write_all(b"GET /met");
        } else {
            let _ = s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
        }
        let _ = s.shutdown(Shutdown::Both);
        drop(s);

        // The dispatcher keeps answering between every abuse round.
        let resp = c.roundtrip(&format!(
            "count s budget=150 fresh id={i} :: strikeouts < 120"
        ));
        assert!(resp.contains("\"ok\": true"), "{resp}");
    }

    // A well-behaved scrape still works after the abuse.
    let body = scrape(maddr);
    assert!(body.contains("requests_total"), "{body}");

    drop(stalled);
    server.shutdown();
    server.join();
}

// ------------------------------------------------------- 16 clients

const SETUP: [&str; 3] = [
    "register sports s rows=1200 level=M seed=3",
    "count s budget=150 id=1000 :: strikeouts < 120",
    "count s budget=150 id=1001 :: wins > 10 AND strikeouts < 150",
];

/// Every client sends the identical fresh-count script: fresh requests
/// never coalesce and their responses are pure functions of (seed,
/// dataset version, canonical query, budget, id), so 16 interleaved
/// copies are 16 bit-identical executions.
const BODY: [&str; 2] = [
    "count s budget=150 fresh id=5 :: strikeouts < 120",
    "count s budget=150 fresh id=6 :: wins > 10 AND strikeouts < 150",
];

const PROBES: [&str; 4] = ["metrics", "trace 5", "trace 1000", "slow 8"];

/// Drive one server instance with 16 concurrent clients and return
/// the telemetry probe lines observed afterwards.
fn run_16_clients() -> Vec<String> {
    const CLIENTS: usize = 16;
    let server = bind_with_metrics();
    let addr = server.local_addr();

    let mut c0 = Client::connect(addr);
    for line in SETUP {
        let resp = c0.roundtrip(line);
        assert!(
            resp.contains("\"ok\": true") || resp.contains("\"registered\""),
            "{resp}"
        );
    }

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                barrier.wait();
                BODY.iter()
                    .map(|line| client.roundtrip(line))
                    .collect::<Vec<String>>()
            })
        })
        .collect();
    let mut responses: Vec<Vec<String>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    // All 16 clients must have seen bit-identical response pairs.
    responses.dedup();
    assert_eq!(
        responses.len(),
        1,
        "fresh responses diverged across clients"
    );

    let probes: Vec<String> = PROBES.iter().map(|p| c0.roundtrip(p)).collect();

    // The HTTP exposition and the line-protocol `metrics prom` carry
    // the same masked text (the scrape endpoint masks under the same
    // deterministic flag the server was started with).
    let scraped = scrape(server.metrics_addr().unwrap());
    assert!(scraped.contains("served_warm 32"), "{scraped}");

    server.shutdown();
    server.join();
    probes
}

#[test]
fn sixteen_client_telemetry_is_deterministic() {
    // Two independent server instances, arbitrary interleaving each.
    let a = run_16_clients();
    let b = run_16_clients();
    assert_eq!(a, b, "telemetry diverged across server instances");

    // And the single-client REPL run of the same logical session is
    // the golden source: 16 interleaved copies of a fresh request cost
    // exactly 16× one copy, in every deterministic counter.
    let script: String = SETUP
        .iter()
        .map(|l| l.to_string())
        .chain((0..16).flat_map(|_| BODY.iter().map(|l| l.to_string())))
        .chain(PROBES.iter().map(|l| l.to_string()))
        .map(|l| l + "\n")
        .collect();
    let mut out = Vec::new();
    run_repl(
        ServiceConfig::default(),
        ReplOptions {
            deterministic: true,
        },
        script.as_bytes(),
        &mut out,
    )
    .unwrap();
    let transcript = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = transcript.lines().collect();
    let repl_probes: Vec<String> = lines[lines.len() - PROBES.len()..]
        .iter()
        .map(|l| l.to_string())
        .collect();
    assert_eq!(a, repl_probes, "TCP telemetry diverged from the REPL run");
}
