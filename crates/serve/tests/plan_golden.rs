//! End-to-end smoke of the query-planning layer: the scripted REPL
//! session must reproduce its golden transcript byte-for-byte.
//!
//! The script (`tests/data/plan_requests.txt`) covers `explain` before
//! and after a prefilter scan (predicted vs observed selectivity), a
//! prefilter+estimate cold start, result-cache aliasing of a commuted
//! spelling, a fresh warm resume of the restricted residual state, an
//! exact-prefilter census, the zero-survivor plan, the monolithic
//! fallback for an unselective prefilter, an undecomposed `explain`,
//! and the re-cold after invalidation. Deterministic mode zeroes wall
//! times; every other field is a pure function of the seed, so the
//! transcript is identical at any `RAYON_NUM_THREADS` (CI runs the
//! serve tests under 1 worker and default workers) and on any host.
//! The CI workflow also pipes the same script through the actual
//! `lts-serve` binary and diffs against the same golden.

use lts_serve::{run_repl, ReplOptions, ServiceConfig};

#[test]
fn scripted_plan_session_matches_golden_transcript() {
    let script = include_str!("data/plan_requests.txt");
    let golden = include_str!("data/plan_responses.golden");
    let mut out = Vec::new();
    run_repl(
        ServiceConfig::default(),
        ReplOptions {
            deterministic: true,
        },
        script.as_bytes(),
        &mut out,
    )
    .unwrap();
    let got = String::from_utf8(out).unwrap();
    if got != golden {
        for (i, (g, w)) in golden.lines().zip(got.lines()).enumerate() {
            if g != w {
                panic!(
                    "transcript diverges at line {}:\n golden: {g}\n    got: {w}",
                    i + 1
                );
            }
        }
        panic!(
            "transcript length mismatch: golden {} lines, got {}",
            golden.lines().count(),
            got.lines().count()
        );
    }
}
