//! Shared TCP-client helper for the net test battery.

// Each test binary compiles this module independently and uses a
// different subset of the helpers.
#![allow(dead_code)]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A line-protocol client over one TCP connection.
pub struct Client {
    pub stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    pub fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send request line");
    }

    /// Next response line, or `None` on EOF / connection reset.
    pub fn recv(&mut self) -> Option<String> {
        let mut s = String::new();
        match self.reader.read_line(&mut s) {
            Ok(0) | Err(_) => None,
            Ok(_) => Some(s.trim_end().to_string()),
        }
    }

    pub fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
            .unwrap_or_else(|| panic!("no response to `{line}`"))
    }

    pub fn set_read_timeout(&mut self, d: Duration) {
        self.stream.set_read_timeout(Some(d)).expect("read timeout");
    }
}

/// Extract an integer JSON field (`"key": 123`) from a response line.
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}
