//! Counter-silo reconciliation: the metrics registry, the service's
//! own `ServiceStats`, and the per-response `evals` fields are three
//! independently-maintained views of the same work. This battery pins
//! the drift invariants between them:
//!
//! * the registry mirrors `ServiceStats` exactly (requests, errors,
//!   route counters, oracle evaluations);
//! * `oracle_evals_total` equals the sum of `evals` over *executed*
//!   responses (cache hits and followers spend nothing);
//! * the per-phase eval counters **partition** the total: every oracle
//!   evaluation is attributed to exactly one of train / score / pilot
//!   / design / stage2 / exact / srs / sharded;
//! * `spent + saved == cold-equivalent`: what a warm or cached answer
//!   avoided is exactly what a cold start of the same request costs on
//!   a fresh service.

use lts_serve::{Request, Service, ServiceConfig, Target};
use lts_table::table_of_floats;
use std::sync::Arc;

fn linear_table(n: usize) -> Arc<lts_table::Table> {
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i * 37) % n) as f64).collect();
    Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap())
}

fn service_with(config: ServiceConfig, n: usize) -> Service {
    let mut s = Service::new(config);
    s.register_dataset("d", linear_table(n), &["x", "y"])
        .unwrap();
    s
}

fn req(id: u64, condition: &str, budget: usize, fresh: bool) -> Request {
    Request {
        id,
        dataset: "d".into(),
        condition: condition.into(),
        target: Target::Budget(budget),
        fresh,
    }
}

fn counter(s: &Service, name: &str) -> u64 {
    s.observability()
        .registry
        .snapshot()
        .value(name)
        .unwrap_or(0)
}

/// The phase counters must partition `oracle_evals_total`.
fn phase_partition_total(s: &Service) -> u64 {
    [
        "evals_train",
        "evals_score",
        "evals_pilot",
        "evals_design",
        "evals_stage2",
        "evals_exact",
        "evals_srs",
        "evals_sharded",
    ]
    .iter()
    .map(|n| counter(s, n))
    .sum()
}

#[test]
fn registry_mirrors_stats_and_phases_partition_the_total() {
    let mut s = service_with(ServiceConfig::default(), 5_000);
    // A mixed workload: cold estimate, cache hit, fresh warm resume, a
    // second distinct query, an exact census (tiny population after
    // the prefilter is not needed — small budget vs n decides), and an
    // error.
    let responses = [
        s.run(req(1, "x < 2000", 300, false)), // cold
        s.run(req(2, "x < 2000", 300, false)), // cached
        s.run(req(3, "x < 2000", 300, true)),  // fresh → warm resume
        s.run(req(4, "y < 1000", 300, false)), // cold, second key
        s.run(req(5, "x < 2000", 300, true)),  // fresh again → warm
        s.run(req(6, "x <", 300, false)),      // parse error
    ];
    let stats = s.stats();

    // Route bookkeeping agrees between the response stream and stats.
    let served: Vec<&str> = responses.iter().map(|r| r.served).collect();
    assert_eq!(served[0], "cold");
    assert_eq!(served[1], "cached");
    assert_eq!(served[2], "warm");
    assert_eq!(served[3], "cold");
    assert_eq!(served[4], "warm");
    assert!(!responses[5].ok);

    // Silo 1 vs silo 2: the registry mirrors ServiceStats exactly.
    assert_eq!(counter(&s, "requests_total"), stats.requests);
    assert_eq!(counter(&s, "requests_rejected"), stats.rejected);
    assert_eq!(counter(&s, "requests_errors"), stats.errors);
    assert_eq!(counter(&s, "served_exact"), stats.exact);
    assert_eq!(counter(&s, "served_cold"), stats.cold);
    assert_eq!(counter(&s, "served_warm"), stats.warm);
    assert_eq!(counter(&s, "served_cached"), stats.cached);
    assert_eq!(counter(&s, "oracle_evals_total"), stats.oracle_evals);
    // `ServiceStats` only tracks cache savings; the registry splits
    // out the additional warm-resume savings (skipped re-prepares).
    assert_eq!(
        counter(&s, "oracle_evals_saved_cache"),
        stats.oracle_evals_saved
    );
    assert!(counter(&s, "oracle_evals_saved_warm") > 0);

    // Silo 2 vs silo 3: stats total == sum of executed responses'
    // evals (the cached hit's evals echo the original cost but were
    // not re-spent).
    let executed_evals: u64 = responses
        .iter()
        .filter(|r| r.ok && r.served != "cached")
        .map(|r| r.evals as u64)
        .sum();
    assert_eq!(stats.oracle_evals, executed_evals);

    // Phase attribution partitions the total: nothing double-counted,
    // nothing dropped.
    assert_eq!(phase_partition_total(&s), stats.oracle_evals);
    // Unsharded, no fallback: the sharded/srs buckets must be empty.
    assert_eq!(counter(&s, "evals_sharded"), 0);
    assert_eq!(counter(&s, "evals_srs"), 0);

    // Store/cache counters line up with the store itself (silo 4).
    assert_eq!(counter(&s, "store_prepares"), stats.cold);
    assert_eq!(counter(&s, "store_resumes"), stats.warm);
    assert_eq!(counter(&s, "cache_hits"), stats.cached);
    assert_eq!(counter(&s, "store_entries"), s.store_len() as u64);
    assert_eq!(counter(&s, "cache_entries"), s.cache_len() as u64);
}

#[test]
fn exact_and_sharded_routes_fill_their_partition_buckets() {
    // Census route: a population small enough that exact wins.
    let mut s = service_with(ServiceConfig::default(), 120);
    let r = s.run(req(1, "x < 60", 500, false));
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.served, "exact");
    assert_eq!(counter(&s, "evals_exact"), r.evals as u64);
    assert_eq!(phase_partition_total(&s), counter(&s, "oracle_evals_total"));

    // Sharded service: estimate evals land in `evals_sharded`.
    let mut s = service_with(
        ServiceConfig {
            shards: 4,
            ..ServiceConfig::default()
        },
        5_000,
    );
    let r = s.run(req(1, "x < 2000", 300, false));
    assert!(r.ok, "{:?}", r.error);
    assert_eq!(r.served, "cold");
    assert!(counter(&s, "evals_sharded") > 0);
    assert_eq!(phase_partition_total(&s), counter(&s, "oracle_evals_total"));
}

#[test]
fn spent_plus_saved_equals_cold_equivalent() {
    let config = ServiceConfig::default();

    // Workload on service A: cold, cached repeat, fresh warm resume.
    let mut a = service_with(config, 5_000);
    let cold = a.run(req(1, "x < 2000", 300, false));
    let cached = a.run(req(2, "x < 2000", 300, false));
    let warm = a.run(req(3, "x < 2000", 300, true));
    assert_eq!(
        (cold.served, cached.served, warm.served),
        ("cold", "cached", "warm")
    );

    // Cold-equivalents on fresh services with the same seed: the
    // cacheable repeat replays the leader's seed stream, and the fresh
    // request cold-starts into prepare + its own stage 2.
    let mut b = service_with(config, 5_000);
    let cold_equiv_fresh = b.run(req(3, "x < 2000", 300, true));
    assert_eq!(cold_equiv_fresh.served, "cold");

    let spent = counter(&a, "oracle_evals_total");
    let saved = counter(&a, "oracle_evals_saved_cache") + counter(&a, "oracle_evals_saved_warm");
    let cold_equivalent = cold.evals as u64 + cold.evals as u64 + cold_equiv_fresh.evals as u64;
    assert_eq!(
        spent + saved,
        cold_equivalent,
        "spent {spent} + saved {saved} must equal the all-cold cost"
    );

    // And the warm resume's estimate is bit-identical to its cold
    // equivalent (same request seed), only cheaper.
    assert_eq!(warm.estimate.to_bits(), cold_equiv_fresh.estimate.to_bits());
    assert!(warm.evals < cold_equiv_fresh.evals);
}
