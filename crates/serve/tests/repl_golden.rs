//! End-to-end smoke: the scripted REPL session must reproduce its
//! golden transcript byte-for-byte.
//!
//! The script (`tests/data/requests.txt`) covers registration, cold
//! start, cache hit, fresh warm start, a second query, the exact
//! census route, the paper's skyband subquery, invalidation, and the
//! stats counters. Deterministic mode zeroes wall times, and every
//! other field is a pure function of the seed — so the transcript is
//! identical at any `RAYON_NUM_THREADS` (CI runs this test under 1
//! worker and default workers) and on any host. The CI workflow also
//! pipes the same script through the actual `lts-serve` binary and
//! diffs against the same golden.

use lts_serve::{run_repl, ReplOptions, ServiceConfig};

#[test]
fn scripted_session_matches_golden_transcript() {
    let script = include_str!("data/requests.txt");
    let golden = include_str!("data/responses.golden");
    let mut out = Vec::new();
    run_repl(
        ServiceConfig::default(),
        ReplOptions {
            deterministic: true,
        },
        script.as_bytes(),
        &mut out,
    )
    .unwrap();
    let got = String::from_utf8(out).unwrap();
    if got != golden {
        for (i, (g, w)) in golden.lines().zip(got.lines()).enumerate() {
            if g != w {
                panic!(
                    "transcript diverges at line {}:\n golden: {g}\n    got: {w}",
                    i + 1
                );
            }
        }
        panic!(
            "transcript length mismatch: golden {} lines, got {}",
            golden.lines().count(),
            got.lines().count()
        );
    }
}
