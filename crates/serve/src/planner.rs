//! Budget planning and admission control.
//!
//! Every request states *what accuracy it wants* (a confidence-interval
//! halfwidth, relative or absolute) or *what it is willing to pay* (an
//! explicit labeling budget). The planner turns that into a route:
//!
//! * **Exact** — tiny populations (or targets so tight that sampling
//!   would label most of the population anyway) go straight to the
//!   brute-force scan: for `N` below the cutoff the census is cheaper
//!   than training a proxy, and its "interval" has zero width.
//! * **Estimate { budget }** — everything else gets the *cheapest*
//!   labeling budget whose worst-case SRS halfwidth meets the target.
//!   SRS with `p = ½` is the distribution-free upper bound on the
//!   halfwidth of every estimator in the suite (the learned estimators
//!   only tighten it), so a budget sized by the closed-form SRS bound
//!   is sufficient for the requested width, whichever estimator the
//!   service executes. After a run, [`BudgetPlanner::refine`] shrinks
//!   the budget toward the cheapest one the *achieved* width justifies
//!   (variance ∝ 1/n).
//!
//! The closed form (Wald with finite-population correction, `p = ½`):
//! `w = z·N/(2√n) · √((N−n)/(N−1))`, solved for `n`:
//! `n = aN/(N−1+a)` with `a = (zN/2w)²`.
//!
//! **Decomposed queries.** When a query splits into a cheap exact
//! prefilter and an expensive residual (`lts_table::decompose`), the
//! planner chooses among four routes ([`BudgetPlanner::choose`]): the
//! monolithic census, the monolithic estimate, an exact residual census
//! over the prefilter survivors, or a prefilter + estimate plan whose
//! budget is sized for the *restricted* population `M` — width targets
//! keep their full-population meaning (±1% of `N` stays ±1% of `N`),
//! which is why shrinking the population shrinks the budget so
//! sharply. Observed selectivities are recorded per canonical prefilter
//! in a [`SelectivityFeedback`] ledger and reused on the next plan.

use lts_core::CoreResult;
use std::collections::HashMap;

/// What a request asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// An explicit labeling budget (unique `q` evaluations).
    Budget(usize),
    /// A halfwidth target as a fraction of the population size
    /// (`0.01` = the interval must be within ±1% of `N`).
    RelWidth(f64),
    /// A halfwidth target in absolute count units.
    AbsWidth(f64),
}

/// Where a request is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Evaluate `q` on every object (census).
    Exact,
    /// Run an estimator under this labeling budget.
    Estimate {
        /// Unique-evaluation budget.
        budget: usize,
    },
}

/// Where a *decomposed* request is routed ([`BudgetPlanner::choose`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryRoute {
    /// The prefilter does not pay (unselective, absent, or disabled):
    /// one-stage plan over the full population.
    Monolithic(Route),
    /// Exact prefilter scan, then a residual **census** over the
    /// survivors (few enough that sampling cannot beat it, or none at
    /// all — the count is then exactly 0 at zero oracle cost).
    PrefilterExact,
    /// Exact prefilter scan, then an estimator over the survivors.
    PrefilterEstimate {
        /// Unique-evaluation budget for the restricted population.
        budget: usize,
    },
}

/// The admission-control budget planner.
#[derive(Debug, Clone, Copy)]
pub struct BudgetPlanner {
    /// Populations at or below this size route to the exact census.
    pub exact_cutoff: usize,
    /// Minimum budget handed to an estimator (a learned estimator
    /// cannot do anything useful with a handful of labels).
    pub min_budget: usize,
    /// When the planned budget exceeds this fraction of `N`, the census
    /// is the cheaper way to reach the target: route to exact.
    pub exact_fraction: f64,
    /// Confidence level the width targets refer to.
    pub level: f64,
    /// A prefilter keeping at least this fraction of the population is
    /// not worth a two-stage plan: route the query monolithically.
    /// `0.0` disables decomposition entirely (every query routes
    /// monolithically — the forced-monolithic baseline in benchmarks);
    /// values `> 1.0` always take the prefilter plan.
    pub monolithic_selectivity: f64,
}

impl Default for BudgetPlanner {
    fn default() -> Self {
        Self {
            exact_cutoff: 64,
            min_budget: 60,
            exact_fraction: 0.5,
            level: 0.95,
            monolithic_selectivity: 0.6,
        }
    }
}

impl BudgetPlanner {
    /// The smallest SRS sample size whose worst-case (`p = ½`) Wald
    /// halfwidth with finite-population correction meets
    /// `halfwidth_counts` on a population of `n_objects`.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive target or an invalid level.
    pub fn srs_budget_for_halfwidth(
        &self,
        n_objects: usize,
        halfwidth_counts: f64,
    ) -> CoreResult<usize> {
        if !halfwidth_counts.is_finite() || halfwidth_counts <= 0.0 {
            return Err(lts_core::CoreError::InvalidConfig {
                message: format!("halfwidth target must be positive, got {halfwidth_counts}"),
            });
        }
        if n_objects == 0 {
            return Err(lts_core::CoreError::InvalidConfig {
                message: "cannot size a sample for an empty population".into(),
            });
        }
        let z = lts_stats::z_critical(self.level).map_err(lts_core::CoreError::Stats)?;
        let nf = n_objects as f64;
        let a = (z * nf / (2.0 * halfwidth_counts)).powi(2);
        let n = (a * nf / (nf - 1.0 + a)).ceil() as usize;
        Ok(n.clamp(1, n_objects))
    }

    /// Route a request: census for small populations or near-census
    /// budgets, otherwise the cheapest sufficient budget.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed targets (non-positive widths,
    /// zero budgets).
    pub fn plan(&self, n_objects: usize, target: Target) -> CoreResult<Route> {
        if n_objects <= self.exact_cutoff {
            return Ok(Route::Exact);
        }
        let budget = match target {
            Target::Budget(b) => {
                if b == 0 {
                    return Err(lts_core::CoreError::InvalidConfig {
                        message: "explicit budget must be positive".into(),
                    });
                }
                b.min(n_objects)
            }
            Target::RelWidth(frac) => {
                if !(frac > 0.0 && frac < 1.0) {
                    return Err(lts_core::CoreError::InvalidConfig {
                        message: format!("relative width must be in (0, 1), got {frac}"),
                    });
                }
                self.srs_budget_for_halfwidth(n_objects, frac * n_objects as f64)?
            }
            Target::AbsWidth(w) => self.srs_budget_for_halfwidth(n_objects, w)?,
        };
        let budget = budget.max(self.min_budget).min(n_objects);
        if (budget as f64) >= self.exact_fraction * n_objects as f64 {
            return Ok(Route::Exact);
        }
        Ok(Route::Estimate { budget })
    }

    /// Route a decomposed request given the observed prefilter
    /// survivor count `M` (`survivors = None` means the query did not
    /// decompose). Width targets keep their full-population meaning:
    /// `RelWidth(f)` converts to an absolute halfwidth of `f·N` before
    /// the restricted budget is sized, so a planned estimate meets the
    /// same requested interval as the monolithic one.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed targets, exactly as
    /// [`BudgetPlanner::plan`] does.
    pub fn choose(
        &self,
        n_objects: usize,
        survivors: Option<usize>,
        target: Target,
    ) -> CoreResult<QueryRoute> {
        let Some(m) = survivors else {
            return Ok(QueryRoute::Monolithic(self.plan(n_objects, target)?));
        };
        if m as f64 >= self.monolithic_selectivity * n_objects as f64 {
            return Ok(QueryRoute::Monolithic(self.plan(n_objects, target)?));
        }
        if m == 0 {
            return Ok(QueryRoute::PrefilterExact);
        }
        let restricted_target = match target {
            Target::Budget(b) => Target::Budget(b),
            Target::RelWidth(frac) => {
                if !(frac > 0.0 && frac < 1.0) {
                    return Err(lts_core::CoreError::InvalidConfig {
                        message: format!("relative width must be in (0, 1), got {frac}"),
                    });
                }
                Target::AbsWidth(frac * n_objects as f64)
            }
            Target::AbsWidth(w) => Target::AbsWidth(w),
        };
        Ok(match self.plan(m, restricted_target)? {
            Route::Exact => QueryRoute::PrefilterExact,
            Route::Estimate { budget } => QueryRoute::PrefilterEstimate { budget },
        })
    }

    /// Shrink (or grow) a budget toward the cheapest one the *achieved*
    /// halfwidth justifies: sampling error scales as `1/√n`, so meeting
    /// `target_halfwidth` needs roughly
    /// `n · (achieved / target)²` labels. Clamped to
    /// `[min_budget, n_objects]`; routes to exact past the census
    /// threshold.
    pub fn refine(
        &self,
        previous_budget: usize,
        achieved_halfwidth: f64,
        target_halfwidth: f64,
        n_objects: usize,
    ) -> Route {
        let well_formed = |w: f64| w.is_finite() && w > 0.0;
        if !well_formed(achieved_halfwidth) || !well_formed(target_halfwidth) {
            return Route::Estimate {
                budget: previous_budget,
            };
        }
        let ratio = achieved_halfwidth / target_halfwidth;
        let budget = ((previous_budget as f64) * ratio * ratio).ceil() as usize;
        let budget = budget.clamp(self.min_budget, n_objects);
        if (budget as f64) >= self.exact_fraction * n_objects as f64 {
            Route::Exact
        } else {
            Route::Estimate { budget }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FeedbackEntry {
    survivors: usize,
    population: usize,
    table_version: u64,
}

/// Realized prefilter selectivities, keyed by `(dataset, canonical
/// prefilter)`, recorded after every exact prefilter scan and consulted
/// on the next plan: a prefilter already known to be unselective routes
/// monolithically without re-proving it. A recorded entry is only
/// trusted for the table version it was observed against — a version
/// bump drops it (the data changed; yesterday's selectivity is
/// evidence about nothing).
#[derive(Debug, Default)]
pub struct SelectivityFeedback {
    entries: HashMap<(String, String), FeedbackEntry>,
}

impl SelectivityFeedback {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded prefilters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record an observed scan: `survivors` of `population` rows passed
    /// the prefilter at `table_version`. Replaces any prior observation
    /// of the same prefilter (later scans are never less current).
    /// Empty populations are not recorded — there is no selectivity to
    /// learn from zero rows.
    pub fn record(
        &mut self,
        dataset: &str,
        prefilter_canonical: &str,
        table_version: u64,
        survivors: usize,
        population: usize,
    ) {
        if population == 0 {
            return;
        }
        self.entries.insert(
            (dataset.to_string(), prefilter_canonical.to_string()),
            FeedbackEntry {
                survivors,
                population,
                table_version,
            },
        );
    }

    /// Predicted selectivity of a prefilter, if observed against the
    /// *current* table version. Version mismatches return `None` — the
    /// caller re-scans (and re-records).
    pub fn predict(
        &self,
        dataset: &str,
        prefilter_canonical: &str,
        table_version: u64,
    ) -> Option<f64> {
        let e = self
            .entries
            .get(&(dataset.to_string(), prefilter_canonical.to_string()))?;
        (e.table_version == table_version).then(|| e.survivors as f64 / e.population as f64)
    }

    /// Drop every observation of a dataset (explicit invalidation),
    /// returning how many were dropped.
    pub fn invalidate_dataset(&mut self, dataset: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(d, _), _| d != dataset);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_populations_route_to_exact() {
        let p = BudgetPlanner::default();
        assert_eq!(p.plan(64, Target::Budget(10)).unwrap(), Route::Exact);
        // Just above the cutoff the min-budget floor still makes the
        // census the cheaper plan; with room to sample, it estimates.
        assert_eq!(p.plan(65, Target::Budget(10)).unwrap(), Route::Exact);
        assert!(matches!(
            p.plan(500, Target::Budget(100)).unwrap(),
            Route::Estimate { budget: 100 }
        ));
    }

    #[test]
    fn closed_form_matches_the_wald_width() {
        let p = BudgetPlanner::default();
        let n_pop = 10_000usize;
        for target in [50.0, 120.0, 400.0] {
            let n = p.srs_budget_for_halfwidth(n_pop, target).unwrap();
            let width = |m: usize| {
                let nf = n_pop as f64;
                let fpc = ((nf - m as f64) / (nf - 1.0)).sqrt();
                1.959_963_984_540_054 * nf * (0.25 / m as f64).sqrt() * fpc
            };
            assert!(width(n) <= target * 1.0001, "n={n} too small for {target}");
            assert!(
                n == 1 || width(n - 1) > target,
                "n={n} not minimal for {target}"
            );
        }
    }

    #[test]
    fn tight_targets_route_to_exact() {
        let p = BudgetPlanner::default();
        // ±0.1% of N needs a near-census sample: exact wins.
        assert_eq!(
            p.plan(2_000, Target::RelWidth(0.001)).unwrap(),
            Route::Exact
        );
        // A loose ±10% target stays an estimate.
        match p.plan(20_000, Target::RelWidth(0.1)).unwrap() {
            Route::Estimate { budget } => {
                assert!((60..1_000).contains(&budget), "budget {budget}")
            }
            other => panic!("expected estimate, got {other:?}"),
        }
    }

    #[test]
    fn explicit_budgets_pass_through_with_floors() {
        let p = BudgetPlanner::default();
        match p.plan(10_000, Target::Budget(5)).unwrap() {
            Route::Estimate { budget } => assert_eq!(budget, p.min_budget),
            other => panic!("{other:?}"),
        }
        match p.plan(10_000, Target::Budget(300)).unwrap() {
            Route::Estimate { budget } => assert_eq!(budget, 300),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.plan(10_000, Target::Budget(9_000)).unwrap(), Route::Exact);
    }

    #[test]
    fn refine_scales_quadratically() {
        let p = BudgetPlanner::default();
        // Achieved twice the target width → ~4× the budget.
        match p.refine(200, 100.0, 50.0, 100_000) {
            Route::Estimate { budget } => assert_eq!(budget, 800),
            other => panic!("{other:?}"),
        }
        // Achieved half the target → can shed ~¾ of the budget.
        match p.refine(200, 50.0, 100.0, 100_000) {
            Route::Estimate { budget } => assert_eq!(budget, p.min_budget.max(50)),
            other => panic!("{other:?}"),
        }
        // Absurd tightening escalates to the census.
        assert_eq!(p.refine(400, 500.0, 1.0, 1_000), Route::Exact);
    }

    #[test]
    fn choose_routes_by_survivor_count() {
        let p = BudgetPlanner::default();
        // Undecomposed → monolithic, bit-equal to plan().
        assert_eq!(
            p.choose(10_000, None, Target::Budget(300)).unwrap(),
            QueryRoute::Monolithic(p.plan(10_000, Target::Budget(300)).unwrap())
        );
        // Unselective prefilter (≥ 60% of N) → monolithic.
        assert_eq!(
            p.choose(10_000, Some(9_000), Target::Budget(300)).unwrap(),
            QueryRoute::Monolithic(Route::Estimate { budget: 300 })
        );
        // No survivors → exact plan answering 0 at zero oracle cost.
        assert_eq!(
            p.choose(10_000, Some(0), Target::Budget(300)).unwrap(),
            QueryRoute::PrefilterExact
        );
        // A handful of survivors → residual census.
        assert_eq!(
            p.choose(10_000, Some(40), Target::Budget(300)).unwrap(),
            QueryRoute::PrefilterExact
        );
        // A selective prefilter with room to sample → restricted
        // estimate.
        assert_eq!(
            p.choose(10_000, Some(2_000), Target::Budget(300)).unwrap(),
            QueryRoute::PrefilterEstimate { budget: 300 }
        );
    }

    #[test]
    fn choose_keeps_width_targets_in_population_units() {
        let p = BudgetPlanner::default();
        // ±2% of N = ±200 counts. Monolithic needs ~2.3k labels; over
        // the 1 500 survivors the same absolute width needs far fewer.
        let mono = match p.plan(10_000, Target::RelWidth(0.02)).unwrap() {
            Route::Estimate { budget } => budget,
            other => panic!("{other:?}"),
        };
        let planned = match p
            .choose(10_000, Some(1_500), Target::RelWidth(0.02))
            .unwrap()
        {
            QueryRoute::PrefilterEstimate { budget } => budget,
            other => panic!("{other:?}"),
        };
        assert!(
            planned * 3 <= mono,
            "restricted budget {planned} should be ≪ monolithic {mono}"
        );
        // And it matches sizing the restricted population directly for
        // the absolute width.
        assert_eq!(
            p.plan(1_500, Target::AbsWidth(200.0)).unwrap(),
            Route::Estimate { budget: planned }
        );
    }

    #[test]
    fn monolithic_selectivity_zero_disables_decomposition() {
        let p = BudgetPlanner {
            monolithic_selectivity: 0.0,
            ..BudgetPlanner::default()
        };
        assert_eq!(
            p.choose(10_000, Some(0), Target::Budget(300)).unwrap(),
            QueryRoute::Monolithic(Route::Estimate { budget: 300 })
        );
        assert_eq!(
            p.choose(10_000, Some(500), Target::Budget(300)).unwrap(),
            QueryRoute::Monolithic(Route::Estimate { budget: 300 })
        );
    }

    #[test]
    fn feedback_edge_cases() {
        let mut fb = SelectivityFeedback::new();
        assert!(fb.is_empty());
        // Zero hits: a valid observation, predicting 0.0.
        fb.record("d", "p", 1, 0, 1_000);
        assert_eq!(fb.predict("d", "p", 1), Some(0.0));
        // Full-population hits: predicts 1.0.
        fb.record("d", "q", 1, 1_000, 1_000);
        assert_eq!(fb.predict("d", "q", 1), Some(1.0));
        assert_eq!(fb.len(), 2);
        // Stale version bump drops the feedback (predict refuses it).
        assert_eq!(fb.predict("d", "p", 2), None);
        // Re-recording at the new version replaces the observation.
        fb.record("d", "p", 2, 500, 1_000);
        assert_eq!(fb.predict("d", "p", 2), Some(0.5));
        assert_eq!(fb.predict("d", "p", 1), None);
        // Unknown prefilter / dataset.
        assert_eq!(fb.predict("d", "r", 1), None);
        assert_eq!(fb.predict("other", "p", 1), None);
        // Empty populations are never recorded.
        fb.record("d", "z", 1, 0, 0);
        assert_eq!(fb.predict("d", "z", 1), None);
        // Invalidation is dataset-scoped.
        fb.record("e", "p", 1, 10, 100);
        assert_eq!(fb.invalidate_dataset("d"), 2);
        assert_eq!(fb.predict("e", "p", 1), Some(0.1));
    }

    #[test]
    fn invalid_targets_error() {
        let p = BudgetPlanner::default();
        assert!(p.plan(1_000, Target::Budget(0)).is_err());
        assert!(p.plan(1_000, Target::RelWidth(0.0)).is_err());
        assert!(p.plan(1_000, Target::RelWidth(1.5)).is_err());
        assert!(p.plan(1_000, Target::AbsWidth(-3.0)).is_err());
        assert!(p.plan(1_000, Target::AbsWidth(f64::NAN)).is_err());
        // Empty population errors rather than panicking in clamp.
        assert!(p.srs_budget_for_halfwidth(0, 10.0).is_err());
    }
}
