//! Budget planning and admission control.
//!
//! Every request states *what accuracy it wants* (a confidence-interval
//! halfwidth, relative or absolute) or *what it is willing to pay* (an
//! explicit labeling budget). The planner turns that into a route:
//!
//! * **Exact** — tiny populations (or targets so tight that sampling
//!   would label most of the population anyway) go straight to the
//!   brute-force scan: for `N` below the cutoff the census is cheaper
//!   than training a proxy, and its "interval" has zero width.
//! * **Estimate { budget }** — everything else gets the *cheapest*
//!   labeling budget whose worst-case SRS halfwidth meets the target.
//!   SRS with `p = ½` is the distribution-free upper bound on the
//!   halfwidth of every estimator in the suite (the learned estimators
//!   only tighten it), so a budget sized by the closed-form SRS bound
//!   is sufficient for the requested width, whichever estimator the
//!   service executes. After a run, [`BudgetPlanner::refine`] shrinks
//!   the budget toward the cheapest one the *achieved* width justifies
//!   (variance ∝ 1/n).
//!
//! The closed form (Wald with finite-population correction, `p = ½`):
//! `w = z·N/(2√n) · √((N−n)/(N−1))`, solved for `n`:
//! `n = aN/(N−1+a)` with `a = (zN/2w)²`.

use lts_core::CoreResult;

/// What a request asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// An explicit labeling budget (unique `q` evaluations).
    Budget(usize),
    /// A halfwidth target as a fraction of the population size
    /// (`0.01` = the interval must be within ±1% of `N`).
    RelWidth(f64),
    /// A halfwidth target in absolute count units.
    AbsWidth(f64),
}

/// Where a request is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Evaluate `q` on every object (census).
    Exact,
    /// Run an estimator under this labeling budget.
    Estimate {
        /// Unique-evaluation budget.
        budget: usize,
    },
}

/// The admission-control budget planner.
#[derive(Debug, Clone, Copy)]
pub struct BudgetPlanner {
    /// Populations at or below this size route to the exact census.
    pub exact_cutoff: usize,
    /// Minimum budget handed to an estimator (a learned estimator
    /// cannot do anything useful with a handful of labels).
    pub min_budget: usize,
    /// When the planned budget exceeds this fraction of `N`, the census
    /// is the cheaper way to reach the target: route to exact.
    pub exact_fraction: f64,
    /// Confidence level the width targets refer to.
    pub level: f64,
}

impl Default for BudgetPlanner {
    fn default() -> Self {
        Self {
            exact_cutoff: 64,
            min_budget: 60,
            exact_fraction: 0.5,
            level: 0.95,
        }
    }
}

impl BudgetPlanner {
    /// The smallest SRS sample size whose worst-case (`p = ½`) Wald
    /// halfwidth with finite-population correction meets
    /// `halfwidth_counts` on a population of `n_objects`.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive target or an invalid level.
    pub fn srs_budget_for_halfwidth(
        &self,
        n_objects: usize,
        halfwidth_counts: f64,
    ) -> CoreResult<usize> {
        if !halfwidth_counts.is_finite() || halfwidth_counts <= 0.0 {
            return Err(lts_core::CoreError::InvalidConfig {
                message: format!("halfwidth target must be positive, got {halfwidth_counts}"),
            });
        }
        if n_objects == 0 {
            return Err(lts_core::CoreError::InvalidConfig {
                message: "cannot size a sample for an empty population".into(),
            });
        }
        let z = lts_stats::z_critical(self.level).map_err(lts_core::CoreError::Stats)?;
        let nf = n_objects as f64;
        let a = (z * nf / (2.0 * halfwidth_counts)).powi(2);
        let n = (a * nf / (nf - 1.0 + a)).ceil() as usize;
        Ok(n.clamp(1, n_objects))
    }

    /// Route a request: census for small populations or near-census
    /// budgets, otherwise the cheapest sufficient budget.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed targets (non-positive widths,
    /// zero budgets).
    pub fn plan(&self, n_objects: usize, target: Target) -> CoreResult<Route> {
        if n_objects <= self.exact_cutoff {
            return Ok(Route::Exact);
        }
        let budget = match target {
            Target::Budget(b) => {
                if b == 0 {
                    return Err(lts_core::CoreError::InvalidConfig {
                        message: "explicit budget must be positive".into(),
                    });
                }
                b.min(n_objects)
            }
            Target::RelWidth(frac) => {
                if !(frac > 0.0 && frac < 1.0) {
                    return Err(lts_core::CoreError::InvalidConfig {
                        message: format!("relative width must be in (0, 1), got {frac}"),
                    });
                }
                self.srs_budget_for_halfwidth(n_objects, frac * n_objects as f64)?
            }
            Target::AbsWidth(w) => self.srs_budget_for_halfwidth(n_objects, w)?,
        };
        let budget = budget.max(self.min_budget).min(n_objects);
        if (budget as f64) >= self.exact_fraction * n_objects as f64 {
            return Ok(Route::Exact);
        }
        Ok(Route::Estimate { budget })
    }

    /// Shrink (or grow) a budget toward the cheapest one the *achieved*
    /// halfwidth justifies: sampling error scales as `1/√n`, so meeting
    /// `target_halfwidth` needs roughly
    /// `n · (achieved / target)²` labels. Clamped to
    /// `[min_budget, n_objects]`; routes to exact past the census
    /// threshold.
    pub fn refine(
        &self,
        previous_budget: usize,
        achieved_halfwidth: f64,
        target_halfwidth: f64,
        n_objects: usize,
    ) -> Route {
        let well_formed = |w: f64| w.is_finite() && w > 0.0;
        if !well_formed(achieved_halfwidth) || !well_formed(target_halfwidth) {
            return Route::Estimate {
                budget: previous_budget,
            };
        }
        let ratio = achieved_halfwidth / target_halfwidth;
        let budget = ((previous_budget as f64) * ratio * ratio).ceil() as usize;
        let budget = budget.clamp(self.min_budget, n_objects);
        if (budget as f64) >= self.exact_fraction * n_objects as f64 {
            Route::Exact
        } else {
            Route::Estimate { budget }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_populations_route_to_exact() {
        let p = BudgetPlanner::default();
        assert_eq!(p.plan(64, Target::Budget(10)).unwrap(), Route::Exact);
        // Just above the cutoff the min-budget floor still makes the
        // census the cheaper plan; with room to sample, it estimates.
        assert_eq!(p.plan(65, Target::Budget(10)).unwrap(), Route::Exact);
        assert!(matches!(
            p.plan(500, Target::Budget(100)).unwrap(),
            Route::Estimate { budget: 100 }
        ));
    }

    #[test]
    fn closed_form_matches_the_wald_width() {
        let p = BudgetPlanner::default();
        let n_pop = 10_000usize;
        for target in [50.0, 120.0, 400.0] {
            let n = p.srs_budget_for_halfwidth(n_pop, target).unwrap();
            let width = |m: usize| {
                let nf = n_pop as f64;
                let fpc = ((nf - m as f64) / (nf - 1.0)).sqrt();
                1.959_963_984_540_054 * nf * (0.25 / m as f64).sqrt() * fpc
            };
            assert!(width(n) <= target * 1.0001, "n={n} too small for {target}");
            assert!(
                n == 1 || width(n - 1) > target,
                "n={n} not minimal for {target}"
            );
        }
    }

    #[test]
    fn tight_targets_route_to_exact() {
        let p = BudgetPlanner::default();
        // ±0.1% of N needs a near-census sample: exact wins.
        assert_eq!(
            p.plan(2_000, Target::RelWidth(0.001)).unwrap(),
            Route::Exact
        );
        // A loose ±10% target stays an estimate.
        match p.plan(20_000, Target::RelWidth(0.1)).unwrap() {
            Route::Estimate { budget } => {
                assert!((60..1_000).contains(&budget), "budget {budget}")
            }
            other => panic!("expected estimate, got {other:?}"),
        }
    }

    #[test]
    fn explicit_budgets_pass_through_with_floors() {
        let p = BudgetPlanner::default();
        match p.plan(10_000, Target::Budget(5)).unwrap() {
            Route::Estimate { budget } => assert_eq!(budget, p.min_budget),
            other => panic!("{other:?}"),
        }
        match p.plan(10_000, Target::Budget(300)).unwrap() {
            Route::Estimate { budget } => assert_eq!(budget, 300),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.plan(10_000, Target::Budget(9_000)).unwrap(), Route::Exact);
    }

    #[test]
    fn refine_scales_quadratically() {
        let p = BudgetPlanner::default();
        // Achieved twice the target width → ~4× the budget.
        match p.refine(200, 100.0, 50.0, 100_000) {
            Route::Estimate { budget } => assert_eq!(budget, 800),
            other => panic!("{other:?}"),
        }
        // Achieved half the target → can shed ~¾ of the budget.
        match p.refine(200, 50.0, 100.0, 100_000) {
            Route::Estimate { budget } => assert_eq!(budget, p.min_budget.max(50)),
            other => panic!("{other:?}"),
        }
        // Absurd tightening escalates to the census.
        assert_eq!(p.refine(400, 500.0, 1.0, 1_000), Route::Exact);
    }

    #[test]
    fn invalid_targets_error() {
        let p = BudgetPlanner::default();
        assert!(p.plan(1_000, Target::Budget(0)).is_err());
        assert!(p.plan(1_000, Target::RelWidth(0.0)).is_err());
        assert!(p.plan(1_000, Target::RelWidth(1.5)).is_err());
        assert!(p.plan(1_000, Target::AbsWidth(-3.0)).is_err());
        assert!(p.plan(1_000, Target::AbsWidth(f64::NAN)).is_err());
        // Empty population errors rather than panicking in clamp.
        assert!(p.srs_budget_for_halfwidth(0, 10.0).is_err());
    }
}
