//! Unified error type for the serving layer.

use std::fmt;

/// Errors produced while admitting or executing a count request.
#[derive(Debug)]
pub enum ServeError {
    /// Core estimation error.
    Core(lts_core::CoreError),
    /// Table-engine error.
    Table(lts_table::TableError),
    /// The request names a dataset the service does not know.
    UnknownDataset {
        /// The requested name.
        name: String,
    },
    /// The request's condition failed to parse.
    Parse {
        /// Parser diagnostics.
        message: String,
    },
    /// The request was rejected at admission (queue full).
    Overloaded {
        /// The service's queue capacity.
        capacity: usize,
    },
    /// Malformed request or configuration.
    Invalid {
        /// Description.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "estimation error: {e}"),
            ServeError::Table(e) => write!(f, "table error: {e}"),
            ServeError::UnknownDataset { name } => write!(f, "unknown dataset `{name}`"),
            ServeError::Parse { message } => write!(f, "condition parse error: {message}"),
            ServeError::Overloaded { capacity } => {
                write!(f, "request rejected: queue capacity {capacity} exceeded")
            }
            ServeError::Invalid { message } => write!(f, "invalid request: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<lts_core::CoreError> for ServeError {
    fn from(e: lts_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<lts_table::TableError> for ServeError {
    fn from(e: lts_table::TableError) -> Self {
        ServeError::Table(e)
    }
}

/// Result alias for the serving layer.
pub type ServeResult<T> = Result<T, ServeError>;
