//! Canonical query fingerprints.
//!
//! Equivalent count requests must hit the same catalog entry, model,
//! and cached result. A request's *identity* is its canonical form:
//!
//! 1. the predicate [`Expr`] is **normalized** ([`normalize`]) —
//!    comparisons are flipped to `<`/`<=`/`=`/`<>` form and the
//!    operand lists of `AND`/`OR` chains are flattened and sorted, so
//!    `a > 3 AND b < 2` and `b < 2 AND a > 3` canonicalize identically;
//! 2. the normalized tree is **rendered** ([`canonical`]) with a
//!    subquery form that includes the scanned table's schema and row
//!    count (the std `Display` elides table identity);
//! 3. the [`fingerprint`] is an FNV-1a hash of
//!    `dataset | table version | canonical string`.
//!
//! The hash is the compact id carried in responses; the catalog keys on
//! the **canonical string** itself, so structurally different queries
//! can never alias even under a 64-bit hash collision.
//!
//! Normalization is semantics-preserving for predicate results:
//! flipping `a > b` to `b < a` evaluates the same operands to the same
//! boolean (including NULL and error cases), and reordering `AND`/`OR`
//! operands cannot change a Kleene three-valued result. The only
//! observable difference is *which* error surfaces when several operands
//! of one conjunction would error — estimation aborts on any error, so
//! cached artifacts never depend on it.

use lts_core::fnv1a;
use lts_table::{BinaryOp, CmpOp, Expr};
use std::fmt::Write as _;

/// Normalize an expression to its canonical structural form.
pub fn normalize(expr: &Expr) -> Expr {
    match expr {
        Expr::Literal(_) | Expr::Column(_) | Expr::Outer(_) => expr.clone(),
        Expr::Unary(op, e) => Expr::Unary(*op, Box::new(normalize(e))),
        Expr::Call(f, args) => Expr::Call(*f, args.iter().map(normalize).collect()),
        Expr::Subquery(sq) => {
            let mut sq = (**sq).clone();
            sq.filter = sq.filter.as_ref().map(normalize);
            sq.arg = sq.arg.as_ref().map(normalize);
            Expr::Subquery(Box::new(sq))
        }
        Expr::Binary(op, l, r) => {
            let (l, r) = (normalize(l), normalize(r));
            match op {
                // Flip > / >= into < / <= with swapped operands.
                BinaryOp::Cmp(CmpOp::Gt) => {
                    Expr::Binary(BinaryOp::Cmp(CmpOp::Lt), Box::new(r), Box::new(l))
                }
                BinaryOp::Cmp(CmpOp::Ge) => {
                    Expr::Binary(BinaryOp::Cmp(CmpOp::Le), Box::new(r), Box::new(l))
                }
                // = / <> are symmetric: order operands canonically.
                BinaryOp::Cmp(c @ (CmpOp::Eq | CmpOp::Ne)) => {
                    let (a, b) = order_pair(l, r);
                    Expr::Binary(BinaryOp::Cmp(*c), Box::new(a), Box::new(b))
                }
                // AND/OR chains: flatten, sort operands, rebuild
                // left-associated.
                BinaryOp::And | BinaryOp::Or => {
                    let mut operands = Vec::new();
                    collect_chain(*op, l, &mut operands);
                    collect_chain(*op, r, &mut operands);
                    operands.sort_by_cached_key(render);
                    let mut it = operands.into_iter();
                    let first = it.next().expect("chain has operands");
                    it.fold(first, |acc, e| {
                        Expr::Binary(*op, Box::new(acc), Box::new(e))
                    })
                }
                other => Expr::Binary(*other, Box::new(l), Box::new(r)),
            }
        }
    }
}

fn order_pair(l: Expr, r: Expr) -> (Expr, Expr) {
    if render(&l) <= render(&r) {
        (l, r)
    } else {
        (r, l)
    }
}

fn collect_chain(op: BinaryOp, e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary(o, l, r) if o == op => {
            collect_chain(op, *l, out);
            collect_chain(op, *r, out);
        }
        other => out.push(other),
    }
}

/// Render an expression in the canonical textual form. Identical to
/// the std `Display` except that subqueries name their table by schema
/// and row count instead of the opaque `<table>` placeholder (two
/// queries scanning different tables must not alias).
fn render(expr: &Expr) -> String {
    match expr {
        Expr::Subquery(sq) => {
            let mut out = String::from("(SELECT ");
            let _ = write!(out, "{:?}(", sq.func);
            match &sq.arg {
                Some(arg) => out.push_str(&render(arg)),
                None => out.push('*'),
            }
            out.push_str(") FROM [");
            for (i, field) in sq.table.schema().fields().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{:?}", field.name, field.data_type);
            }
            let _ = write!(out, ";rows={}]", sq.table.len());
            if let Some(filter) = &sq.filter {
                let _ = write!(out, " WHERE {}", render(filter));
            }
            out.push(')');
            out
        }
        Expr::Unary(op, e) => {
            let sym = match op {
                lts_table::UnaryOp::Not => "NOT ",
                lts_table::UnaryOp::Neg => "- ",
            };
            format!("({sym}{})", render(e))
        }
        Expr::Binary(op, l, r) => {
            let sym = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "/",
                BinaryOp::And => "AND",
                BinaryOp::Or => "OR",
                BinaryOp::Cmp(CmpOp::Eq) => "=",
                BinaryOp::Cmp(CmpOp::Ne) => "<>",
                BinaryOp::Cmp(CmpOp::Lt) => "<",
                BinaryOp::Cmp(CmpOp::Le) => "<=",
                BinaryOp::Cmp(CmpOp::Gt) => ">",
                BinaryOp::Cmp(CmpOp::Ge) => ">=",
            };
            format!("({} {sym} {})", render(l), render(r))
        }
        Expr::Call(f, args) => {
            let rendered: Vec<String> = args.iter().map(render).collect();
            format!("{f:?}({})", rendered.join(", "))
        }
        // Literals / columns / outer refs match the std Display.
        other => other.to_string(),
    }
}

/// The canonical string of a (normalized) expression.
pub fn canonical(expr: &Expr) -> String {
    render(&normalize(expr))
}

/// The 64-bit fingerprint of a request: dataset name, table version,
/// and the canonical predicate. The compact id responses carry; exact
/// identity is the canonical string itself.
pub fn fingerprint(dataset: &str, table_version: u64, canonical_expr: &str) -> u64 {
    let mut bytes = Vec::with_capacity(dataset.len() + canonical_expr.len() + 9);
    bytes.extend_from_slice(dataset.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&table_version.to_le_bytes());
    bytes.extend_from_slice(canonical_expr.as_bytes());
    fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_table::{table_of_floats, AggFunc};
    use std::sync::Arc;

    fn col(n: &str) -> Expr {
        Expr::col(n)
    }

    #[test]
    fn commuted_conjunctions_alias() {
        let a = col("a").gt(Expr::lit(3.0)).and(col("b").lt(Expr::lit(2.0)));
        let b = col("b").lt(Expr::lit(2.0)).and(col("a").gt(Expr::lit(3.0)));
        assert_eq!(canonical(&a), canonical(&b));
        // Flips render in < / <= form.
        assert!(canonical(&a).contains('<'));
        assert!(!canonical(&a).contains('>'));
    }

    #[test]
    fn flipped_comparisons_alias() {
        let a = col("x").gt(Expr::lit(1.0));
        let b = Expr::lit(1.0).lt(col("x"));
        assert_eq!(canonical(&a), canonical(&b));
        let a = col("x").ge(Expr::lit(1.0));
        let b = Expr::lit(1.0).le(col("x"));
        assert_eq!(canonical(&a), canonical(&b));
        let a = col("x").eq(Expr::lit(1.0));
        let b = Expr::lit(1.0).eq(col("x"));
        assert_eq!(canonical(&a), canonical(&b));
    }

    #[test]
    fn long_chains_flatten_and_sort() {
        let a = col("a")
            .lt(Expr::lit(1.0))
            .and(col("b").lt(Expr::lit(2.0)))
            .and(col("c").lt(Expr::lit(3.0)));
        let b = col("c")
            .lt(Expr::lit(3.0))
            .and(col("a").lt(Expr::lit(1.0)).and(col("b").lt(Expr::lit(2.0))));
        assert_eq!(canonical(&a), canonical(&b));
    }

    #[test]
    fn structurally_different_exprs_do_not_alias() {
        let pairs = [
            (col("x").lt(Expr::lit(1.0)), col("x").le(Expr::lit(1.0))),
            (col("x").lt(Expr::lit(1.0)), col("y").lt(Expr::lit(1.0))),
            (col("a").and(col("b")), col("a").or(col("b"))),
            (
                col("x").lt(Expr::lit(1.0)),
                col("x").lt(Expr::lit(1.0)).not(),
            ),
            // AND vs OR chains over the same operands, nested mixes.
            (
                col("a").and(col("b").or(col("c"))),
                col("a").and(col("b")).or(col("c")),
            ),
        ];
        for (l, r) in pairs {
            assert_ne!(canonical(&l), canonical(&r), "{l} vs {r}");
        }
    }

    #[test]
    fn subquery_tables_are_part_of_the_identity() {
        let t1 = Arc::new(table_of_floats(&[("x", &[1.0, 2.0])]).unwrap());
        let t2 = Arc::new(table_of_floats(&[("x", &[1.0, 2.0, 3.0])]).unwrap());
        let q = |t: &Arc<lts_table::Table>| {
            Expr::subquery(
                Arc::clone(t),
                Some(col("x").lt(Expr::outer("x"))),
                AggFunc::Count,
                None,
            )
            .lt(Expr::lit(1i64))
        };
        assert_ne!(canonical(&q(&t1)), canonical(&q(&t2)));
        assert_eq!(canonical(&q(&t1)), canonical(&q(&t1)));
    }

    #[test]
    fn fingerprint_covers_dataset_and_version() {
        let c = canonical(&col("x").lt(Expr::lit(1.0)));
        assert_eq!(fingerprint("d", 0, &c), fingerprint("d", 0, &c));
        assert_ne!(fingerprint("d", 0, &c), fingerprint("d", 1, &c));
        assert_ne!(fingerprint("d", 0, &c), fingerprint("e", 0, &c));
    }

    #[test]
    fn normalization_preserves_predicate_results() {
        // Evaluate original vs normalized on real rows, including NULL
        // (division by zero) and boundary cases.
        let t = table_of_floats(&[
            ("x", &[0.0, 1.0, 2.0, 3.0, 4.0]),
            ("y", &[4.0, 3.0, 2.0, 1.0, 0.0]),
        ])
        .unwrap();
        let exprs = [
            col("x").gt(col("y")).and(col("x").lt(Expr::lit(3.5))),
            col("x").ge(col("y")).or(col("y").gt(Expr::lit(2.0))),
            col("x")
                .div(col("y"))
                .gt(Expr::lit(0.5))
                .and(col("x").gt(Expr::lit(0.5)))
                .and(col("y").lt(Expr::lit(3.5))),
            col("x").eq(col("y")).not(),
        ];
        for e in exprs {
            let n = normalize(&e);
            for row in 0..t.len() {
                let a = e.eval_bool(lts_table::RowCtx::top(&t, row)).unwrap();
                let b = n.eval_bool(lts_table::RowCtx::top(&t, row)).unwrap();
                assert_eq!(a, b, "row {row} of {e}");
            }
        }
    }
}
