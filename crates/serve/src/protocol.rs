//! The `lts-serve` line protocol, shared by every front-end.
//!
//! One implementation of the line-in/JSON-out command grammar serves
//! both the stdin REPL ([`crate::repl`]) and the TCP server
//! ([`crate::net`]), so the golden transcripts pinned against the REPL
//! are the single source of truth for the network path too.
//!
//! ```text
//! register <sports|neighbors> <name> rows=<n> level=<XS|S|M|L|XL|XXL> seed=<u64>
//! count <dataset> [width=<frac>|abswidth=<counts>|budget=<n>] [fresh] [id=<u64>] :: <condition>
//! explain <dataset> [width=<frac>|abswidth=<counts>|budget=<n>] :: <condition>
//! invalidate <dataset>
//! stats
//! metrics [prom]   (registry snapshot: flat JSON, or Prometheus text)
//! trace <id>       (most recent retained trace span for a request id)
//! slow [k]         (top-k most oracle-expensive requests)
//! quit          (close this session; the server keeps running)
//! shutdown      (ack, then drain the whole server and exit)
//! ```
//!
//! Every command yields exactly one JSON response line, except `quit`
//! (silent close) and blank/`#` lines (skipped). Request ids not given
//! explicitly are assigned from a per-session counter starting at 0 —
//! two sessions therefore assign overlapping ids, which is safe by the
//! determinism contract (a response is a pure function of the id, so
//! equal ids for equal requests replay the same response) but means
//! clients that want distinct `fresh` streams should pass explicit ids.

use crate::error::ServeError;
use crate::planner::Target;
use crate::service::{DatasetSpec, Request, Service};

/// Options shared by every protocol front-end.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplOptions {
    /// Zero wall-time fields in every response (golden-diff mode).
    pub deterministic: bool,
}

/// Per-session protocol state (one per REPL run / TCP connection).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionState {
    /// Next auto-assigned request id for `count` without `id=`.
    pub next_id: u64,
}

/// What one protocol line asks the front-end to do.
#[derive(Debug, Clone)]
pub enum LineOutcome {
    /// Nothing to write (blank or comment line).
    Silent,
    /// Write this JSON response line.
    Reply(String),
    /// Close this session without a reply.
    Quit,
    /// Write the acknowledgement line, then gracefully shut the whole
    /// server down (the REPL treats this as an acked `quit`).
    Shutdown(String),
}

/// Render a protocol-level error as a JSON response line.
pub(crate) fn json_err(message: &str) -> String {
    format!(
        "{{\"ok\": false, \"error\": \"{}\"}}",
        crate::service::json_escape(message)
    )
}

/// The response given to requests refused because the server is
/// draining: admitted-but-unexecuted requests at shutdown, and any
/// request submitted after shutdown began.
pub(crate) fn shutting_down_line() -> String {
    json_err("shutting_down: the server is draining and refuses new requests")
}

fn kv<'a>(tok: &'a str, key: &str) -> Option<&'a str> {
    tok.strip_prefix(key).and_then(|r| r.strip_prefix('='))
}

fn stats_json(service: &Service) -> String {
    let s = service.stats();
    format!(
        "{{\"ok\": true, \"requests\": {}, \"rejected\": {}, \"errors\": {}, \
         \"exact\": {}, \"cold\": {}, \"warm\": {}, \"cached\": {}, \
         \"oracle_evals\": {}, \"oracle_evals_cold\": {}, \"oracle_evals_warm\": {}, \
         \"oracle_evals_exact\": {}, \"oracle_evals_saved\": {}, \
         \"catalog\": {}, \"store\": {}, \"cache\": {}}}",
        s.requests,
        s.rejected,
        s.errors,
        s.exact,
        s.cold,
        s.warm,
        s.cached,
        s.oracle_evals,
        s.oracle_evals_cold,
        s.oracle_evals_warm,
        s.oracle_evals_exact,
        s.oracle_evals_saved,
        service.catalog_len(),
        service.store_len(),
        service.cache_len(),
    )
}

/// `metrics` — one-line JSON snapshot of the registry; `metrics prom`
/// — the Prometheus exposition, JSON-wrapped as an escaped string so
/// the line protocol's one-line-per-reply framing holds. Deterministic
/// mode masks `wall_*` metrics in both renderings.
fn handle_metrics(service: &Service, rest: &str, opts: ReplOptions) -> String {
    let obs = service.observability();
    if !obs.registry.is_enabled() {
        return json_err("metrics registry is disabled");
    }
    let snapshot = obs.registry.snapshot();
    match rest.trim() {
        "" => format!(
            "{{\"ok\": true, \"metrics\": {}}}",
            snapshot.to_json(opts.deterministic)
        ),
        "prom" => format!(
            "{{\"ok\": true, \"prometheus\": \"{}\"}}",
            crate::service::json_escape(&snapshot.to_prometheus(opts.deterministic))
        ),
        other => json_err(&format!("unknown metrics option `{other}`")),
    }
}

/// `trace <id>` — replay the most recent retained trace span for a
/// request id from the bounded ring.
fn handle_trace(service: &Service, rest: &str, opts: ReplOptions) -> String {
    let Ok(id) = rest.trim().parse::<u64>() else {
        return json_err("usage: trace <request-id>");
    };
    match service.observability().ring.get(id) {
        Some(trace) => format!(
            "{{\"ok\": true, \"trace\": {}}}",
            trace.to_json(opts.deterministic)
        ),
        None => json_err(&format!("no trace retained for id {id}")),
    }
}

/// `slow [k]` — the top-k most oracle-expensive requests, in the slow
/// log's deterministic order.
fn handle_slow(service: &Service, rest: &str) -> String {
    let slow = &service.observability().slow;
    let k = match rest.trim() {
        "" => slow.capacity(),
        v => match v.parse::<usize>() {
            Ok(k) => k,
            Err(_) => return json_err("usage: slow [k]"),
        },
    };
    let entries: Vec<String> = slow.top(k).iter().map(|e| e.to_json()).collect();
    format!("{{\"ok\": true, \"slow\": [{}]}}", entries.join(", "))
}

fn handle_register(service: &mut Service, rest: &str) -> String {
    let toks: Vec<&str> = rest.split_whitespace().collect();
    if toks.len() < 2 {
        return json_err("usage: register <sports|neighbors> <name> rows=<n> level=<L> seed=<s>");
    }
    let (kind, name) = (toks[0], toks[1]);
    let (mut rows, mut level, mut seed) = (4_000usize, "M".to_string(), 11u64);
    for tok in &toks[2..] {
        if let Some(v) = kv(tok, "rows") {
            match v.parse() {
                Ok(n) => rows = n,
                Err(_) => return json_err("bad rows"),
            }
        } else if let Some(v) = kv(tok, "level") {
            level = v.to_string();
        } else if let Some(v) = kv(tok, "seed") {
            match v.parse() {
                Ok(s) => seed = s,
                Err(_) => return json_err("bad seed"),
            }
        } else {
            return json_err(&format!("unknown register option `{tok}`"));
        }
    }
    // The service records the recipe so the durable-state snapshot can
    // re-generate the identical dataset on restart.
    let spec = DatasetSpec {
        kind: kind.to_string(),
        rows,
        level,
        seed,
    };
    match service.register_generated(name, &spec) {
        Ok(()) => format!(
            "{{\"ok\": true, \"registered\": \"{name}\", \"rows\": {rows}, \
             \"version\": {}}}",
            service.dataset_version(name).unwrap_or(0)
        ),
        // `Invalid` carries the protocol-facing message verbatim
        // (unknown kind/level, generator failures).
        Err(ServeError::Invalid { message }) => json_err(&message),
        Err(e) => json_err(&e.to_string()),
    }
}

fn handle_count(service: &mut Service, rest: &str, next_id: &mut u64, opts: ReplOptions) -> String {
    let Some((head, condition)) = rest.split_once("::") else {
        return json_err("count needs `:: <condition>`");
    };
    let toks: Vec<&str> = head.split_whitespace().collect();
    if toks.is_empty() {
        return json_err("count needs a dataset name");
    }
    let dataset = toks[0].to_string();
    let mut target = Target::RelWidth(0.05);
    let mut fresh = false;
    let mut id: Option<u64> = None;
    for tok in &toks[1..] {
        if let Some(v) = kv(tok, "width") {
            match v.parse() {
                Ok(w) => target = Target::RelWidth(w),
                Err(_) => return json_err("bad width"),
            }
        } else if let Some(v) = kv(tok, "abswidth") {
            match v.parse() {
                Ok(w) => target = Target::AbsWidth(w),
                Err(_) => return json_err("bad abswidth"),
            }
        } else if let Some(v) = kv(tok, "budget") {
            match v.parse() {
                Ok(b) => target = Target::Budget(b),
                Err(_) => return json_err("bad budget"),
            }
        } else if *tok == "fresh" {
            fresh = true;
        } else if let Some(v) = kv(tok, "id") {
            match v.parse() {
                Ok(i) => id = Some(i),
                Err(_) => return json_err("bad id"),
            }
        } else {
            return json_err(&format!("unknown count option `{tok}`"));
        }
    }
    let id = id.unwrap_or_else(|| {
        let i = *next_id;
        *next_id += 1;
        i
    });
    let response = service.run(Request {
        id,
        dataset,
        condition: condition.trim().to_string(),
        target,
        fresh,
    });
    response.to_json(opts.deterministic)
}

fn handle_explain(service: &mut Service, rest: &str) -> String {
    let Some((head, condition)) = rest.split_once("::") else {
        return json_err("explain needs `:: <condition>`");
    };
    let toks: Vec<&str> = head.split_whitespace().collect();
    if toks.is_empty() {
        return json_err("explain needs a dataset name");
    }
    let dataset = toks[0];
    let mut target = Target::RelWidth(0.05);
    for tok in &toks[1..] {
        if let Some(v) = kv(tok, "width") {
            match v.parse() {
                Ok(w) => target = Target::RelWidth(w),
                Err(_) => return json_err("bad width"),
            }
        } else if let Some(v) = kv(tok, "abswidth") {
            match v.parse() {
                Ok(w) => target = Target::AbsWidth(w),
                Err(_) => return json_err("bad abswidth"),
            }
        } else if let Some(v) = kv(tok, "budget") {
            match v.parse() {
                Ok(b) => target = Target::Budget(b),
                Err(_) => return json_err("bad budget"),
            }
        } else {
            return json_err(&format!("unknown explain option `{tok}`"));
        }
    }
    match service.explain(dataset, condition.trim(), target) {
        Ok(line) => line,
        Err(e) => json_err(&e.to_string()),
    }
}

/// Execute one protocol line against the service. The single protocol
/// implementation behind both the REPL and the TCP server: any change
/// here shows up identically in the golden transcripts of both.
pub fn handle_line(
    service: &mut Service,
    session: &mut SessionState,
    opts: ReplOptions,
    line: &str,
) -> LineOutcome {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return LineOutcome::Silent;
    }
    let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
    match cmd {
        "quit" | "exit" => LineOutcome::Quit,
        "shutdown" => LineOutcome::Shutdown("{\"ok\": true, \"shutting_down\": true}".to_string()),
        "register" => LineOutcome::Reply(handle_register(service, rest)),
        "count" => LineOutcome::Reply(handle_count(service, rest, &mut session.next_id, opts)),
        "explain" => LineOutcome::Reply(handle_explain(service, rest)),
        "invalidate" => LineOutcome::Reply(match service.invalidate(rest.trim()) {
            Ok(()) => format!(
                "{{\"ok\": true, \"invalidated\": \"{}\", \"version\": {}}}",
                rest.trim(),
                service.dataset_version(rest.trim()).unwrap_or(0)
            ),
            Err(e) => json_err(&e.to_string()),
        }),
        "stats" => LineOutcome::Reply(stats_json(service)),
        "metrics" => LineOutcome::Reply(handle_metrics(service, rest, opts)),
        "trace" => LineOutcome::Reply(handle_trace(service, rest, opts)),
        "slow" => LineOutcome::Reply(handle_slow(service, rest)),
        other => LineOutcome::Reply(json_err(&format!("unknown command `{other}`"))),
    }
}
