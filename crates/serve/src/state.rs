//! Durable warm state: snapshot the service's reusable assets to disk
//! and replay them at startup, so a restarted `lts-served` is warm from
//! its first request.
//!
//! # What is persisted
//!
//! The snapshot carries **recipes, not rows or weights** — everything
//! in it replays bit-identically because the service is deterministic:
//!
//! * **dataset lines** — the generator recipe ([`DatasetSpec`]) and the
//!   table version of every re-generatable dataset. Restore re-runs the
//!   generator (same rows/level/seed ⇒ same bytes) and bumps the
//!   version back to the recorded lineage.
//! * **store lines** — the model store's portable export (labels +
//!   seeds; see [`crate::store::ModelStore::export`]). Restore replays
//!   `prepare_with_known`: zero oracle evaluations, bit-identical warm
//!   states.
//! * **cache lines** — finished estimates with every `f64` spelled as
//!   its IEEE-754 bit pattern in hex, so a restored cached response is
//!   byte-identical to the one served before the restart.
//!
//! # Durability contract
//!
//! * **Atomic save**: the snapshot is written to `state.lts.tmp` and
//!   renamed over `state.lts`; a crash mid-save leaves the previous
//!   snapshot (or nothing) — never a half file under the final name.
//! * **Verified load**: the file ends in a `checksum` trailer (FNV-1a
//!   over everything before it). A torn tail, flipped byte, or
//!   version-mismatched header yields a structured [`StateError`]; the
//!   caller ([`crate::net`]'s dispatcher) logs it and starts cold —
//!   never a panic, never silently wrong counts.
//! * **Missing file is not an error**: first boot returns `Ok(None)`.

use crate::cache::ResultKey;
use crate::error::ServeError;
use crate::service::{DatasetSpec, Service};
use crate::store::{dec_text, enc_text};
use lts_core::fnv1a;
use std::fmt;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Snapshot file name inside the `--state-dir` directory.
pub const STATE_FILE: &str = "state.lts";
const HEADER: &str = "lts-state/v1";

/// Errors loading or saving a state snapshot.
#[derive(Debug)]
pub enum StateError {
    /// Filesystem failure.
    Io {
        /// Path involved.
        path: String,
        /// OS error description.
        message: String,
    },
    /// The snapshot header names a format this build does not speak.
    BadVersion {
        /// The header actually found.
        found: String,
    },
    /// The checksum trailer does not match the snapshot body (torn or
    /// corrupted write).
    ChecksumMismatch,
    /// The snapshot is structurally malformed.
    Corrupt {
        /// Description of the first malformed element.
        message: String,
    },
    /// The snapshot parsed but replaying it against the service failed.
    Restore {
        /// The underlying service error.
        message: String,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Io { path, message } => write!(f, "state i/o error at {path}: {message}"),
            StateError::BadVersion { found } => {
                write!(
                    f,
                    "state snapshot version mismatch: found `{found}`, expected `{HEADER}`"
                )
            }
            StateError::ChecksumMismatch => {
                write!(
                    f,
                    "state snapshot checksum mismatch (torn or corrupted write)"
                )
            }
            StateError::Corrupt { message } => write!(f, "corrupt state snapshot: {message}"),
            StateError::Restore { message } => write!(f, "state restore failed: {message}"),
        }
    }
}

impl std::error::Error for StateError {}

/// What a successful restore brought back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreSummary {
    /// Datasets re-generated.
    pub datasets: usize,
    /// Warm model states rebuilt (zero oracle evaluations).
    pub models: usize,
    /// Cached results re-inserted.
    pub cached: usize,
}

fn io_err(path: &Path) -> impl FnOnce(std::io::Error) -> StateError + '_ {
    move |e| StateError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn corrupt(message: impl Into<String>) -> StateError {
    StateError::Corrupt {
        message: message.into(),
    }
}

/// Map a route string back to the `&'static str` set the cache uses.
fn route_static(s: &str) -> Option<&'static str> {
    match s {
        "exact" => Some("exact"),
        "lss" => Some("lss"),
        "lws" => Some("lws"),
        "srs" => Some("srs"),
        _ => None,
    }
}

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_from_hex(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Render the snapshot body (header through the last data line; the
/// checksum trailer is appended by [`save`]).
pub fn render_snapshot(service: &Service) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for (name, spec, version) in service.dataset_specs() {
        let _ = writeln!(
            out,
            "dataset\t{}\t{}\t{}\t{}\t{}\t{version}",
            enc_text(&name),
            enc_text(&spec.kind),
            spec.rows,
            enc_text(&spec.level),
            spec.seed,
        );
    }
    for line in service.export_store().lines() {
        out.push_str("store\t");
        out.push_str(line);
        out.push('\n');
    }
    for (key, e) in service.cache_entries() {
        let _ = writeln!(
            out,
            "cache\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            enc_text(&key.dataset),
            enc_text(&key.canonical),
            key.budget,
            e.table_version,
            f64_hex(e.count),
            f64_hex(e.std_error),
            f64_hex(e.lo),
            f64_hex(e.hi),
            f64_hex(e.level),
            e.evals_spent,
            e.model_version,
            e.route,
        );
    }
    out
}

/// Write the snapshot atomically: temp file first, then rename over
/// [`STATE_FILE`]. Returns the final snapshot path.
///
/// # Errors
///
/// Returns [`StateError::Io`] on filesystem failure; the previous
/// snapshot (if any) is left intact in that case.
pub fn save(service: &Service, dir: &Path) -> Result<PathBuf, StateError> {
    let body = render_snapshot(service);
    let text = format!("{body}checksum\t{:016x}\n", fnv1a(body.as_bytes()));
    fs::create_dir_all(dir).map_err(io_err(dir))?;
    let tmp = dir.join(format!("{STATE_FILE}.tmp"));
    let path = dir.join(STATE_FILE);
    fs::write(&tmp, text).map_err(io_err(&tmp))?;
    fs::rename(&tmp, &path).map_err(io_err(&path))?;
    Ok(path)
}

struct DatasetLine {
    name: String,
    spec: DatasetSpec,
    version: u64,
}

struct CacheLine {
    key: ResultKey,
    table_version: u64,
    count: f64,
    std_error: f64,
    lo: f64,
    hi: f64,
    level: f64,
    evals_spent: usize,
    model_version: u64,
    route: &'static str,
}

struct Parsed {
    datasets: Vec<DatasetLine>,
    store_text: String,
    caches: Vec<CacheLine>,
}

/// Verify the checksum trailer and parse the snapshot body, touching
/// nothing in the service yet — a corrupt file is rejected before any
/// state mutates.
fn parse_snapshot(text: &str) -> Result<Parsed, StateError> {
    let stripped = text
        .strip_suffix('\n')
        .ok_or_else(|| corrupt("torn snapshot: missing final newline"))?;
    let split = stripped
        .rfind('\n')
        .ok_or_else(|| corrupt("torn snapshot: missing checksum trailer"))?;
    let (body, trailer) = stripped.split_at(split + 1);
    let sum_hex = trailer
        .strip_prefix("checksum\t")
        .ok_or_else(|| corrupt("torn snapshot: last line is not a checksum trailer"))?;
    let expected = u64::from_str_radix(sum_hex, 16)
        .map_err(|_| corrupt("torn snapshot: malformed checksum trailer"))?;
    if fnv1a(body.as_bytes()) != expected {
        return Err(StateError::ChecksumMismatch);
    }

    let mut lines = body.lines();
    match lines.next() {
        Some(HEADER) => {}
        other => {
            return Err(StateError::BadVersion {
                found: other.unwrap_or("<empty>").to_string(),
            })
        }
    }
    let mut parsed = Parsed {
        datasets: Vec::new(),
        store_text: String::new(),
        caches: Vec::new(),
    };
    for (no, line) in lines.enumerate() {
        let bad = |what: &str| corrupt(format!("line {}: {what}", no + 2));
        let (tag, rest) = line
            .split_once('\t')
            .ok_or_else(|| bad("expected a tab-separated tagged line"))?;
        match tag {
            "dataset" => {
                let f: Vec<&str> = rest.split('\t').collect();
                if f.len() != 6 {
                    return Err(bad("dataset line needs 6 fields"));
                }
                parsed.datasets.push(DatasetLine {
                    name: dec_text(f[0]).ok_or_else(|| bad("bad dataset name encoding"))?,
                    spec: DatasetSpec {
                        kind: dec_text(f[1]).ok_or_else(|| bad("bad kind encoding"))?,
                        rows: f[2].parse().map_err(|_| bad("bad rows"))?,
                        level: dec_text(f[3]).ok_or_else(|| bad("bad level encoding"))?,
                        seed: f[4].parse().map_err(|_| bad("bad seed"))?,
                    },
                    version: f[5].parse().map_err(|_| bad("bad version"))?,
                });
            }
            "store" => {
                parsed.store_text.push_str(rest);
                parsed.store_text.push('\n');
            }
            "cache" => {
                let f: Vec<&str> = rest.split('\t').collect();
                if f.len() != 12 {
                    return Err(bad("cache line needs 12 fields"));
                }
                let fx = |s: &str, what: &'static str| f64_from_hex(s).ok_or_else(|| bad(what));
                parsed.caches.push(CacheLine {
                    key: ResultKey {
                        dataset: dec_text(f[0]).ok_or_else(|| bad("bad dataset encoding"))?,
                        canonical: dec_text(f[1]).ok_or_else(|| bad("bad canonical encoding"))?,
                        budget: f[2].parse().map_err(|_| bad("bad budget"))?,
                    },
                    table_version: f[3].parse().map_err(|_| bad("bad table version"))?,
                    count: fx(f[4], "bad count bits")?,
                    std_error: fx(f[5], "bad std_error bits")?,
                    lo: fx(f[6], "bad lo bits")?,
                    hi: fx(f[7], "bad hi bits")?,
                    level: fx(f[8], "bad level bits")?,
                    evals_spent: f[9].parse().map_err(|_| bad("bad evals"))?,
                    model_version: f[10].parse().map_err(|_| bad("bad model version"))?,
                    route: route_static(f[11]).ok_or_else(|| bad("unknown route"))?,
                });
            }
            other => return Err(bad(&format!("unknown line tag `{other}`"))),
        }
    }
    Ok(parsed)
}

/// Load the snapshot under `dir` into `service`: re-generate datasets
/// (restoring their version lineage), replay the model store with the
/// persisted labels (zero oracle evaluations), and re-insert cached
/// results bit-exactly. `Ok(None)` when no snapshot exists (first
/// boot).
///
/// On `Err` the service may hold partial restored state; the caller
/// should discard it and start from a fresh `Service` (the dispatcher
/// does exactly that).
///
/// # Errors
///
/// [`StateError::Io`] on read failure, [`StateError::BadVersion`] /
/// [`StateError::ChecksumMismatch`] / [`StateError::Corrupt`] for a
/// version-mismatched, torn, or malformed snapshot, and
/// [`StateError::Restore`] when replay against the service fails.
pub fn load(service: &mut Service, dir: &Path) -> Result<Option<RestoreSummary>, StateError> {
    let path = dir.join(STATE_FILE);
    let bytes = match fs::read(&path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        r => r.map_err(io_err(&path))?,
    };
    let text = String::from_utf8(bytes).map_err(|_| corrupt("snapshot is not valid UTF-8"))?;
    let parsed = parse_snapshot(&text)?;

    let restore_err = |e: ServeError| StateError::Restore {
        message: e.to_string(),
    };
    // Datasets first: registering resets derived state, and the version
    // must match the recorded lineage before store/cache entries (which
    // carry table versions) are replayed.
    for d in &parsed.datasets {
        service
            .register_generated(&d.name, &d.spec)
            .map_err(restore_err)?;
        while service.dataset_version(&d.name).unwrap_or(0) < d.version {
            service.invalidate(&d.name).map_err(restore_err)?;
        }
    }
    let models = if parsed.store_text.is_empty() {
        0
    } else {
        service
            .import_store(&parsed.store_text)
            .map_err(restore_err)?
    };
    let cached = parsed.caches.len();
    for c in parsed.caches {
        service.restore_cached(
            c.key,
            c.count,
            c.std_error,
            c.lo,
            c.hi,
            c.level,
            c.evals_spent,
            c.model_version,
            c.table_version,
            c.route,
        );
    }
    Ok(Some(RestoreSummary {
        datasets: parsed.datasets.len(),
        models,
        cached,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_bits_roundtrip_exactly() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE, 1e300] {
            let back = f64_from_hex(&f64_hex(v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let nan = f64_from_hex(&f64_hex(f64::NAN)).unwrap();
        assert!(nan.is_nan());
        assert!(f64_from_hex("xyz").is_none());
    }

    #[test]
    fn empty_service_snapshot_parses() {
        let svc = Service::new(crate::service::ServiceConfig::default());
        let body = render_snapshot(&svc);
        assert!(body.starts_with("lts-state/v1\n"));
        let text = format!("{body}checksum\t{:016x}\n", fnv1a(body.as_bytes()));
        let parsed = parse_snapshot(&text).unwrap();
        assert!(parsed.datasets.is_empty());
        assert!(parsed.caches.is_empty());
    }

    #[test]
    fn structural_corruption_is_structured() {
        // No trailing newline.
        assert!(matches!(
            parse_snapshot("lts-state/v1"),
            Err(StateError::Corrupt { .. })
        ));
        // Missing checksum trailer.
        assert!(matches!(
            parse_snapshot("lts-state/v1\ndataset\tx\n"),
            Err(StateError::Corrupt { .. })
        ));
        // Version-mismatched header (checksum valid for the body).
        let body = "lts-state/v9\n";
        let text = format!("{body}checksum\t{:016x}\n", fnv1a(body.as_bytes()));
        assert!(matches!(
            parse_snapshot(&text),
            Err(StateError::BadVersion { found }) if found == "lts-state/v9"
        ));
        // Flipped byte under a stale checksum.
        let body = "lts-state/v1\n";
        let mut text = format!("{body}checksum\t{:016x}\n", fnv1a(body.as_bytes()));
        text = text.replacen("v1", "v2", 1);
        assert!(matches!(
            parse_snapshot(&text),
            Err(StateError::ChecksumMismatch)
        ));
    }

    #[test]
    fn unknown_route_is_rejected() {
        let body = format!(
            "lts-state/v1\ncache\td\tq\t10\t0\t{z}\t{z}\t{z}\t{z}\t{z}\t5\t0\tbogus\n",
            z = f64_hex(0.0)
        );
        let text = format!("{body}checksum\t{:016x}\n", fnv1a(body.as_bytes()));
        assert!(matches!(
            parse_snapshot(&text),
            Err(StateError::Corrupt { message }) if message.contains("unknown route")
        ));
    }
}
