//! The `lts-serve` stdin/stdout front-end: line-delimited requests in,
//! one JSON response object per line out.
//!
//! The command grammar and its implementation live in
//! [`crate::protocol`] and are shared bit-for-bit with the TCP server
//! ([`crate::net`]); this module only drives that protocol over a
//! `BufRead`/`Write` pair. Example `count` request (the paper's
//! skyband query; conditions use the SQL-ish grammar of
//! `lts_table::parser`, and correlated subqueries may scan the dataset
//! by its registered name):
//!
//! ```text
//! count sports width=0.05 :: (SELECT COUNT(*) FROM sports WHERE \
//!   strikeouts >= o.strikeouts AND wins >= o.wins AND \
//!   (strikeouts > o.strikeouts OR wins > o.wins)) < 87
//! ```
//!
//! With `deterministic` set, wall-time fields are zeroed so a scripted
//! session diffs bit-identically against a golden transcript at any
//! `RAYON_NUM_THREADS`.

use crate::protocol::{handle_line, LineOutcome, SessionState};
use crate::service::{Service, ServiceConfig};
use std::io::{BufRead, Write};

pub use crate::protocol::ReplOptions;

/// Drive the service over a line protocol until EOF, `quit`, or
/// `shutdown` (which acks, then stops — a one-session REPL has nothing
/// else to drain).
///
/// # Errors
///
/// Propagates I/O errors of the underlying reader/writer.
pub fn run_repl<R: BufRead, W: Write>(
    config: ServiceConfig,
    opts: ReplOptions,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    let mut service = Service::new(config);
    let mut session = SessionState::default();
    for line in input.lines() {
        let line = line?;
        match handle_line(&mut service, &mut session, opts, &line) {
            LineOutcome::Silent => {}
            LineOutcome::Reply(reply) => writeln!(output, "{reply}")?,
            LineOutcome::Quit => break,
            LineOutcome::Shutdown(ack) => {
                writeln!(output, "{ack}")?;
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(script: &str) -> Vec<String> {
        let mut out = Vec::new();
        run_repl(
            ServiceConfig::default(),
            ReplOptions {
                deterministic: true,
            },
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn scripted_session_round_trips() {
        let script = "\
# comment lines and blanks are skipped

register sports s rows=600 level=M seed=3
count s budget=100 :: strikeouts < 120
count s budget=100 :: strikeouts < 120
stats
quit
count s budget=100 :: strikeouts < 120
";
        let lines = run(script);
        assert_eq!(lines.len(), 4, "register, 2 counts, stats: {lines:?}");
        assert!(lines[0].contains("\"registered\": \"s\""));
        assert!(lines[1].contains("\"served\": \"cold\""));
        assert!(lines[2].contains("\"served\": \"cached\""));
        assert!(lines[2].contains("\"evals\": 0"));
        assert!(lines[3].contains("\"cached\": 1"));
        // Deterministic mode masks the wall field.
        assert!(lines[1].contains("\"wall_micros\": 0"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let lines = run("count nope budget=10 :: x < 1\nbogus cmd\ncount s ::\nstats\n");
        assert!(lines[0].contains("unknown dataset"));
        assert!(lines[1].contains("unknown command"));
        assert!(lines[2].contains("\"ok\": false"));
        assert!(lines[3].contains("\"ok\": true"));
    }

    #[test]
    fn error_echoes_escape_control_characters() {
        // A parse error echoes request bytes; control characters must
        // come out JSON-escaped, never raw (raw 0x01 would make the
        // response line unparsable for JSON clients).
        let lines = run(
            "register sports s rows=600 level=M seed=3\ncount s budget=100 :: strikeouts < \u{1}\n",
        );
        let err = &lines[1];
        assert!(err.contains("\"ok\": false"), "{err}");
        assert!(
            err.contains("\\u0001"),
            "control char must be escaped: {err}"
        );
        assert!(!err.contains('\u{1}'), "raw control byte leaked: {err}");
    }

    #[test]
    fn shutdown_acks_then_stops() {
        let lines = run("register sports s rows=600 level=M seed=3\nshutdown\nstats\n");
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[1].contains("\"shutting_down\": true"), "{}", lines[1]);
    }
}
