//! The `lts-serve` line protocol: line-delimited requests on stdin,
//! one JSON response object per line on stdout.
//!
//! ```text
//! register <sports|neighbors> <name> rows=<n> level=<XS|S|M|L|XL|XXL> seed=<u64>
//! count <dataset> [width=<frac>|abswidth=<counts>|budget=<n>] [fresh] [id=<u64>] :: <condition>
//! invalidate <dataset>
//! stats
//! quit
//! ```
//!
//! `count` conditions use the SQL-ish grammar of `lts_table::parser`;
//! correlated subqueries may scan the dataset by its registered name,
//! e.g. the skyband query:
//!
//! ```text
//! count sports width=0.05 :: (SELECT COUNT(*) FROM sports WHERE \
//!   strikeouts >= o.strikeouts AND wins >= o.wins AND \
//!   (strikeouts > o.strikeouts OR wins > o.wins)) < 87
//! ```
//!
//! With `deterministic` set, wall-time fields are zeroed so a scripted
//! session diffs bit-identically against a golden transcript at any
//! `RAYON_NUM_THREADS`.

use crate::planner::Target;
use crate::service::{Request, Service, ServiceConfig};
use std::io::{BufRead, Write};

/// REPL options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplOptions {
    /// Zero wall-time fields in every response (golden-diff mode).
    pub deterministic: bool,
}

fn json_err(message: &str) -> String {
    format!(
        "{{\"ok\": false, \"error\": \"{}\"}}",
        crate::service::json_escape(message)
    )
}

fn kv<'a>(tok: &'a str, key: &str) -> Option<&'a str> {
    tok.strip_prefix(key).and_then(|r| r.strip_prefix('='))
}

fn stats_json(service: &Service, opts: ReplOptions) -> String {
    let s = service.stats();
    let _ = opts;
    format!(
        "{{\"ok\": true, \"requests\": {}, \"rejected\": {}, \"errors\": {}, \
         \"exact\": {}, \"cold\": {}, \"warm\": {}, \"cached\": {}, \
         \"oracle_evals\": {}, \"oracle_evals_cold\": {}, \"oracle_evals_warm\": {}, \
         \"oracle_evals_exact\": {}, \"oracle_evals_saved\": {}, \
         \"catalog\": {}, \"store\": {}, \"cache\": {}}}",
        s.requests,
        s.rejected,
        s.errors,
        s.exact,
        s.cold,
        s.warm,
        s.cached,
        s.oracle_evals,
        s.oracle_evals_cold,
        s.oracle_evals_warm,
        s.oracle_evals_exact,
        s.oracle_evals_saved,
        service.catalog_len(),
        service.store_len(),
        service.cache_len(),
    )
}

fn handle_register(service: &mut Service, rest: &str) -> String {
    let toks: Vec<&str> = rest.split_whitespace().collect();
    if toks.len() < 2 {
        return json_err("usage: register <sports|neighbors> <name> rows=<n> level=<L> seed=<s>");
    }
    let (kind, name) = (toks[0], toks[1]);
    let (mut rows, mut level, mut seed) = (4_000usize, "M".to_string(), 11u64);
    for tok in &toks[2..] {
        if let Some(v) = kv(tok, "rows") {
            match v.parse() {
                Ok(n) => rows = n,
                Err(_) => return json_err("bad rows"),
            }
        } else if let Some(v) = kv(tok, "level") {
            level = v.to_string();
        } else if let Some(v) = kv(tok, "seed") {
            match v.parse() {
                Ok(s) => seed = s,
                Err(_) => return json_err("bad seed"),
            }
        } else {
            return json_err(&format!("unknown register option `{tok}`"));
        }
    }
    let level = match level.as_str() {
        "XS" => lts_data::SelectivityLevel::XS,
        "S" => lts_data::SelectivityLevel::S,
        "M" => lts_data::SelectivityLevel::M,
        "L" => lts_data::SelectivityLevel::L,
        "XL" => lts_data::SelectivityLevel::XL,
        "XXL" => lts_data::SelectivityLevel::XXL,
        other => return json_err(&format!("unknown selectivity level `{other}`")),
    };
    let (table, cols) = match kind {
        "sports" => match lts_data::sports_scenario(rows, level, seed) {
            Ok(sc) => (sc.table, ["strikeouts", "wins"]),
            Err(e) => return json_err(&e.to_string()),
        },
        "neighbors" => match lts_data::neighbors_scenario(rows, level, seed) {
            Ok(sc) => (sc.table, ["src_rate", "dst_rate"]),
            Err(e) => return json_err(&e.to_string()),
        },
        other => return json_err(&format!("unknown dataset kind `{other}`")),
    };
    match service.register_dataset(name, table, &cols) {
        Ok(()) => format!(
            "{{\"ok\": true, \"registered\": \"{name}\", \"rows\": {rows}, \
             \"version\": {}}}",
            service.dataset_version(name).unwrap_or(0)
        ),
        Err(e) => json_err(&e.to_string()),
    }
}

fn handle_count(service: &mut Service, rest: &str, next_id: &mut u64, opts: ReplOptions) -> String {
    let Some((head, condition)) = rest.split_once("::") else {
        return json_err("count needs `:: <condition>`");
    };
    let toks: Vec<&str> = head.split_whitespace().collect();
    if toks.is_empty() {
        return json_err("count needs a dataset name");
    }
    let dataset = toks[0].to_string();
    let mut target = Target::RelWidth(0.05);
    let mut fresh = false;
    let mut id: Option<u64> = None;
    for tok in &toks[1..] {
        if let Some(v) = kv(tok, "width") {
            match v.parse() {
                Ok(w) => target = Target::RelWidth(w),
                Err(_) => return json_err("bad width"),
            }
        } else if let Some(v) = kv(tok, "abswidth") {
            match v.parse() {
                Ok(w) => target = Target::AbsWidth(w),
                Err(_) => return json_err("bad abswidth"),
            }
        } else if let Some(v) = kv(tok, "budget") {
            match v.parse() {
                Ok(b) => target = Target::Budget(b),
                Err(_) => return json_err("bad budget"),
            }
        } else if *tok == "fresh" {
            fresh = true;
        } else if let Some(v) = kv(tok, "id") {
            match v.parse() {
                Ok(i) => id = Some(i),
                Err(_) => return json_err("bad id"),
            }
        } else {
            return json_err(&format!("unknown count option `{tok}`"));
        }
    }
    let id = id.unwrap_or_else(|| {
        let i = *next_id;
        *next_id += 1;
        i
    });
    let response = service.run(Request {
        id,
        dataset,
        condition: condition.trim().to_string(),
        target,
        fresh,
    });
    response.to_json(opts.deterministic)
}

/// Drive the service over a line protocol until EOF or `quit`.
///
/// # Errors
///
/// Propagates I/O errors of the underlying reader/writer.
pub fn run_repl<R: BufRead, W: Write>(
    config: ServiceConfig,
    opts: ReplOptions,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    let mut service = Service::new(config);
    let mut next_id = 0u64;
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        let reply = match cmd {
            "quit" | "exit" => break,
            "register" => handle_register(&mut service, rest),
            "count" => handle_count(&mut service, rest, &mut next_id, opts),
            "invalidate" => match service.invalidate(rest.trim()) {
                Ok(()) => format!(
                    "{{\"ok\": true, \"invalidated\": \"{}\", \"version\": {}}}",
                    rest.trim(),
                    service.dataset_version(rest.trim()).unwrap_or(0)
                ),
                Err(e) => json_err(&e.to_string()),
            },
            "stats" => stats_json(&service, opts),
            other => json_err(&format!("unknown command `{other}`")),
        };
        writeln!(output, "{reply}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(script: &str) -> Vec<String> {
        let mut out = Vec::new();
        run_repl(
            ServiceConfig::default(),
            ReplOptions {
                deterministic: true,
            },
            script.as_bytes(),
            &mut out,
        )
        .unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn scripted_session_round_trips() {
        let script = "\
# comment lines and blanks are skipped

register sports s rows=600 level=M seed=3
count s budget=100 :: strikeouts < 120
count s budget=100 :: strikeouts < 120
stats
quit
count s budget=100 :: strikeouts < 120
";
        let lines = run(script);
        assert_eq!(lines.len(), 4, "register, 2 counts, stats: {lines:?}");
        assert!(lines[0].contains("\"registered\": \"s\""));
        assert!(lines[1].contains("\"served\": \"cold\""));
        assert!(lines[2].contains("\"served\": \"cached\""));
        assert!(lines[2].contains("\"evals\": 0"));
        assert!(lines[3].contains("\"cached\": 1"));
        // Deterministic mode masks the wall field.
        assert!(lines[1].contains("\"wall_micros\": 0"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let lines = run("count nope budget=10 :: x < 1\nbogus cmd\ncount s ::\nstats\n");
        assert!(lines[0].contains("unknown dataset"));
        assert!(lines[1].contains("unknown command"));
        assert!(lines[2].contains("\"ok\": false"));
        assert!(lines[3].contains("\"ok\": true"));
    }

    #[test]
    fn error_echoes_escape_control_characters() {
        // A parse error echoes request bytes; control characters must
        // come out JSON-escaped, never raw (raw 0x01 would make the
        // response line unparsable for JSON clients).
        let lines = run(
            "register sports s rows=600 level=M seed=3\ncount s budget=100 :: strikeouts < \u{1}\n",
        );
        let err = &lines[1];
        assert!(err.contains("\"ok\": false"), "{err}");
        assert!(
            err.contains("\\u0001"),
            "control char must be escaped: {err}"
        );
        assert!(!err.contains('\u{1}'), "raw control byte leaked: {err}");
    }
}
