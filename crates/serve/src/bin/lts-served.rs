//! `lts-served`: the counting service as a multi-client TCP server.
//!
//! ```sh
//! cargo run --release -p lts-serve --bin lts-served -- \
//!   [--addr 127.0.0.1:7878] [--deterministic] [--seed <u64>] \
//!   [--max-connections <n>] [--max-line-bytes <n>] \
//!   [--write-queue <n>] [--admission <n>] [--state-dir <path>] \
//!   [--metrics-addr <host:port>] [--trace]
//! ```
//!
//! Speaks the `lts-serve` line protocol over TCP: line-delimited
//! requests in, one JSON response per line out, per connection (see
//! `lts_serve::protocol` / `lts_serve::net`). Graceful shutdown on the
//! `shutdown` command, SIGTERM, or SIGINT: in-flight requests finish
//! and flush, queued-but-unadmitted requests get a `shutting_down`
//! error, the listener closes, and the process exits 0.

use lts_serve::{NetConfig, NetServer};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the signal handler; polled by the watcher thread.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Dependency-free signal registration: std already links libc.
    type Handler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    println!(
        "lts-served: the counting service over TCP (line requests in, JSON per line out)\n\
         options:\n  --addr <host:port>      listen address (default 127.0.0.1:7878; port 0 = OS-assigned)\n  \
         --deterministic         zero wall-time fields in responses\n  \
         --seed <u64>            service seed\n  \
         --max-connections <n>   refuse connections beyond this many (default 64)\n  \
         --max-line-bytes <n>    structured error for longer request lines (default 65536)\n  \
         --write-queue <n>       per-connection response queue bound; overflow drops the\n                          \
         connection (slow-reader policy; default 128)\n  \
         --admission <n>         shared admission queue bound (default 64)\n  \
         --state-dir <path>      durable warm state: restore a snapshot from this directory\n                          \
         at startup and write one atomically at graceful shutdown\n  \
         --metrics-addr <h:p>    also serve a plain-HTTP Prometheus scrape endpoint here\n                          \
         (reads the registry directly; never blocks request serving)\n  \
         --trace                 echo each request's trace span on its response line\n\
         protocol: register / count / invalidate / stats / metrics / trace / slow /\n\
         quit / shutdown (see lts-serve --help)"
    );
    std::process::exit(0)
}

fn main() {
    let mut config = NetConfig::default();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut args = std::env::args().skip(1);
    let parse_usize = |args: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        match args.next().and_then(|v| v.parse().ok()) {
            Some(v) => v,
            None => {
                eprintln!("{flag} needs a positive integer value");
                std::process::exit(2);
            }
        }
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("--addr needs a host:port value");
                    std::process::exit(2);
                }
            },
            "--deterministic" => config.repl.deterministic = true,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(seed) => config.service.seed = seed,
                None => {
                    eprintln!("--seed needs a u64 value");
                    std::process::exit(2);
                }
            },
            "--max-connections" => {
                config.max_connections = parse_usize(&mut args, "--max-connections")
            }
            "--max-line-bytes" => {
                config.max_line_bytes = parse_usize(&mut args, "--max-line-bytes")
            }
            "--write-queue" => {
                config.write_queue_capacity = parse_usize(&mut args, "--write-queue")
            }
            "--admission" => config.admission_capacity = parse_usize(&mut args, "--admission"),
            "--state-dir" => match args.next() {
                Some(p) => config.state_dir = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("--state-dir needs a directory path");
                    std::process::exit(2);
                }
            },
            "--metrics-addr" => match args.next() {
                Some(a) => config.metrics_addr = Some(a),
                None => {
                    eprintln!("--metrics-addr needs a host:port value");
                    std::process::exit(2);
                }
            },
            "--trace" => config.service.trace = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown option `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }

    install_signal_handlers();
    let server = match NetServer::bind(addr.as_str(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lts-served: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("lts-served: listening on {}", server.local_addr());
    if let Some(m) = server.metrics_addr() {
        eprintln!("lts-served: metrics on http://{m}/metrics");
    }

    // Watcher: translate signals into graceful shutdown. The thread
    // dies with the process after `join` returns.
    {
        let trigger = server.shutdown_handle();
        std::thread::spawn(move || loop {
            if SIGNALLED.load(Ordering::SeqCst) {
                trigger();
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    server.join();
    eprintln!("lts-served: drained, exiting");
}
