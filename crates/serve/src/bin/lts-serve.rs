//! `lts-serve`: the counting service as a stdin/stdout REPL.
//!
//! ```sh
//! cargo run --release -p lts-serve --bin lts-serve -- [--deterministic] [--seed <u64>]
//! ```
//!
//! Reads line-delimited requests on stdin, writes one JSON response per
//! line on stdout (protocol: see `lts_serve::repl`). `--deterministic`
//! zeroes wall-time fields so a scripted session diffs bit-identically
//! against a golden transcript at any thread count.

use lts_serve::{run_repl, ReplOptions, ServiceConfig};
use std::io::{BufReader, BufWriter, Write as _};

fn main() {
    let mut opts = ReplOptions::default();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deterministic" => opts.deterministic = true,
            "--trace" => config.trace = true,
            "--seed" => {
                let v = args.next().and_then(|v| v.parse().ok());
                match v {
                    Some(seed) => config.seed = seed,
                    None => {
                        eprintln!("--seed needs a u64 value");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "lts-serve: line-delimited count requests on stdin, JSON on stdout\n\
                     options: --deterministic (zero wall times), --trace (echo trace spans),\n\
                     --seed <u64>\n\
                     protocol:\n  register <sports|neighbors> <name> rows=<n> level=<L> seed=<s>\n  \
                     count <dataset> [width=<f>|abswidth=<c>|budget=<n>] [fresh] [id=<u64>] :: <condition>\n  \
                     invalidate <dataset>\n  stats\n  metrics [prom]\n  trace <id>\n  slow [k]\n  quit"
                );
                return;
            }
            other => {
                eprintln!("unknown option `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    if let Err(e) = run_repl(config, opts, BufReader::new(stdin.lock()), &mut out) {
        eprintln!("lts-serve: I/O error: {e}");
        std::process::exit(1);
    }
    let _ = out.flush();
}
