//! The in-process counting service.
//!
//! # Request lifecycle
//!
//! ```text
//! condition ──parse──► Expr ──normalize──► canonical ──► fingerprint
//!     │                                         │
//!     │                              QueryCatalog (problem, meter,
//!     │                                 decomposition, plan state)
//!     │                                         │
//!     ├── decomposed? exact prefilter scan ─► restricted residual plan
//!     ├── ResultCache hit? ──────────────► respond (0 evals, "cached")
//!     ├── planner: N small / target tight ─► exact census ("exact")
//!     ├── ModelStore hit? ────────────────► resume stage 2 ("warm")
//!     └── else: prepare (train+order+pilot+design), store, resume ("cold")
//! ```
//!
//! # Query planning
//!
//! A conjunctive query that splits into a subquery-free prefilter and
//! an oracle-bearing residual (`lts_table::decompose`) is planned in
//! two stages: the prefilter runs as a vectorized exact scan
//! (`lts_core::plan::select_prefilter`), and the planner then chooses
//! — census, exact residual census over the survivors, restricted
//! estimate, or fall back to the monolithic plan when the prefilter is
//! unselective ([`BudgetPlanner::choose`]). Scan outcomes feed a
//! [`SelectivityFeedback`] ledger keyed by canonical prefilter, so a
//! prefilter already known to be unselective routes monolithically
//! without re-scanning. Restricted warm states are stored under the
//! **residual** canonical scoped by the **prefilter** canonical
//! ([`StoreKey::scope`]); the result cache keys on the full canonical,
//! so decomposed spellings alias their monolithic twin.
//!
//! # Determinism
//!
//! Every response is a pure function of `(service seed, dataset
//! content + version, canonical query, planned budget, request id)` —
//! *never* of worker interleaving or arrival order:
//!
//! * model/design states are prepared under a seed derived from the
//!   **canonical query** (not the request that happened to arrive
//!   first), so whichever request triggers preparation, the state is
//!   bit-identical;
//! * cacheable (non-`fresh`) estimates run under a seed derived from
//!   the **cache key**, so the computed result is the same no matter
//!   which request computes it;
//! * `fresh` requests run under a seed derived from the **request id**
//!   — re-submitting the same id replays bit-identically;
//! * batches are admitted sequentially (the bounded queue) and heavy
//!   work fans out over the rayon worker pool in two barriers
//!   (prepare, then estimate), each a parallel map whose outputs are
//!   position-stable.
//!
//! The CI thread sweep (1 worker vs default) diffs whole response
//! streams with wall times masked.

use crate::cache::{CachedResult, ResultCache, ResultKey, StalenessPolicy};
use crate::catalog::{PlanState, QueryCatalog, QueryDecomposition, QueryKey};
use crate::error::{ServeError, ServeResult};
use crate::fingerprint;
use crate::planner::{BudgetPlanner, QueryRoute, Route, SelectivityFeedback, Target};
use crate::store::{ModelStore, StoreKey, StoredModel, WarmState};
use lts_core::{
    fnv1a, mix_seed, restrict_problem, select_prefilter, CountEstimator, CountingProblem, Lss, Lws,
    ShardPlan, Srs,
};
use lts_obs::{
    Counter, Gauge, Histogram, MetricsRegistry, Observability, SlowEntry, Trace, TraceEvent,
};
use lts_table::{
    decompose, parse_condition, DecomposedQuery, ExprPredicate, ObjectPredicate, PartitionedTable,
    Table, TableRegistry,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// The serve-tuned LSS profile: budget deliberately shifted into the
/// *reusable* phases (training 50%, pilot 65% of the sampling half), so
/// a warm start — which replays only stage 2 — spends ≥ 5× fewer
/// oracle evaluations than its cold start at the same designed CI
/// width. One-shot library use keeps `Lss::default()`; a service
/// amortizes the reusable phases across every repeat, which is the
/// paper's economic argument for learning to sample at all.
pub fn serve_lss_profile() -> Lss {
    Lss {
        train_frac: 0.5,
        pilot_frac: 0.65,
        min_pilots_per_stratum: 3,
        ..Lss::default()
    }
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Root seed of every derived seed stream.
    pub seed: u64,
    /// Bounded request queue: requests beyond this many per batch are
    /// rejected at admission.
    pub queue_capacity: usize,
    /// The admission planner.
    pub planner: BudgetPlanner,
    /// Result-cache staleness policy.
    pub staleness: StalenessPolicy,
    /// LSS profile for learned estimates (see [`serve_lss_profile`]).
    pub lss: Lss,
    /// LWS profile (used only for imported `lws` store entries).
    pub lws: Lws,
    /// Shards for cold estimates (1 = unsharded). With more than one
    /// shard, cold prepares run the full pipeline independently per
    /// shard of a [`ShardPlan::uniform`] layout — pure arithmetic over
    /// `N`, never thread- or partition-dependent — and merge the shard
    /// estimators with composed variance. Warm resumes replay whatever
    /// layout their state was prepared under.
    pub shards: usize,
    /// Echo each response's trace span as a `"trace"` field on the
    /// response JSON. Off by default, so existing response lines stay
    /// byte-identical; the span is still collected into the trace ring
    /// either way (when observability is enabled).
    pub trace: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            seed: 0x5345_5256_4531,
            queue_capacity: 64,
            planner: BudgetPlanner::default(),
            staleness: StalenessPolicy::default(),
            lss: serve_lss_profile(),
            lws: Lws::default(),
            shards: 1,
            trace: false,
        }
    }
}

/// One count request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id; the replay key of `fresh` requests.
    pub id: u64,
    /// Registered dataset name.
    pub dataset: String,
    /// SQL-ish predicate text (the `lts_table::parser` grammar;
    /// subqueries may reference the dataset by its registered name).
    pub condition: String,
    /// Accuracy target or explicit budget.
    pub target: Target,
    /// `true` forces a fresh estimate (bypasses the result cache but
    /// still warm-starts from the model store).
    pub fresh: bool,
}

/// How a decomposed query was physically planned, echoed on its
/// responses. Absent for queries that do not decompose (and under the
/// forced-monolithic planner), so undecomposed response lines are
/// byte-identical to the pre-planning format.
#[derive(Debug, Clone)]
pub struct PlanSummary {
    /// Route kind: `census`, `monolithic`, `exact_prefilter`, or
    /// `prefilter_estimate`.
    pub kind: &'static str,
    /// Canonical prefilter conjunction.
    pub prefilter: String,
    /// Canonical residual conjunction.
    pub residual: String,
    /// Full population size `N`.
    pub population: usize,
    /// Prefilter survivor count `M` — reported only on prefilter
    /// routes. Monolithic routes report `None` whether or not a scan
    /// ran, so the response never depends on which request arrived
    /// first (a selectivity-feedback hit skips the scan).
    pub survivors: Option<usize>,
    /// Observed selectivity `M/N`, under the same rule as `survivors`.
    pub selectivity: Option<f64>,
}

/// One response. All fields except `wall_micros` are deterministic for
/// a fixed service seed and request stream.
#[derive(Debug, Clone)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// Whether the request produced an estimate.
    pub ok: bool,
    /// Error description when `ok` is false.
    pub error: Option<String>,
    /// Compact query id (hash of dataset, table version, canonical).
    pub fingerprint: u64,
    /// Execution route: `exact`, `lss`, or `srs` (empty on errors).
    pub route: &'static str,
    /// What served it: `cold`, `warm`, `cached`, `exact`, `error`, or
    /// `rejected`.
    pub served: &'static str,
    /// Point estimate of the count.
    pub estimate: f64,
    /// Standard error (0 for exact/cached-exact).
    pub std_error: f64,
    /// Confidence-interval bounds.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level of the interval.
    pub level: f64,
    /// Fresh oracle evaluations this request spent.
    pub evals: usize,
    /// Planned labeling budget (0 on the exact route).
    pub budget: usize,
    /// Digest of the warm state that produced the estimate (0 for
    /// exact/srs).
    pub model_version: u64,
    /// Table version answered against.
    pub table_version: u64,
    /// Wall time of this request's execution, in microseconds
    /// (non-deterministic; maskable in replay diffs).
    pub wall_micros: u64,
    /// Physical plan of a decomposed query (`None` for queries that do
    /// not decompose).
    pub plan: Option<PlanSummary>,
    /// The request's trace span, present only when
    /// [`ServiceConfig::trace`] is on and observability is enabled.
    /// Rendered under the same `mask_wall` flag as the rest of the
    /// response, so deterministic replays diff clean.
    pub trace: Option<Trace>,
}

impl Response {
    fn empty(id: u64) -> Self {
        Response {
            id,
            ok: false,
            error: None,
            fingerprint: 0,
            route: "",
            served: "error",
            estimate: 0.0,
            std_error: 0.0,
            lo: 0.0,
            hi: 0.0,
            level: 0.0,
            evals: 0,
            budget: 0,
            model_version: 0,
            table_version: 0,
            wall_micros: 0,
            plan: None,
            trace: None,
        }
    }

    fn failed(id: u64, err: &ServeError) -> Self {
        Response {
            error: Some(err.to_string()),
            served: if matches!(err, ServeError::Overloaded { .. }) {
                "rejected"
            } else {
                "error"
            },
            ..Response::empty(id)
        }
    }

    /// Render as one JSON object (stable key order). `mask_wall`
    /// zeroes the wall-time field so deterministic replays diff clean.
    pub fn to_json(&self, mask_wall: bool) -> String {
        let esc = json_escape;
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let plan = match &self.plan {
            Some(p) => format!(
                ", \"plan\": {{\"kind\": \"{}\", \"prefilter\": \"{}\", \
                 \"residual\": \"{}\", \"population\": {}, \"survivors\": {}, \
                 \"selectivity\": {}}}",
                p.kind,
                esc(&p.prefilter),
                esc(&p.residual),
                p.population,
                p.survivors
                    .map_or_else(|| "null".to_string(), |s| s.to_string()),
                p.selectivity.map_or_else(|| "null".to_string(), num),
            ),
            None => String::new(),
        };
        format!(
            "{{\"id\": {}, \"ok\": {}, \"served\": \"{}\", \"route\": \"{}\", \
             \"fingerprint\": \"{:016x}\", \"estimate\": {}, \"std_error\": {}, \
             \"lo\": {}, \"hi\": {}, \"level\": {}, \"evals\": {}, \"budget\": {}, \
             \"model_version\": \"{:016x}\", \"table_version\": {}, \
             \"wall_micros\": {}{}{}{}}}",
            self.id,
            self.ok,
            self.served,
            self.route,
            self.fingerprint,
            num(self.estimate),
            num(self.std_error),
            num(self.lo),
            num(self.hi),
            num(self.level),
            self.evals,
            self.budget,
            self.model_version,
            self.table_version,
            if mask_wall { 0 } else { self.wall_micros },
            plan,
            match &self.trace {
                Some(t) => format!(", \"trace\": {}", t.to_json(mask_wall)),
                None => String::new(),
            },
            match &self.error {
                Some(e) => format!(", \"error\": \"{}\"", esc(e)),
                None => String::new(),
            },
        )
    }
}

/// Escape a string for embedding in a JSON string literal: quotes,
/// backslashes, and **every** control character (parse errors can echo
/// arbitrary request bytes; a raw control byte would make the response
/// line invalid JSON).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Aggregate service counters (all deterministic).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests admitted (including errors).
    pub requests: u64,
    /// Requests rejected at the queue bound.
    pub rejected: u64,
    /// Requests that failed (parse/plan/execution).
    pub errors: u64,
    /// Responses served by the exact census.
    pub exact: u64,
    /// Cold starts (prepared a model/design).
    pub cold: u64,
    /// Warm starts (resumed a stored state).
    pub warm: u64,
    /// Result-cache hits (including in-batch coalescing).
    pub cached: u64,
    /// Fresh oracle evaluations spent, total.
    pub oracle_evals: u64,
    /// … spent by cold starts (prepare + stage 2).
    pub oracle_evals_cold: u64,
    /// … spent by warm starts (stage 2 only).
    pub oracle_evals_warm: u64,
    /// … spent by exact censuses.
    pub oracle_evals_exact: u64,
    /// Oracle evaluations cache hits would have cost (the savings).
    pub oracle_evals_saved: u64,
}

/// Recipe of a generated dataset (the `register` protocol command):
/// enough to re-generate the identical table on restart, which is what
/// the durable-state snapshot persists instead of raw rows.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DatasetSpec {
    /// Generator kind: `sports` or `neighbors`.
    pub kind: String,
    /// Row count.
    pub rows: usize,
    /// Selectivity level name (`XS` … `XXL`).
    pub level: String,
    /// Generator seed.
    pub seed: u64,
}

struct DatasetState {
    table: PartitionedTable,
    feature_cols: Vec<String>,
    registry: TableRegistry,
    /// Present for datasets registered through a generator recipe;
    /// `None` for tables handed in directly (those cannot be
    /// re-generated and are not persisted by the state snapshot).
    spec: Option<DatasetSpec>,
}

/// The in-process concurrent counting service.
pub struct Service {
    config: ServiceConfig,
    datasets: HashMap<String, DatasetState>,
    catalog: QueryCatalog,
    store: ModelStore,
    cache: ResultCache,
    stats: ServiceStats,
    feedback: SelectivityFeedback,
    obs: Observability,
    metrics: Arc<ServeMetrics>,
}

/// Pre-resolved metric handles. [`lts_obs::MetricsRegistry`] lookups
/// take a map lock and allocate the key on every call; the request hot
/// path instead resolves every fixed-name handle once, here, at
/// service construction. A side effect that the metrics surface
/// relies on: every fixed-name metric exists (at zero) from the first
/// snapshot, so expositions have a stable key set.
struct ServeMetrics {
    registry: MetricsRegistry,
    requests_total: Counter,
    requests_rejected: Counter,
    requests_errors: Counter,
    served_cached: Counter,
    served_warm: Counter,
    served_cold: Counter,
    served_exact: Counter,
    served_fallback: Counter,
    served_followers: Counter,
    oracle_evals_total: Counter,
    oracle_evals_saved_cache: Counter,
    oracle_evals_saved_warm: Counter,
    evals_train: Counter,
    evals_score: Counter,
    evals_pilot: Counter,
    evals_design: Counter,
    evals_stage2: Counter,
    evals_exact: Counter,
    evals_srs: Counter,
    evals_sharded: Counter,
    pages_evaluated: Counter,
    pages_skipped: Counter,
    store_prepares: Counter,
    store_resumes: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    store_entries: Gauge,
    cache_entries: Gauge,
    datasets: Gauge,
    request_evals: Histogram,
    wall_request_micros: Histogram,
}

impl ServeMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            registry: registry.clone(),
            requests_total: registry.counter("requests_total"),
            requests_rejected: registry.counter("requests_rejected"),
            requests_errors: registry.counter("requests_errors"),
            served_cached: registry.counter("served_cached"),
            served_warm: registry.counter("served_warm"),
            served_cold: registry.counter("served_cold"),
            served_exact: registry.counter("served_exact"),
            served_fallback: registry.counter("served_fallback"),
            served_followers: registry.counter("served_followers"),
            oracle_evals_total: registry.counter("oracle_evals_total"),
            oracle_evals_saved_cache: registry.counter("oracle_evals_saved_cache"),
            oracle_evals_saved_warm: registry.counter("oracle_evals_saved_warm"),
            evals_train: registry.counter("evals_train"),
            evals_score: registry.counter("evals_score"),
            evals_pilot: registry.counter("evals_pilot"),
            evals_design: registry.counter("evals_design"),
            evals_stage2: registry.counter("evals_stage2"),
            evals_exact: registry.counter("evals_exact"),
            evals_srs: registry.counter("evals_srs"),
            evals_sharded: registry.counter("evals_sharded"),
            pages_evaluated: registry.counter("pages_evaluated"),
            pages_skipped: registry.counter("pages_skipped"),
            store_prepares: registry.counter("store_prepares"),
            store_resumes: registry.counter("store_resumes"),
            cache_hits: registry.counter("cache_hits"),
            cache_misses: registry.counter("cache_misses"),
            store_entries: registry.gauge("store_entries"),
            cache_entries: registry.gauge("cache_entries"),
            datasets: registry.gauge("datasets"),
            request_evals: registry.histogram("request_evals", EVALS_BOUNDS),
            wall_request_micros: registry.histogram("wall_request_micros", WALL_BOUNDS),
        }
    }

    /// Attribute phase evals to the matching partition counter.
    /// Unknown phase names (none today) pay the registry lookup.
    fn add_phase_evals(&self, phase: &str, evals: u64) {
        match phase {
            "train" => self.evals_train.add(evals),
            "score" => self.evals_score.add(evals),
            "pilot" => self.evals_pilot.add(evals),
            "design" => self.evals_design.add(evals),
            "stage2" => self.evals_stage2.add(evals),
            "exact" => self.evals_exact.add(evals),
            other => self.registry.counter(&format!("evals_{other}")).add(evals),
        }
    }
}

// ------------------------------------------------------------ internals

/// A resolved query: the catalog entry's artifacts, cloned out so the
/// borrow on the catalog ends before planning mutates other state.
struct ResolvedQuery {
    canonical: String,
    fingerprint: u64,
    table_version: u64,
    problem: Arc<CountingProblem>,
    decomposition: Option<Arc<QueryDecomposition>>,
}

/// Execution route after planning (the physical analogue of
/// [`Route`]): which problem to run, under what store identity.
enum PlannedRoute {
    /// Census over `exec_problem` (the full population, or the
    /// prefilter survivors — whichever the plan restricted to).
    Exact,
    /// The prefilter kept no rows: the count is exactly 0 and nothing
    /// executes (zero oracle evaluations).
    ExactEmpty,
    /// Estimate over `exec_problem` under this budget.
    Estimate { budget: usize },
}

/// The physical plan of one admitted request.
struct PlannedQuery {
    route: PlannedRoute,
    /// The problem execution runs against: the catalog problem for
    /// monolithic plans, the restricted residual problem for prefilter
    /// plans.
    exec_problem: Arc<CountingProblem>,
    /// Canonical string the model store keys on (full query for
    /// monolithic, residual for prefiltered).
    store_canonical: String,
    /// Store scope (empty for monolithic, canonical prefilter for
    /// prefiltered — see [`StoreKey::scope`]).
    store_scope: String,
    /// Plan echo for the response (`None` for undecomposed queries).
    summary: Option<PlanSummary>,
}

struct Admitted {
    pos: usize,
    id: u64,
    dataset: String,
    canonical: String,
    raw: String,
    fingerprint: u64,
    table_version: u64,
    planned: PlannedQuery,
    fresh: bool,
}

enum ComputeKind {
    Exact,
    ExactEmpty,
    Resume { store_key: StoreKey },
    SrsFallback,
}

struct ComputeItem {
    pos: usize,
    kind: ComputeKind,
    problem: Arc<CountingProblem>,
    seed: u64,
    budget: usize,
    is_cold: bool,
    cache_key: Option<ResultKey>,
}

struct Computed {
    pos: usize,
    result: ServeResult<ComputedOk>,
    wall_micros: u64,
}

struct ComputedOk {
    estimate: f64,
    std_error: f64,
    lo: f64,
    hi: f64,
    level: f64,
    evals: usize,
    route: &'static str,
    model_version: u64,
}

impl Service {
    /// Create a service with default observability (metrics registry
    /// on, 256-trace ring, top-16 slow log).
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_observability(config, Observability::default())
    }

    /// Create a service with an explicit observability bundle — share
    /// one registry across services, or pass
    /// [`Observability::disabled`] to make every telemetry touchpoint
    /// a no-op (the overhead baseline `bench_obs` measures against).
    pub fn with_observability(config: ServiceConfig, obs: Observability) -> Self {
        let metrics = Arc::new(ServeMetrics::new(&obs.registry));
        Self {
            config,
            datasets: HashMap::new(),
            catalog: QueryCatalog::new(),
            store: ModelStore::new(),
            cache: ResultCache::new(config.staleness),
            stats: ServiceStats::default(),
            feedback: SelectivityFeedback::new(),
            obs,
            metrics,
        }
    }

    /// The service's observability bundle (registry, trace ring, slow
    /// log) — the surface behind the `metrics` / `trace` / `slow`
    /// protocol commands and the Prometheus scrape endpoint.
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Register (or replace) a dataset. Replacing bumps the version and
    /// invalidates every derived artifact.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown/non-numeric feature columns.
    pub fn register_dataset(
        &mut self,
        name: &str,
        table: Arc<Table>,
        feature_cols: &[&str],
    ) -> ServeResult<()> {
        for c in feature_cols {
            table.floats(c)?;
        }
        // A replacement keeps the version lineage and bumps it once
        // (via the shared invalidation path below).
        let existing = self.datasets.get(name).map(|ds| ds.table.version());
        let registry = TableRegistry::new().register(name, Arc::clone(&table));
        let state = DatasetState {
            table: PartitionedTable::auto(table).with_version(existing.unwrap_or(0)),
            feature_cols: feature_cols.iter().map(|s| s.to_string()).collect(),
            registry,
            spec: None,
        };
        self.datasets.insert(name.to_string(), state);
        if existing.is_some() {
            self.invalidate(name)?;
        }
        Ok(())
    }

    /// Register (or replace) a dataset from a generator recipe — the
    /// path behind the protocol's `register` command. The recipe is
    /// recorded so the durable-state snapshot can re-generate the
    /// identical table on restart.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Invalid`] for an unknown kind or level, or
    /// a generator/registration failure.
    pub fn register_generated(&mut self, name: &str, spec: &DatasetSpec) -> ServeResult<()> {
        let invalid = |message: String| ServeError::Invalid { message };
        let level = match spec.level.as_str() {
            "XS" => lts_data::SelectivityLevel::XS,
            "S" => lts_data::SelectivityLevel::S,
            "M" => lts_data::SelectivityLevel::M,
            "L" => lts_data::SelectivityLevel::L,
            "XL" => lts_data::SelectivityLevel::XL,
            "XXL" => lts_data::SelectivityLevel::XXL,
            other => return Err(invalid(format!("unknown selectivity level `{other}`"))),
        };
        let (table, cols) = match spec.kind.as_str() {
            "sports" => (
                lts_data::sports_scenario(spec.rows, level, spec.seed)
                    .map_err(|e| invalid(e.to_string()))?
                    .table,
                ["strikeouts", "wins"],
            ),
            "neighbors" => (
                lts_data::neighbors_scenario(spec.rows, level, spec.seed)
                    .map_err(|e| invalid(e.to_string()))?
                    .table,
                ["src_rate", "dst_rate"],
            ),
            other => return Err(invalid(format!("unknown dataset kind `{other}`"))),
        };
        self.register_dataset(name, table, &cols)?;
        if let Some(ds) = self.datasets.get_mut(name) {
            ds.spec = Some(spec.clone());
        }
        Ok(())
    }

    /// The generator recipes of every re-generatable dataset, with the
    /// current table version — the dataset section of a state snapshot.
    /// Sorted by name for stable output.
    pub fn dataset_specs(&self) -> Vec<(String, DatasetSpec, u64)> {
        let mut out: Vec<(String, DatasetSpec, u64)> = self
            .datasets
            .iter()
            .filter_map(|(name, ds)| {
                ds.spec
                    .as_ref()
                    .map(|spec| (name.clone(), spec.clone(), ds.table.version()))
            })
            .collect();
        out.sort();
        out
    }

    /// Every live result-cache entry, sorted by key — the cache section
    /// of a state snapshot.
    pub fn cache_entries(&self) -> Vec<(ResultKey, CachedResult)> {
        let mut out: Vec<(ResultKey, CachedResult)> = self
            .cache
            .entries()
            .map(|(k, e)| (k.clone(), e.clone()))
            .collect();
        out.sort_by(|a, b| {
            (&a.0.dataset, &a.0.canonical, a.0.budget).cmp(&(
                &b.0.dataset,
                &b.0.canonical,
                b.0.budget,
            ))
        });
        out
    }

    /// Re-insert a cached result restored from a state snapshot (the
    /// serve counter restarts at zero; the staleness clock restarts
    /// now).
    #[allow(clippy::too_many_arguments)]
    pub fn restore_cached(
        &mut self,
        key: ResultKey,
        count: f64,
        std_error: f64,
        lo: f64,
        hi: f64,
        level: f64,
        evals_spent: usize,
        model_version: u64,
        table_version: u64,
        route: &'static str,
    ) {
        self.cache.insert(
            key,
            count,
            std_error,
            lo,
            hi,
            level,
            evals_spent,
            model_version,
            table_version,
            route,
        );
    }

    /// Bump a dataset's version and drop every artifact derived from it
    /// (catalog problems, warm states, cached results). Use after
    /// mutating the backing data out-of-band.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown dataset.
    pub fn invalidate(&mut self, name: &str) -> ServeResult<()> {
        let ds = self
            .datasets
            .get_mut(name)
            .ok_or_else(|| ServeError::UnknownDataset { name: name.into() })?;
        ds.table.bump_version();
        self.catalog.invalidate_dataset(name);
        self.store.invalidate_dataset(name);
        self.cache.invalidate_dataset(name);
        self.feedback.invalidate_dataset(name);
        Ok(())
    }

    /// Current version stamp of a dataset.
    pub fn dataset_version(&self, name: &str) -> Option<u64> {
        self.datasets.get(name).map(|d| d.table.version())
    }

    /// Population size of a dataset.
    pub fn dataset_len(&self, name: &str) -> Option<usize> {
        self.datasets.get(name).map(|d| d.table.len())
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Distinct queries seen.
    pub fn catalog_len(&self) -> usize {
        self.catalog.len()
    }

    /// Warm states held.
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// Cached results held.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Serve one request (a batch of one).
    pub fn run(&mut self, request: Request) -> Response {
        self.run_batch(vec![request]).pop().expect("one response")
    }

    /// Serve a batch: sequential admission (bounded queue, planning,
    /// cache consultation), then two parallel waves over the rayon
    /// worker pool — prepare missing warm states, then execute the
    /// per-request work. Responses align with the input order.
    pub fn run_batch(&mut self, requests: Vec<Request>) -> Vec<Response> {
        let n_req = requests.len();
        let mut responses: Vec<Option<Response>> = (0..n_req).map(|_| None).collect();
        let tracing = self.obs.is_enabled();
        let metrics = Arc::clone(&self.metrics);
        // Trace events gathered so far, per request position. Admission
        // runs under a collector so planning-time emissions (the
        // prefilter scan) land in the right request's span.
        let mut spans: HashMap<usize, Vec<TraceEvent>> = HashMap::new();

        // ---------------------------------------------- admission (seq)
        let mut admitted: Vec<Admitted> = Vec::new();
        for (pos, req) in requests.into_iter().enumerate() {
            if pos >= self.config.queue_capacity {
                self.stats.rejected += 1;
                metrics.requests_rejected.inc();
                responses[pos] = Some(Response::failed(
                    req.id,
                    &ServeError::Overloaded {
                        capacity: self.config.queue_capacity,
                    },
                ));
                continue;
            }
            self.stats.requests += 1;
            metrics.requests_total.inc();
            let (outcome, events) = if tracing {
                lts_obs::trace::collect(|| self.admit(pos, req))
            } else {
                (self.admit(pos, req), Vec::new())
            };
            match outcome {
                Ok(adm) => {
                    if tracing {
                        spans.insert(pos, events);
                    }
                    admitted.push(adm);
                }
                Err((id, e)) => {
                    self.stats.errors += 1;
                    metrics.requests_errors.inc();
                    responses[pos] = Some(Response::failed(id, &e));
                }
            }
        }

        // Deterministic flag/seed assignment processes admitted requests
        // in request-id order (ties broken by arrival position).
        admitted.sort_by_key(|a| (a.id, a.pos));

        // ------------------------- cache consult + work planning (seq)
        let mut compute: Vec<ComputeItem> = Vec::new();
        // Cacheable computations already claimed in this batch:
        // cache key → position of the computing request.
        let mut in_flight: HashMap<ResultKey, usize> = HashMap::new();
        // Followers to fill from a computing request's response.
        let mut followers: Vec<(usize, usize, u64)> = Vec::new(); // (pos, leader_pos, id)
                                                                  // Store keys needing preparation this batch.
        let mut needed: Vec<(StoreKey, Arc<CountingProblem>, u64, String)> = Vec::new();
        let mut needed_seen: HashSet<StoreKey> = HashSet::new();
        // Which store keys were missing (their first resumer is "cold").
        let mut cold_claimed: HashSet<StoreKey> = HashSet::new();

        for adm in &admitted {
            let budget = match adm.planned.route {
                PlannedRoute::Exact | PlannedRoute::ExactEmpty => 0,
                PlannedRoute::Estimate { budget } => budget,
            };
            // The result cache keys on the FULL canonical query, so a
            // decomposed spelling aliases its monolithic twin.
            let cache_key = ResultKey {
                dataset: adm.dataset.clone(),
                canonical: adm.canonical.clone(),
                budget,
            };
            if !adm.fresh {
                if let Some(hit) = self.cache.lookup(&cache_key, adm.table_version) {
                    self.stats.cached += 1;
                    self.stats.oracle_evals_saved += hit.evals_spent as u64;
                    metrics.served_cached.inc();
                    metrics.cache_hits.inc();
                    metrics.oracle_evals_saved_cache.add(hit.evals_spent as u64);
                    let mut response = Response {
                        id: adm.id,
                        ok: true,
                        error: None,
                        fingerprint: adm.fingerprint,
                        route: hit.route,
                        served: "cached",
                        estimate: hit.count,
                        std_error: hit.std_error,
                        lo: hit.lo,
                        hi: hit.hi,
                        level: hit.level,
                        evals: 0,
                        budget,
                        model_version: hit.model_version,
                        table_version: adm.table_version,
                        wall_micros: 0,
                        plan: adm.planned.summary.clone(),
                        trace: None,
                    };
                    if tracing {
                        let mut events = vec![TraceEvent::Route {
                            route: response.route,
                            kind: plan_kind(&adm.planned),
                        }];
                        events.extend(spans.remove(&adm.pos).unwrap_or_default());
                        events.push(TraceEvent::Cache { outcome: "hit" });
                        events.push(TraceEvent::Served {
                            served: "cached",
                            evals: 0,
                            wall_micros: 0,
                        });
                        self.finish_span(adm.id, adm.fingerprint, &mut response, events);
                    }
                    responses[adm.pos] = Some(response);
                    continue;
                }
                metrics.cache_misses.inc();
                // In-batch coalescing: identical cacheable requests are
                // computed once (single-flight); the rest are "cached".
                if let Some(&leader_pos) = in_flight.get(&cache_key) {
                    followers.push((adm.pos, leader_pos, adm.id));
                    continue;
                }
                in_flight.insert(cache_key.clone(), adm.pos);
                if tracing {
                    spans
                        .entry(adm.pos)
                        .or_default()
                        .push(TraceEvent::Cache { outcome: "miss" });
                }
            } else if tracing {
                spans.entry(adm.pos).or_default().push(TraceEvent::Cache {
                    outcome: "bypass-fresh",
                });
            }

            let (kind, is_cold) = match adm.planned.route {
                PlannedRoute::Exact => (ComputeKind::Exact, false),
                PlannedRoute::ExactEmpty => (ComputeKind::ExactEmpty, false),
                PlannedRoute::Estimate { budget } => {
                    let store_key = StoreKey {
                        dataset: adm.dataset.clone(),
                        canonical: adm.planned.store_canonical.clone(),
                        scope: adm.planned.store_scope.clone(),
                        budget,
                    };
                    // Evict any stale state now (sequential), so the
                    // parallel wave reads immutably.
                    let present = self.store.lookup(&store_key, adm.table_version).is_some();
                    let is_cold = if present {
                        false
                    } else {
                        if needed_seen.insert(store_key.clone()) {
                            needed.push((
                                store_key.clone(),
                                Arc::clone(&adm.planned.exec_problem),
                                adm.table_version,
                                adm.raw.clone(),
                            ));
                        }
                        // First (lowest-id) resumer of a freshly
                        // prepared state reports the cold start.
                        cold_claimed.insert(store_key.clone())
                    };
                    (ComputeKind::Resume { store_key }, is_cold)
                }
            };
            let seed = if adm.fresh {
                mix_seed(self.config.seed, mix_seed(adm.id, 0x0046_5245_5348))
            } else {
                mix_seed(self.config.seed, result_key_hash(&cache_key))
            };
            compute.push(ComputeItem {
                pos: adm.pos,
                kind,
                problem: Arc::clone(&adm.planned.exec_problem),
                seed,
                budget,
                is_cold,
                cache_key: (!adm.fresh).then_some(cache_key),
            });
        }

        // ------------------------------- wave 1: prepare states (par)
        let lss = self.config.lss;
        let service_seed = self.config.seed;
        let shards = self.config.shards.max(1);
        let prepared: Vec<Prepared> = needed
            .into_par_iter()
            .map(|(key, problem, table_version, raw)| {
                let work = || {
                    let prepare_seed = mix_seed(service_seed, store_key_hash(&key, table_version));
                    let state = if shards > 1 {
                        ShardPlan::uniform(problem.n(), shards).and_then(|plan| {
                            lss.prepare_sharded(&problem, &plan, key.budget, prepare_seed)
                                .map(WarmState::LssSharded)
                        })
                    } else {
                        lss.prepare(&problem, key.budget, prepare_seed)
                            .map(WarmState::Lss)
                    };
                    state
                        .map(|state| StoredModel {
                            state,
                            table_version,
                            prepare_seed,
                            raw_condition: raw.clone(),
                            resumes: 0,
                        })
                        .map_err(ServeError::from)
                };
                // A collector per closure: events emitted by the
                // prepare pipeline are keyed by store key here and
                // attached to the cold claimant at settle.
                let (result, events) = if tracing {
                    lts_obs::trace::collect(work)
                } else {
                    (work(), Vec::new())
                };
                (key, table_version, raw, result, events)
            })
            .collect();
        // States that failed to prepare fall back to per-request SRS.
        let mut unpreparable: HashSet<StoreKey> = HashSet::new();
        let mut prepare_events: HashMap<StoreKey, Vec<TraceEvent>> = HashMap::new();
        for (key, _version, _raw, result, events) in prepared {
            match result {
                Ok(stored) => {
                    metrics.store_prepares.inc();
                    if tracing {
                        prepare_events.insert(key.clone(), events);
                    }
                    self.store.insert(key, stored);
                }
                Err(_) => {
                    unpreparable.insert(key);
                }
            }
        }
        for item in &mut compute {
            if let ComputeKind::Resume { store_key } = &item.kind {
                if unpreparable.contains(store_key) {
                    item.kind = ComputeKind::SrsFallback;
                    item.is_cold = true;
                }
            }
        }

        // ------------------------------------ wave 2: execute (par)
        let store = &self.store;
        let lws = self.config.lws;
        let mut computed: Vec<(Computed, Vec<TraceEvent>)> = compute
            .iter()
            .map(|item| ExecItem {
                pos: item.pos,
                kind: match &item.kind {
                    ComputeKind::Exact => ExecKind::Exact,
                    ComputeKind::ExactEmpty => ExecKind::ExactEmpty,
                    ComputeKind::SrsFallback => ExecKind::Srs,
                    ComputeKind::Resume { store_key } => ExecKind::Resume {
                        stored: store.get(store_key),
                    },
                },
                problem: Arc::clone(&item.problem),
                seed: item.seed,
                budget: item.budget,
                is_cold: item.is_cold,
            })
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|item| {
                if tracing {
                    lts_obs::trace::collect(|| execute(item, lss, lws))
                } else {
                    (execute(item, lss, lws), Vec::new())
                }
            })
            .collect();

        // ------------------------------------------- settle (seq)
        let mut by_pos: HashMap<usize, usize> = HashMap::new();
        for (k, (c, _)) in computed.iter().enumerate() {
            by_pos.insert(c.pos, k);
        }
        for item in &compute {
            let (c, exec_events) = &mut computed[by_pos[&item.pos]];
            let exec_events = std::mem::take(exec_events);
            let c = &*c;
            let adm = admitted
                .iter()
                .find(|a| a.pos == item.pos)
                .expect("computed implies admitted");
            let response = match &c.result {
                Err(e) => {
                    self.stats.errors += 1;
                    metrics.requests_errors.inc();
                    Response {
                        fingerprint: adm.fingerprint,
                        table_version: adm.table_version,
                        budget: item.budget,
                        wall_micros: c.wall_micros,
                        ..Response::failed(adm.id, e)
                    }
                }
                Ok(ok) => {
                    let served = match (&item.kind, item.is_cold) {
                        (ComputeKind::Exact | ComputeKind::ExactEmpty, _) => "exact",
                        (_, true) => "cold",
                        (_, false) => "warm",
                    };
                    match served {
                        "exact" => {
                            self.stats.exact += 1;
                            self.stats.oracle_evals_exact += ok.evals as u64;
                            metrics.served_exact.inc();
                        }
                        "cold" => {
                            self.stats.cold += 1;
                            self.stats.oracle_evals_cold += ok.evals as u64;
                            metrics.served_cold.inc();
                        }
                        _ => {
                            self.stats.warm += 1;
                            self.stats.oracle_evals_warm += ok.evals as u64;
                            metrics.served_warm.inc();
                        }
                    }
                    if ok.route == "srs" {
                        metrics.served_fallback.inc();
                    }
                    self.stats.oracle_evals += ok.evals as u64;
                    if let ComputeKind::Resume { store_key } = &item.kind {
                        if let Some(stored) = self.store.lookup(store_key, adm.table_version) {
                            stored.resumes += 1;
                            if !item.is_cold {
                                metrics.store_resumes.inc();
                                // A warm resume re-uses the prepared
                                // phases a cold start would have paid
                                // for: that prepare cost is the saving.
                                metrics
                                    .oracle_evals_saved_warm
                                    .add(stored.state.prepare_evals() as u64);
                            }
                        }
                    }
                    if let Some(cache_key) = &item.cache_key {
                        self.cache.insert(
                            cache_key.clone(),
                            ok.estimate,
                            ok.std_error,
                            ok.lo,
                            ok.hi,
                            ok.level,
                            ok.evals,
                            ok.model_version,
                            adm.table_version,
                            ok.route,
                        );
                    }
                    Response {
                        id: adm.id,
                        ok: true,
                        error: None,
                        fingerprint: adm.fingerprint,
                        route: ok.route,
                        served,
                        estimate: ok.estimate,
                        std_error: ok.std_error,
                        lo: ok.lo,
                        hi: ok.hi,
                        level: ok.level,
                        evals: ok.evals,
                        budget: item.budget,
                        model_version: ok.model_version,
                        table_version: adm.table_version,
                        wall_micros: c.wall_micros,
                        plan: adm.planned.summary.clone(),
                        trace: None,
                    }
                }
            };
            let mut response = response;
            metrics.oracle_evals_total.add(response.evals as u64);
            metrics.request_evals.observe(response.evals as u64);
            metrics.wall_request_micros.observe(response.wall_micros);
            if tracing {
                let mut events = vec![TraceEvent::Route {
                    route: response.route,
                    kind: plan_kind(&adm.planned),
                }];
                events.extend(spans.remove(&item.pos).unwrap_or_default());
                match &item.kind {
                    ComputeKind::Resume { store_key } => {
                        events.push(TraceEvent::Store {
                            outcome: if item.is_cold {
                                "cold-prepare"
                            } else {
                                "warm-resume"
                            },
                            key: format!("{:016x}", store_key_hash(store_key, adm.table_version)),
                        });
                        if item.is_cold {
                            events.extend(prepare_events.remove(store_key).unwrap_or_default());
                        }
                    }
                    ComputeKind::SrsFallback => events.push(TraceEvent::Store {
                        outcome: "unpreparable",
                        key: String::new(),
                    }),
                    ComputeKind::Exact | ComputeKind::ExactEmpty => {}
                }
                events.extend(exec_events);
                events.push(TraceEvent::Served {
                    served: response.served,
                    evals: response.evals as u64,
                    wall_micros: response.wall_micros,
                });
                self.finish_span(adm.id, adm.fingerprint, &mut response, events);
            }
            responses[item.pos] = Some(response);
        }
        // Followers copy their leader's response (0 evals, "cached").
        for (pos, leader_pos, id) in followers {
            let leader = responses[leader_pos]
                .clone()
                .expect("leader position settled");
            if leader.ok {
                self.stats.cached += 1;
                self.stats.oracle_evals_saved += leader.evals as u64;
                metrics.served_cached.inc();
                metrics.served_followers.inc();
                metrics.oracle_evals_saved_cache.add(leader.evals as u64);
            } else {
                self.stats.errors += 1;
                metrics.requests_errors.inc();
            }
            let mut response = Response {
                id,
                served: if leader.ok { "cached" } else { leader.served },
                evals: 0,
                wall_micros: 0,
                trace: None,
                ..leader
            };
            if tracing {
                let mut events = Vec::new();
                if let Some(adm) = admitted.iter().find(|a| a.pos == pos) {
                    events.push(TraceEvent::Route {
                        route: response.route,
                        kind: plan_kind(&adm.planned),
                    });
                }
                events.extend(spans.remove(&pos).unwrap_or_default());
                events.push(TraceEvent::Cache {
                    outcome: "follower",
                });
                events.push(TraceEvent::Served {
                    served: response.served,
                    evals: 0,
                    wall_micros: 0,
                });
                self.finish_span(id, response.fingerprint, &mut response, events);
            }
            responses[pos] = Some(response);
        }

        // Point-in-time levels of the stateful stores.
        metrics.store_entries.set(self.store.len() as i64);
        metrics.cache_entries.set(self.cache.len() as i64);
        metrics.datasets.set(self.datasets.len() as i64);

        responses
            .into_iter()
            .map(|r| r.expect("every position settled"))
            .collect()
    }

    /// Parse a condition against a dataset, canonicalize it, and
    /// resolve the catalog entry (building the `CountingProblem` — and
    /// the query's conjunctive decomposition — on first sight or
    /// version change). The single problem-assembly path shared by
    /// live admission, store import, and `explain`.
    fn resolve_query(&mut self, dataset: &str, condition: &str) -> ServeResult<ResolvedQuery> {
        let ds = self
            .datasets
            .get(dataset)
            .ok_or_else(|| ServeError::UnknownDataset {
                name: dataset.to_string(),
            })?;
        let table_version = ds.table.version();
        let expr = parse_condition(condition, &ds.registry).map_err(|e| ServeError::Parse {
            message: e.to_string(),
        })?;
        let canonical = fingerprint::canonical(&expr);
        let fp = fingerprint::fingerprint(dataset, table_version, &canonical);
        let table = Arc::clone(ds.table.table());
        let feature_cols: Vec<String> = ds.feature_cols.clone();
        let level = self.config.planner.level;
        let key = QueryKey {
            dataset: dataset.to_string(),
            canonical: canonical.clone(),
        };
        let entry = self
            .catalog
            .resolve(key, fp, table_version, || -> ServeResult<_> {
                let cols: Vec<&str> = feature_cols.iter().map(String::as_str).collect();
                let predicate: Arc<dyn ObjectPredicate> =
                    Arc::new(ExprPredicate::new("q", expr.clone()));
                let problem =
                    Arc::new(CountingProblem::new(table, predicate, &cols)?.with_level(level));
                // Decompose the NORMALIZED expression, so commuted
                // spellings of one query share one decomposition and
                // the part canonicals are stable keys.
                let normalized = fingerprint::normalize(&expr);
                let DecomposedQuery {
                    exact_prefilter,
                    residual,
                } = decompose(&normalized);
                let decomposition = exact_prefilter.map(|prefilter| {
                    Arc::new(QueryDecomposition {
                        prefilter_canonical: fingerprint::canonical(&prefilter),
                        residual_canonical: fingerprint::canonical(&residual),
                        prefilter,
                        residual,
                    })
                });
                Ok((problem, decomposition))
            })?;
        Ok(ResolvedQuery {
            canonical,
            fingerprint: fp,
            table_version,
            problem: Arc::clone(&entry.problem),
            decomposition: entry.decomposition.clone(),
        })
    }

    /// Run (or reuse) the exact prefilter scan of a decomposed query:
    /// survivors, the restricted residual problem, and the feedback
    /// record all come from one memoized [`PlanState`] per catalog
    /// entry, so repeat requests never re-scan.
    fn ensure_plan_state(
        &mut self,
        dataset: &str,
        canonical: &str,
        table_version: u64,
        problem: &Arc<CountingProblem>,
        decomp: &QueryDecomposition,
    ) -> ServeResult<Arc<PlanState>> {
        let key = QueryKey {
            dataset: dataset.to_string(),
            canonical: canonical.to_string(),
        };
        if let Some(entry) = self.catalog.get(&key) {
            if entry.table_version == table_version {
                if let Some(plan) = &entry.plan {
                    return Ok(Arc::clone(plan));
                }
            }
        }
        let ds = self
            .datasets
            .get(dataset)
            .ok_or_else(|| ServeError::UnknownDataset {
                name: dataset.to_string(),
            })?;
        let selection = select_prefilter(&ds.table, &decomp.prefilter)?;
        let restricted = if selection.survivors.is_empty() {
            None
        } else {
            Some(Arc::new(restrict_problem(problem, &selection.survivors)?))
        };
        let plan = Arc::new(PlanState {
            survivors: selection.survivors.len(),
            population: selection.population,
            restricted,
        });
        self.catalog.set_plan(&key, Arc::clone(&plan));
        self.feedback.record(
            dataset,
            &decomp.prefilter_canonical,
            table_version,
            plan.survivors,
            plan.population,
        );
        Ok(plan)
    }

    /// Turn a resolved query and its target into a physical plan:
    /// monolithic for queries that do not decompose (or when the
    /// planner disables decomposition), otherwise the route chosen by
    /// [`BudgetPlanner::choose`] over the observed survivor count. A
    /// prefilter whose recorded selectivity already exceeds the
    /// monolithic threshold skips the scan — provably the same route
    /// the scan would pick, since feedback replays the exact `M/N`
    /// observed at this table version.
    fn plan_query(
        &mut self,
        dataset: &str,
        canonical: &str,
        table_version: u64,
        problem: &Arc<CountingProblem>,
        decomposition: Option<&Arc<QueryDecomposition>>,
        target: Target,
    ) -> ServeResult<PlannedQuery> {
        let planner = self.config.planner;
        let monolithic = |route: Route, summary: Option<PlanSummary>| PlannedQuery {
            route: match route {
                Route::Exact => PlannedRoute::Exact,
                Route::Estimate { budget } => PlannedRoute::Estimate { budget },
            },
            exec_problem: Arc::clone(problem),
            store_canonical: canonical.to_string(),
            store_scope: String::new(),
            summary,
        };
        let decomp = match decomposition {
            Some(d) if planner.monolithic_selectivity > 0.0 => d,
            _ => return Ok(monolithic(planner.plan(problem.n(), target)?, None)),
        };
        let n = problem.n();
        let mono_summary = |route: &Route| {
            Some(PlanSummary {
                kind: match route {
                    Route::Exact => "census",
                    Route::Estimate { .. } => "monolithic",
                },
                prefilter: decomp.prefilter_canonical.clone(),
                residual: decomp.residual_canonical.clone(),
                population: n,
                survivors: None,
                selectivity: None,
            })
        };
        if let Some(predicted) =
            self.feedback
                .predict(dataset, &decomp.prefilter_canonical, table_version)
        {
            if predicted >= planner.monolithic_selectivity {
                let route = planner.plan(n, target)?;
                return Ok(monolithic(route, mono_summary(&route)));
            }
        }
        let plan = self.ensure_plan_state(dataset, canonical, table_version, problem, decomp)?;
        let summary = |kind: &'static str| {
            Some(PlanSummary {
                kind,
                prefilter: decomp.prefilter_canonical.clone(),
                residual: decomp.residual_canonical.clone(),
                population: n,
                survivors: Some(plan.survivors),
                selectivity: Some(plan.selectivity()),
            })
        };
        Ok(match planner.choose(n, Some(plan.survivors), target)? {
            QueryRoute::Monolithic(route) => monolithic(route, mono_summary(&route)),
            QueryRoute::PrefilterExact => match &plan.restricted {
                None => PlannedQuery {
                    route: PlannedRoute::ExactEmpty,
                    exec_problem: Arc::clone(problem),
                    store_canonical: canonical.to_string(),
                    store_scope: String::new(),
                    summary: summary("exact_prefilter"),
                },
                Some(restricted) => PlannedQuery {
                    route: PlannedRoute::Exact,
                    exec_problem: Arc::clone(restricted),
                    store_canonical: canonical.to_string(),
                    store_scope: String::new(),
                    summary: summary("exact_prefilter"),
                },
            },
            QueryRoute::PrefilterEstimate { budget } => {
                let restricted = plan
                    .restricted
                    .clone()
                    .expect("an estimate plan implies survivors");
                PlannedQuery {
                    route: PlannedRoute::Estimate { budget },
                    exec_problem: restricted,
                    store_canonical: decomp.residual_canonical.clone(),
                    store_scope: decomp.prefilter_canonical.clone(),
                    summary: summary("prefilter_estimate"),
                }
            }
        })
    }

    fn admit(&mut self, pos: usize, req: Request) -> Result<Admitted, (u64, ServeError)> {
        let id = req.id;
        let resolved = self
            .resolve_query(&req.dataset, &req.condition)
            .map_err(|e| (id, e))?;
        let planned = self
            .plan_query(
                &req.dataset,
                &resolved.canonical,
                resolved.table_version,
                &resolved.problem,
                resolved.decomposition.as_ref(),
                req.target,
            )
            .map_err(|e| (id, e))?;
        Ok(Admitted {
            pos,
            id,
            dataset: req.dataset,
            canonical: resolved.canonical,
            raw: req.condition,
            fingerprint: resolved.fingerprint,
            table_version: resolved.table_version,
            planned,
            fresh: req.fresh,
        })
    }

    /// Resolve and plan a query **without executing it**: one JSON
    /// line describing the chosen physical plan — route kind, planned
    /// budget, decomposition parts with their own fingerprints, and
    /// predicted (pre-plan feedback) vs observed (post-scan)
    /// selectivity. Planning side effects are real (the prefilter scan
    /// runs and is memoized; feedback is recorded) but no oracle
    /// evaluation is spent and the service counters do not move.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown datasets, parse failures, or
    /// malformed targets.
    pub fn explain(
        &mut self,
        dataset: &str,
        condition: &str,
        target: Target,
    ) -> ServeResult<String> {
        let resolved = self.resolve_query(dataset, condition)?;
        let predicted = resolved.decomposition.as_ref().and_then(|d| {
            self.feedback
                .predict(dataset, &d.prefilter_canonical, resolved.table_version)
        });
        let planned = self.plan_query(
            dataset,
            &resolved.canonical,
            resolved.table_version,
            &resolved.problem,
            resolved.decomposition.as_ref(),
            target,
        )?;
        let observed = self
            .catalog
            .get(&QueryKey {
                dataset: dataset.to_string(),
                canonical: resolved.canonical.clone(),
            })
            .and_then(|e| e.plan.as_deref())
            .map(|p| (p.survivors, p.selectivity()));
        let kind = planned.summary.as_ref().map_or(
            match planned.route {
                PlannedRoute::Exact => "census",
                PlannedRoute::ExactEmpty => "exact_prefilter",
                PlannedRoute::Estimate { .. } => "monolithic",
            },
            |s| s.kind,
        );
        let budget = match planned.route {
            PlannedRoute::Exact | PlannedRoute::ExactEmpty => 0,
            PlannedRoute::Estimate { budget } => budget,
        };
        let esc = json_escape;
        let opt_num = |v: Option<f64>| match v {
            Some(v) if v.is_finite() => format!("{v}"),
            _ => "null".to_string(),
        };
        let opt_str = |v: Option<String>| match v {
            Some(s) => format!("\"{}\"", esc(&s)),
            None => "null".to_string(),
        };
        let d = resolved.decomposition.as_ref();
        Ok(format!(
            "{{\"explain\": true, \"dataset\": \"{}\", \"fingerprint\": \"{:016x}\", \
             \"table_version\": {}, \"canonical\": \"{}\", \"decomposed\": {}, \
             \"route\": \"{}\", \"budget\": {}, \"population\": {}, \
             \"prefilter\": {}, \"residual\": {}, \
             \"prefilter_fingerprint\": {}, \"residual_fingerprint\": {}, \
             \"survivors\": {}, \"predicted_selectivity\": {}, \
             \"observed_selectivity\": {}}}",
            esc(dataset),
            resolved.fingerprint,
            resolved.table_version,
            esc(&resolved.canonical),
            d.is_some(),
            kind,
            budget,
            resolved.problem.n(),
            opt_str(d.map(|d| d.prefilter_canonical.clone())),
            opt_str(d.map(|d| d.residual_canonical.clone())),
            opt_str(d.map(|d| {
                format!(
                    "{:016x}",
                    fingerprint::fingerprint(
                        dataset,
                        resolved.table_version,
                        &d.prefilter_canonical
                    )
                )
            })),
            opt_str(d.map(|d| {
                format!(
                    "{:016x}",
                    fingerprint::fingerprint(
                        dataset,
                        resolved.table_version,
                        &d.residual_canonical
                    )
                )
            })),
            observed.map_or_else(|| "null".to_string(), |(m, _)| m.to_string()),
            opt_num(predicted),
            opt_num(observed.map(|(_, s)| s)),
        ))
    }

    /// Render the model store as a portable export (labels + seeds; see
    /// [`ModelStore::export`]).
    pub fn export_store(&self) -> String {
        self.store.export()
    }

    /// Rebuild warm states from a store export: each entry re-runs
    /// `prepare` with its original seed and its labels preloaded —
    /// zero oracle evaluations, bit-identical states. A `+pf` entry is
    /// re-decomposed and its restricted residual problem rebuilt (the
    /// prefilter scan is deterministic, so the restored state sees the
    /// same population it was prepared over). Entries for unknown
    /// datasets or mismatched table versions are skipped. Returns the
    /// number of states restored.
    ///
    /// # Errors
    ///
    /// Returns an error for a malformed export, a failed prepare, or a
    /// `+pf` entry whose query does not decompose.
    pub fn import_store(&mut self, text: &str) -> ServeResult<usize> {
        let entries =
            ModelStore::parse_export(text).map_err(|message| ServeError::Invalid { message })?;
        let mut restored = 0usize;
        for entry in entries {
            match self.datasets.get(&entry.dataset) {
                Some(ds) if ds.table.version() == entry.table_version => {}
                _ => continue,
            }
            let resolved = self.resolve_query(&entry.dataset, &entry.condition)?;
            let (family, shard_k, prefiltered) =
                parse_estimator_tag(&entry.estimator).ok_or_else(|| ServeError::Invalid {
                    message: format!(
                        "unknown estimator tag `{}` in store export",
                        entry.estimator
                    ),
                })?;
            let (problem, store_canonical, store_scope) = if prefiltered {
                let decomp = resolved
                    .decomposition
                    .clone()
                    .ok_or_else(|| ServeError::Invalid {
                        message: format!(
                            "prefiltered store entry for `{}` but the query does not decompose",
                            entry.condition
                        ),
                    })?;
                let plan = self.ensure_plan_state(
                    &entry.dataset,
                    &resolved.canonical,
                    resolved.table_version,
                    &resolved.problem,
                    &decomp,
                )?;
                let restricted = plan.restricted.clone().ok_or_else(|| ServeError::Invalid {
                    message: format!(
                        "prefiltered store entry for `{}` but the prefilter keeps no rows",
                        entry.condition
                    ),
                })?;
                (
                    restricted,
                    decomp.residual_canonical.clone(),
                    decomp.prefilter_canonical.clone(),
                )
            } else {
                (
                    Arc::clone(&resolved.problem),
                    resolved.canonical.clone(),
                    String::new(),
                )
            };
            let state = match (family, shard_k) {
                ("lss", None) => WarmState::Lss(self.config.lss.prepare_with_known(
                    &problem,
                    entry.budget,
                    entry.prepare_seed,
                    &entry.labels,
                )?),
                ("lws", None) => WarmState::Lws(self.config.lws.prepare_with_known(
                    &problem,
                    entry.budget,
                    entry.prepare_seed,
                    &entry.labels,
                )?),
                ("lss", Some(k)) => {
                    let plan = ShardPlan::uniform(problem.n(), k)?;
                    WarmState::LssSharded(self.config.lss.prepare_sharded_with_known(
                        &problem,
                        &plan,
                        entry.budget,
                        entry.prepare_seed,
                        &entry.labels,
                    )?)
                }
                ("lws", Some(k)) => {
                    let plan = ShardPlan::uniform(problem.n(), k)?;
                    WarmState::LwsSharded(self.config.lws.prepare_sharded_with_known(
                        &problem,
                        &plan,
                        entry.budget,
                        entry.prepare_seed,
                        &entry.labels,
                    )?)
                }
                _ => {
                    return Err(ServeError::Invalid {
                        message: format!(
                            "unknown estimator tag `{}` in store export",
                            entry.estimator
                        ),
                    })
                }
            };
            self.store.insert(
                StoreKey {
                    dataset: entry.dataset.clone(),
                    canonical: store_canonical,
                    scope: store_scope,
                    budget: entry.budget,
                },
                StoredModel {
                    state,
                    table_version: entry.table_version,
                    prepare_seed: entry.prepare_seed,
                    raw_condition: entry.condition.clone(),
                    resumes: 0,
                },
            );
            restored += 1;
        }
        Ok(restored)
    }

    /// Seal a request's trace span: feed the per-phase registry
    /// counters from the span's events, attach the span to the
    /// response when [`ServiceConfig::trace`] is on, offer the request
    /// to the slow log, and retain the span in the trace ring.
    fn finish_span(
        &self,
        id: u64,
        fingerprint: u64,
        response: &mut Response,
        events: Vec<TraceEvent>,
    ) {
        let metrics = &self.metrics;
        for ev in &events {
            match ev {
                TraceEvent::Phase { phase, evals, .. } => {
                    metrics.add_phase_evals(phase, *evals);
                }
                TraceEvent::Stage2 { evals, .. } => {
                    metrics.evals_stage2.add(*evals);
                }
                TraceEvent::Shard { evals, .. } => {
                    metrics.evals_sharded.add(*evals);
                }
                TraceEvent::Pages { evaluated, skipped } => {
                    metrics.pages_evaluated.add(*evaluated);
                    metrics.pages_skipped.add(*skipped);
                }
                _ => {}
            }
        }
        // Exact scans and SRS fallbacks have no instrumented interior;
        // their evals are attributed from the settled response.
        if response.served == "exact" {
            metrics.evals_exact.add(response.evals as u64);
        } else if response.route == "srs" {
            metrics.evals_srs.add(response.evals as u64);
        }
        let trace = Trace { id, events };
        if response.ok && response.evals > 0 {
            self.obs.slow.offer(SlowEntry {
                evals: response.evals as u64,
                id,
                fingerprint,
                route: response.route,
            });
        }
        if self.config.trace {
            response.trace = Some(trace.clone());
        }
        self.obs.ring.push(trace);
    }
}

/// Plan kind echoed in a [`TraceEvent::Route`]: the summary's kind
/// when the query decomposed, otherwise inferred from the route.
fn plan_kind(planned: &PlannedQuery) -> String {
    planned.summary.as_ref().map_or_else(
        || match planned.route {
            PlannedRoute::Exact | PlannedRoute::ExactEmpty => "census".to_string(),
            PlannedRoute::Estimate { .. } => "monolithic".to_string(),
        },
        |s| s.kind.to_string(),
    )
}

/// One wave-1 prepare outcome: `(store key, table version, raw
/// condition, result, trace events collected while preparing)`.
type Prepared = (
    StoreKey,
    u64,
    String,
    ServeResult<StoredModel>,
    Vec<TraceEvent>,
);

/// `request_evals` histogram bucket bounds (inclusive upper edges).
const EVALS_BOUNDS: &[u64] = &[0, 10, 100, 1_000, 10_000, 100_000];

/// `wall_request_micros` histogram bounds. A `wall_*` metric: zeroed
/// in masked expositions.
const WALL_BOUNDS: &[u64] = &[100, 1_000, 10_000, 100_000, 1_000_000];

struct ExecItem<'a> {
    pos: usize,
    kind: ExecKind<'a>,
    problem: Arc<CountingProblem>,
    seed: u64,
    budget: usize,
    is_cold: bool,
}

enum ExecKind<'a> {
    Exact,
    ExactEmpty,
    Srs,
    Resume { stored: Option<&'a StoredModel> },
}

fn execute(item: ExecItem<'_>, lss: Lss, lws: Lws) -> Computed {
    let start = Instant::now();
    let result = execute_inner(&item, lss, lws);
    Computed {
        pos: item.pos,
        result,
        wall_micros: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
    }
}

fn execute_inner(item: &ExecItem<'_>, lss: Lss, lws: Lws) -> ServeResult<ComputedOk> {
    match &item.kind {
        ExecKind::Exact => {
            let count = item.problem.exact_count()? as f64;
            Ok(ComputedOk {
                estimate: count,
                std_error: 0.0,
                lo: count,
                hi: count,
                level: item.problem.level(),
                evals: item.problem.n(),
                route: "exact",
                model_version: 0,
            })
        }
        ExecKind::ExactEmpty => {
            // No prefilter survivor: the count is exactly 0 — a
            // zero-width interval at zero oracle cost.
            Ok(ComputedOk {
                estimate: 0.0,
                std_error: 0.0,
                lo: 0.0,
                hi: 0.0,
                level: item.problem.level(),
                evals: 0,
                route: "exact",
                model_version: 0,
            })
        }
        ExecKind::Srs => {
            let mut rng = StdRng::seed_from_u64(item.seed);
            let report = Srs::default().estimate(&item.problem, item.budget, &mut rng)?;
            Ok(ComputedOk {
                estimate: report.count(),
                std_error: report.estimate.std_error,
                lo: report.estimate.interval.lo,
                hi: report.estimate.interval.hi,
                level: item.problem.level(),
                evals: report.evals,
                route: "srs",
                model_version: 0,
            })
        }
        ExecKind::Resume { stored } => {
            let stored = stored.ok_or_else(|| ServeError::Invalid {
                message: "warm state vanished between waves".into(),
            })?;
            let report = match &stored.state {
                WarmState::Lss(w) => lss.estimate_prepared(&item.problem, w, item.seed)?,
                WarmState::Lws(w) => lws.estimate_prepared(&item.problem, w, item.seed)?,
                WarmState::LssSharded(w) => {
                    lss.estimate_prepared_sharded(&item.problem, w, item.seed)?
                }
                WarmState::LwsSharded(w) => {
                    lws.estimate_prepared_sharded(&item.problem, w, item.seed)?
                }
            };
            let prepare_evals = if item.is_cold {
                stored.state.prepare_evals()
            } else {
                0
            };
            Ok(ComputedOk {
                estimate: report.count(),
                std_error: report.estimate.std_error,
                lo: report.estimate.interval.lo,
                hi: report.estimate.interval.hi,
                level: item.problem.level(),
                evals: report.evals + prepare_evals,
                route: stored.state.tag(),
                model_version: stored.state.digest(),
            })
        }
    }
}

/// Split a store-export estimator tag into family, optional shard
/// count, and the prefiltered marker: `lss` → `("lss", None, false)`,
/// `lss@4` → `("lss", Some(4), false)`, `lss@4+pf` →
/// `("lss", Some(4), true)`. Returns `None` for malformed shard
/// suffixes (`lss@0`, `lss@x`).
fn parse_estimator_tag(tag: &str) -> Option<(&str, Option<usize>, bool)> {
    let (tag, prefiltered) = match tag.strip_suffix("+pf") {
        Some(t) => (t, true),
        None => (tag, false),
    };
    match tag.split_once('@') {
        None => Some((tag, None, prefiltered)),
        Some((family, k)) => {
            let k: usize = k.parse().ok()?;
            (k > 0).then_some((family, Some(k), prefiltered))
        }
    }
}

fn result_key_hash(key: &ResultKey) -> u64 {
    let mut bytes = Vec::with_capacity(key.dataset.len() + key.canonical.len() + 10);
    bytes.extend_from_slice(key.dataset.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(key.canonical.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&(key.budget as u64).to_le_bytes());
    fnv1a(&bytes)
}

fn store_key_hash(key: &StoreKey, table_version: u64) -> u64 {
    let mut bytes =
        Vec::with_capacity(key.dataset.len() + key.canonical.len() + key.scope.len() + 19);
    bytes.extend_from_slice(key.dataset.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(key.canonical.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&(key.budget as u64).to_le_bytes());
    bytes.extend_from_slice(&table_version.to_le_bytes());
    // Scoped (prefiltered) keys extend the layout; the empty scope
    // keeps the legacy byte stream exactly, so monolithic prepare
    // seeds — and every existing golden — are unchanged.
    if !key.scope.is_empty() {
        bytes.push(0);
        bytes.extend_from_slice(key.scope.as_bytes());
    }
    fnv1a(&bytes)
}
