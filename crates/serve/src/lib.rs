//! `lts-serve` — the concurrent counting service.
//!
//! The paper's economic argument is **amortization**: training a
//! sampler is worth it because the same complex-filter count query (and
//! near variants) is asked again and again. This crate is the layer
//! that argument lives in — an in-process service that answers a
//! stream of count requests from warm state instead of cold-starting
//! each one:
//!
//! | Piece | Module | Job |
//! |---|---|---|
//! | canonical fingerprints | [`mod@fingerprint`] | equivalent requests hit the same entry |
//! | [`QueryCatalog`] | [`catalog`] | one problem (meter + features) per distinct query |
//! | [`ModelStore`] | [`store`] | warm estimator states: trained proxy + ordering + pilot + design (`lts_core::warm`), invalidated on table-version bumps |
//! | [`ResultCache`] | [`cache`] | finished estimates with a staleness policy |
//! | [`BudgetPlanner`] | [`planner`] | admission control: census for small `N`, else the cheapest budget meeting the requested CI width; routes decomposed queries among census / prefilter + residual / monolithic plans using a [`SelectivityFeedback`] ledger |
//! | [`Service`] | [`service`] | bounded queue, parallel execution waves, deterministic per-request seed streams |
//! | protocol | [`mod@protocol`] | the line-in/JSON-out command grammar, shared by every front-end |
//! | REPL | [`repl`] | the `lts-serve` binary's stdin/stdout front-end |
//! | [`NetServer`] | [`net`] | the `lts-served` binary's multi-client TCP front-end: bounded admission, per-client backpressure, graceful shutdown |
//!
//! A **cold** request pays for everything; a repeat of the same
//! canonical query either comes straight from the result cache (zero
//! oracle evaluations) or — when a fresh, independent estimate is
//! requested — **warm-starts** from the model store and spends only
//! the stage-2 share of the budget (≥ 5× fewer oracle evaluations at
//! the same designed CI width under the serve profile). Every response
//! is bit-replayable: see the determinism contract in [`service`].

#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod error;
pub mod fingerprint;
pub mod net;
pub mod planner;
pub mod protocol;
pub mod repl;
pub mod service;
pub mod state;
pub mod store;

pub use cache::{CachedResult, ResultCache, ResultKey, StalenessPolicy};
pub use catalog::{PlanState, QueryCatalog, QueryDecomposition, QueryEntry, QueryKey};
pub use error::{ServeError, ServeResult};
pub use fingerprint::{canonical, fingerprint, normalize};
pub use net::{NetConfig, NetServer};
pub use planner::{BudgetPlanner, QueryRoute, Route, SelectivityFeedback, Target};
pub use protocol::{handle_line, LineOutcome, SessionState};
pub use repl::{run_repl, ReplOptions};
pub use service::{
    serve_lss_profile, DatasetSpec, PlanSummary, Request, Response, Service, ServiceConfig,
    ServiceStats,
};
pub use state::{RestoreSummary, StateError, STATE_FILE};
pub use store::{ModelStore, StoreKey, StoredModel, WarmState};

pub use lts_obs::{MetricsRegistry, MetricsSnapshot, Observability, SlowLog, Trace, TraceRing};
