//! The TCP front-end: `lts-served`.
//!
//! Promotes the counting service from a single-client stdin REPL to a
//! multi-client network server speaking the **same** line-in/JSON-out
//! protocol ([`crate::protocol`]) — the REPL golden transcripts remain
//! the single source of truth for what goes over the wire.
//!
//! # Architecture (std-only, thread-per-connection over one dispatcher)
//!
//! ```text
//!             accept loop (non-blocking poll; closes on shutdown)
//!                  │ ≤ max_connections, else refusal line + close
//!                  ▼
//!   per-conn reader thread ──lines──► bounded admission channel
//!     (max_line_bytes cap,              (admission_capacity; a full
//!      UTF-8 validation)                 channel blocks the sender —
//!                  ▲                     per-client backpressure)
//!                  │                              │ FIFO
//!   per-conn writer thread ◄─bounded──  dispatcher thread (owns the
//!     (flush, then FIN)     write queue  Service; executes one line
//!                           per conn     at a time; heavy work still
//!                                        fans out over rayon)
//! ```
//!
//! * **Admission** is a bounded channel: readers block (never the
//!   dispatcher) when the service is saturated, so a flooding client
//!   stalls itself, not the fleet.
//! * **Per-client backpressure**: each connection's responses go
//!   through a bounded write queue drained by that connection's writer
//!   thread. A slow reader fills only its own queue; the dispatcher
//!   never blocks on a socket. When a queue overflows
//!   ([`NetConfig::write_queue_capacity`]), the policy is **drop the
//!   connection**: the socket is shut down and the queue closed — the
//!   slow client is disconnected, everyone else is unaffected.
//! * **Determinism under concurrency**: the dispatcher executes
//!   protocol lines sequentially, and every response is a pure
//!   function of (service seed, dataset version, canonical query,
//!   budget, request id) — see [`crate::service`]. Client
//!   interleaving can change *bookkeeping* fields of cache-eligible
//!   requests (`served`, `evals` — whoever arrives first pays the cold
//!   start), but never the estimate, interval, or model digest; and
//!   `fresh` requests with explicit ids are bit-identical to the
//!   single-client transcript regardless of interleaving.
//! * **Graceful shutdown** (`shutdown` command, [`NetServer::shutdown`],
//!   or SIGTERM in the `lts-served` binary): in-flight requests
//!   complete and their responses are flushed; admitted-but-unexecuted
//!   requests receive a `shutting_down` error; new submissions are
//!   refused with the same error; the listener closes; writer threads
//!   flush and FIN.
//!
//! Malformed input (oversized line, invalid UTF-8, half-written final
//! frame) yields a structured JSON error — or a clean close at EOF —
//! never a panic or a wedged worker.

use crate::protocol::{handle_line, json_err, shutting_down_line, LineOutcome, SessionState};
use crate::repl::ReplOptions;
use crate::service::{Service, ServiceConfig};
use lts_obs::Observability;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of the TCP front-end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The wrapped service's configuration.
    pub service: ServiceConfig,
    /// Protocol options (deterministic wall-time masking).
    pub repl: ReplOptions,
    /// Connections beyond this many are refused with an error line.
    pub max_connections: usize,
    /// Request lines longer than this yield a structured error (the
    /// overlong line is consumed and discarded; the connection lives).
    pub max_line_bytes: usize,
    /// Bound of each connection's response queue. A connection whose
    /// reader is too slow to keep its queue under this bound is
    /// dropped (socket shutdown) — the slow-reader policy.
    pub write_queue_capacity: usize,
    /// Bound of the shared admission channel; submitting readers block
    /// (per-client backpressure) while it is full.
    pub admission_capacity: usize,
    /// Durable warm state: when set, the dispatcher restores a
    /// [`crate::state`] snapshot from this directory at startup (a
    /// restored server is warm from its first request) and writes one
    /// atomically at graceful shutdown. A missing snapshot is a normal
    /// cold start; a corrupt one is logged and ignored (cold start) —
    /// never a panic.
    pub state_dir: Option<std::path::PathBuf>,
    /// When set, bind a plain-HTTP Prometheus scrape endpoint on this
    /// address (`GET` anything → the text exposition). The listener
    /// reads the shared registry directly and never touches the
    /// dispatcher, so a stalled or mid-scrape-disconnected scraper
    /// cannot wedge request serving.
    pub metrics_addr: Option<String>,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            service: ServiceConfig::default(),
            repl: ReplOptions::default(),
            max_connections: 64,
            max_line_bytes: 64 * 1024,
            write_queue_capacity: 128,
            admission_capacity: 64,
            state_dir: None,
            metrics_addr: None,
        }
    }
}

// ------------------------------------------------------------ write queue

/// Outcome of a non-blocking push into a connection's write queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Push {
    /// Queued for the writer thread.
    Enqueued,
    /// The queue was at capacity: the line is dropped and the queue is
    /// now closed — per policy the connection must be dropped.
    Overflowed,
    /// The queue was already closed; the line is discarded.
    Closed,
}

struct QueueState {
    lines: VecDeque<String>,
    closed: bool,
}

/// A bounded, non-blocking response queue between the dispatcher and
/// one connection's writer thread. The dispatcher never blocks here:
/// a full queue means the client reads too slowly, and per policy the
/// push reports [`Push::Overflowed`] after closing the queue.
struct WriteQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl WriteQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                lines: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            // A zero-capacity queue could never deliver a response.
            capacity: capacity.max(1),
        }
    }

    fn push(&self, line: String) -> Push {
        let mut st = self.state.lock().expect("write queue poisoned");
        if st.closed {
            return Push::Closed;
        }
        if st.lines.len() >= self.capacity {
            st.closed = true;
            self.ready.notify_all();
            return Push::Overflowed;
        }
        st.lines.push_back(line);
        self.ready.notify_all();
        Push::Enqueued
    }

    /// Close the queue: no further pushes are accepted, but lines
    /// already queued stay drainable so the writer can flush them.
    fn close(&self) {
        let mut st = self.state.lock().expect("write queue poisoned");
        st.closed = true;
        self.ready.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().expect("write queue poisoned").closed
    }

    /// Block until lines are available (returning all of them, FIFO)
    /// or the queue is closed and empty (returning `None`).
    fn pop_wait(&self) -> Option<Vec<String>> {
        let mut st = self.state.lock().expect("write queue poisoned");
        loop {
            if !st.lines.is_empty() {
                return Some(st.lines.drain(..).collect());
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("write queue poisoned");
        }
    }
}

// ------------------------------------------------------------ connections

struct ConnShared {
    id: u64,
    /// Handle used for out-of-band shutdown (reader and writer own
    /// their own clones).
    stream: TcpStream,
    queue: WriteQueue,
    session: Mutex<SessionState>,
    /// Lines submitted to the dispatcher and not yet settled.
    pending: AtomicUsize,
    /// The reader saw EOF (no further submissions will come).
    eof: AtomicBool,
}

impl ConnShared {
    /// Drop the connection now: unblock any in-progress socket write
    /// and stop accepting responses. Queued lines are abandoned to the
    /// failing socket — per the slow-reader policy.
    fn hangup(&self) {
        self.queue.close();
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Close the queue once the reader is done *and* every submitted
    /// line has settled — the writer then flushes what remains and
    /// sends FIN. Keeps responses to a half-closed client (send
    /// requests, shut down the send side, read replies) intact.
    fn finish_if_drained(&self) {
        if self.eof.load(Ordering::SeqCst) && self.pending.load(Ordering::SeqCst) == 0 {
            self.queue.close();
        }
    }
}

enum JobKind {
    /// A protocol line to execute against the service.
    Line(String),
    /// A pre-rendered reply (reader-side framing errors) routed
    /// through the dispatcher so per-connection FIFO order holds.
    Immediate(String),
}

struct Job {
    conn: Arc<ConnShared>,
    kind: JobKind,
}

struct Shared {
    config: NetConfig,
    shutting_down: AtomicBool,
    conns: Mutex<HashMap<u64, Arc<ConnShared>>>,
    next_conn_id: AtomicU64,
}

impl Shared {
    fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    fn remove_conn(&self, id: u64) {
        self.conns
            .lock()
            .expect("conn registry poisoned")
            .remove(&id);
    }

    /// Close every connection's queue (writers flush, then FIN, which
    /// also unblocks readers waiting in `read`).
    fn close_all_conns(&self) {
        let conns: Vec<Arc<ConnShared>> = self
            .conns
            .lock()
            .expect("conn registry poisoned")
            .drain()
            .map(|(_, c)| c)
            .collect();
        for conn in conns {
            conn.queue.close();
        }
    }
}

// ------------------------------------------------------------ the server

/// A running TCP counting server. Dropping the handle triggers
/// shutdown but does not wait; call [`NetServer::join`] to block until
/// the listener and dispatcher have fully stopped.
pub struct NetServer {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    obs: Observability,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatch: Option<JoinHandle<()>>,
    metrics: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind a listener and start serving. Use port 0 to let the OS
    /// pick (read it back with [`NetServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Returns I/O errors from binding the listener.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: NetConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // NetConfig is no longer Copy (it may carry a state path);
        // capture what the channels and the dispatcher need before the
        // config moves into the shared registry.
        let service_config = config.service;
        let admission = config.admission_capacity.max(1);
        let state_dir = config.state_dir.clone();
        let deterministic = config.repl.deterministic;
        // One observability bundle shared by the dispatcher's service
        // and the scrape listener — the scrape path reads the registry
        // without ever entering the dispatch queue.
        let obs = Observability::default();
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let shared = Arc::new(Shared {
            config,
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(admission);
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, &shared, &tx))
        };
        let dispatch = {
            let shared = Arc::clone(&shared);
            let obs = obs.clone();
            std::thread::spawn(move || dispatch_loop(service_config, state_dir, obs, &rx, &shared))
        };
        let metrics = metrics_listener.map(|l| {
            let shared = Arc::clone(&shared);
            let obs = obs.clone();
            std::thread::spawn(move || metrics_loop(l, &obs, deterministic, &shared))
        });
        Ok(Self {
            addr,
            metrics_addr,
            obs,
            shared,
            accept: Some(accept),
            dispatch: Some(dispatch),
            metrics,
        })
    }

    /// The bound listener address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics (Prometheus scrape) address, when
    /// [`NetConfig::metrics_addr`] was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The observability bundle shared with the dispatcher's service.
    pub fn observability(&self) -> &Observability {
        &self.obs
    }

    /// Trigger graceful shutdown (idempotent; returns immediately).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been triggered (by a client's `shutdown`
    /// command, [`NetServer::shutdown`], or a signal handler).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// A `Send + 'static` closure that triggers shutdown — hand it to
    /// a signal watcher that outlives the borrow of `self`.
    pub fn shutdown_handle(&self) -> impl Fn() + Send + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.begin_shutdown()
    }

    /// Block until the listener and dispatcher threads have exited.
    /// Only returns after shutdown has been triggered by some path.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatch.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>, tx: &SyncSender<Job>) {
    while !shared.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => spawn_connection(stream, shared, tx),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Dropping the listener here closes the socket: no new connections
    // are accepted once shutdown begins.
}

fn spawn_connection(stream: TcpStream, shared: &Arc<Shared>, tx: &SyncSender<Job>) {
    // The listener is non-blocking; connection sockets must not be.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let at_capacity = {
        let conns = shared.conns.lock().expect("conn registry poisoned");
        conns.len() >= shared.config.max_connections
    };
    if at_capacity {
        let mut s = stream;
        let _ = writeln!(
            s,
            "{}",
            json_err(&format!(
                "connection refused: at capacity ({})",
                shared.config.max_connections
            ))
        );
        let _ = s.shutdown(Shutdown::Both);
        return;
    }
    let id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
    let conn = Arc::new(ConnShared {
        id,
        stream,
        queue: WriteQueue::new(shared.config.write_queue_capacity),
        session: Mutex::new(SessionState::default()),
        pending: AtomicUsize::new(0),
        eof: AtomicBool::new(false),
    });
    shared
        .conns
        .lock()
        .expect("conn registry poisoned")
        .insert(id, Arc::clone(&conn));
    {
        let conn = Arc::clone(&conn);
        std::thread::spawn(move || writer_loop(&conn));
    }
    {
        let conn = Arc::clone(&conn);
        let shared = Arc::clone(shared);
        let tx = tx.clone();
        std::thread::spawn(move || reader_loop(&conn, &shared, &tx));
    }
}

fn writer_loop(conn: &Arc<ConnShared>) {
    let Ok(stream) = conn.stream.try_clone() else {
        conn.queue.close();
        return;
    };
    let mut w = BufWriter::new(stream);
    'drain: while let Some(lines) = conn.queue.pop_wait() {
        for line in lines {
            if writeln!(w, "{line}").is_err() {
                conn.queue.close();
                break 'drain;
            }
        }
        if w.flush().is_err() {
            conn.queue.close();
            break;
        }
    }
    let _ = w.flush();
    // Flushed everything we will ever send: FIN both ways. This also
    // unblocks a reader still parked in `read` on an idle connection.
    let _ = conn.stream.shutdown(Shutdown::Both);
}

/// Outcome of reading one length-capped line.
enum ReadLine {
    /// End of stream with no pending bytes.
    Eof,
    /// A complete line (final unterminated frames count too).
    Line,
    /// The line exceeded the cap; its bytes were consumed + discarded.
    Oversized,
}

/// Read one `\n`-terminated line into `buf`, capping memory at `max`
/// bytes. Oversized lines are consumed to their newline (or EOF) so
/// the stream stays framed, but their content is discarded.
fn read_line_limited<R: BufRead>(
    r: &mut R,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<ReadLine> {
    buf.clear();
    let mut over = false;
    loop {
        let (consumed, done) = {
            let chunk = match r.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                return Ok(if over {
                    ReadLine::Oversized
                } else if buf.is_empty() {
                    ReadLine::Eof
                } else {
                    ReadLine::Line
                });
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !over {
                        buf.extend_from_slice(&chunk[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !over {
                        buf.extend_from_slice(chunk);
                    }
                    (chunk.len(), false)
                }
            }
        };
        r.consume(consumed);
        if buf.len() > max {
            over = true;
            buf.clear();
        }
        if done {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return Ok(if over {
                ReadLine::Oversized
            } else {
                ReadLine::Line
            });
        }
    }
}

/// Submit a job for this connection, keeping the pending count
/// accurate. Returns `false` when the dispatcher is gone (shutdown).
fn submit(conn: &Arc<ConnShared>, tx: &SyncSender<Job>, kind: JobKind) -> bool {
    conn.pending.fetch_add(1, Ordering::SeqCst);
    let job = Job {
        conn: Arc::clone(conn),
        kind,
    };
    // Blocking send: a full admission channel stalls this reader (and
    // therefore this client) only — per-client backpressure.
    if tx.send(job).is_ok() {
        return true;
    }
    conn.pending.fetch_sub(1, Ordering::SeqCst);
    false
}

fn reader_loop(conn: &Arc<ConnShared>, shared: &Arc<Shared>, tx: &SyncSender<Job>) {
    let reader = match conn.stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            conn.hangup();
            shared.remove_conn(conn.id);
            return;
        }
    };
    let mut r = BufReader::new(reader);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if conn.queue.is_closed() {
            // Dropped (slow-reader policy) or quit: stop consuming.
            break;
        }
        let kind = match read_line_limited(&mut r, &mut buf, shared.config.max_line_bytes) {
            Err(_) | Ok(ReadLine::Eof) => break,
            Ok(ReadLine::Oversized) => JobKind::Immediate(json_err(&format!(
                "request line exceeds {} bytes",
                shared.config.max_line_bytes
            ))),
            Ok(ReadLine::Line) => match std::str::from_utf8(&buf) {
                Err(_) => JobKind::Immediate(json_err("request line is not valid UTF-8")),
                Ok(text) => {
                    let line = text.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    if shared.is_shutting_down() {
                        JobKind::Immediate(shutting_down_line())
                    } else {
                        JobKind::Line(line.to_string())
                    }
                }
            },
        };
        if !submit(conn, tx, kind) {
            // Dispatcher is gone: the server is draining. Best-effort
            // direct reply (the queue may already be closed).
            let _ = conn.queue.push(shutting_down_line());
            break;
        }
    }
    conn.eof.store(true, Ordering::SeqCst);
    conn.finish_if_drained();
    shared.remove_conn(conn.id);
}

/// Deliver a reply (if any) and settle one pending job.
fn settle(conn: &Arc<ConnShared>, reply: Option<String>, shared: &Shared) {
    if let Some(line) = reply {
        if conn.queue.push(line) == Push::Overflowed {
            // Slow-reader policy: the queue closed itself; cut the
            // socket so a writer blocked mid-write fails out too.
            conn.hangup();
            shared.remove_conn(conn.id);
        }
    }
    conn.pending.fetch_sub(1, Ordering::SeqCst);
    conn.finish_if_drained();
}

fn dispatch_loop(
    service_config: ServiceConfig,
    state_dir: Option<std::path::PathBuf>,
    obs: Observability,
    rx: &Receiver<Job>,
    shared: &Arc<Shared>,
) {
    let mut service = Service::with_observability(service_config, obs.clone());
    // Durable warm state: restore before the first request so a
    // restarted server answers warm immediately. Any failure —
    // mismatched version, torn write, corruption — falls back to a
    // clean cold start on a FRESH service (the failed restore may have
    // left partial state behind).
    if let Some(dir) = &state_dir {
        match crate::state::load(&mut service, dir) {
            Ok(Some(s)) => eprintln!(
                "lts-served: restored {} dataset(s), {} warm state(s), {} cached result(s)",
                s.datasets, s.models, s.cached
            ),
            Ok(None) => {}
            Err(e) => {
                eprintln!("lts-served: state restore failed ({e}); starting cold");
                service = Service::with_observability(service_config, obs.clone());
            }
        }
    }
    loop {
        let job = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if shared.is_shutting_down() {
                    break;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if shared.is_shutting_down() {
            // Admitted into the queue, never executed: refuse.
            settle(&job.conn, Some(shutting_down_line()), shared);
            continue;
        }
        match job.kind {
            JobKind::Immediate(reply) => settle(&job.conn, Some(reply), shared),
            JobKind::Line(line) => {
                let outcome = {
                    let mut session = job.conn.session.lock().expect("session poisoned");
                    handle_line(&mut service, &mut session, shared.config.repl, &line)
                };
                match outcome {
                    LineOutcome::Silent => settle(&job.conn, None, shared),
                    LineOutcome::Reply(reply) => settle(&job.conn, Some(reply), shared),
                    LineOutcome::Quit => {
                        settle(&job.conn, None, shared);
                        // Flush queued responses, then FIN.
                        job.conn.queue.close();
                        shared.remove_conn(job.conn.id);
                    }
                    LineOutcome::Shutdown(ack) => {
                        settle(&job.conn, Some(ack), shared);
                        shared.begin_shutdown();
                    }
                }
            }
        }
    }
    // Shutdown drain: everything still queued was admitted but never
    // executed — give each a structured refusal, in FIFO order.
    while let Ok(job) = rx.try_recv() {
        settle(&job.conn, Some(shutting_down_line()), shared);
    }
    // Snapshot after the drain, while the service is quiescent. The
    // write is atomic (temp + rename): a failure here leaves the
    // previous snapshot intact and is reported, never fatal.
    if let Some(dir) = &state_dir {
        if let Err(e) = crate::state::save(&service, dir) {
            eprintln!("lts-served: state save failed: {e}");
        }
    }
    shared.close_all_conns();
}

// ------------------------------------------------------------ metrics scrape

/// Accept loop of the Prometheus scrape endpoint. Each scrape is
/// served on its own short-lived thread straight from the shared
/// registry — this path never enters the admission channel or the
/// dispatcher, so a stalled scraper cannot wedge request serving.
fn metrics_loop(listener: TcpListener, obs: &Observability, deterministic: bool, shared: &Shared) {
    while !shared.is_shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let obs = obs.clone();
                std::thread::spawn(move || serve_scrape(stream, &obs, deterministic));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Answer one scrape: read whatever request bytes arrive (the content
/// is ignored — any request gets the exposition), write an HTTP/1.0
/// response, close. Short socket timeouts bound the damage from a
/// scraper that connects and then stalls or disconnects mid-transfer;
/// every I/O error is swallowed — the scrape thread just exits.
fn serve_scrape(mut stream: TcpStream, obs: &Observability, deterministic: bool) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 1024];
    let _ = std::io::Read::read(&mut stream, &mut buf);
    let body = obs.registry.snapshot().to_prometheus(deterministic);
    let resp = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(resp.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- the slow-reader policy, unit-tested at its limits ----

    #[test]
    fn write_queue_overflow_closes_at_capacity() {
        let q = WriteQueue::new(2);
        assert_eq!(q.push("a".into()), Push::Enqueued);
        assert_eq!(q.push("b".into()), Push::Enqueued);
        // At capacity: the overflowing line is dropped and the queue
        // closes — the drop signal of the slow-reader policy.
        assert_eq!(q.push("c".into()), Push::Overflowed);
        assert!(q.is_closed());
        // Further pushes after the drop are discarded quietly.
        assert_eq!(q.push("d".into()), Push::Closed);
        // Already-queued lines stay drainable (writer flushes them or
        // fails against the dead socket), then the queue reports done.
        assert_eq!(q.pop_wait(), Some(vec!["a".to_string(), "b".to_string()]));
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn write_queue_capacity_floor_is_one() {
        // A zero bound could never deliver a response; it clamps to 1.
        let q = WriteQueue::new(0);
        assert_eq!(q.push("a".into()), Push::Enqueued);
        assert_eq!(q.push("b".into()), Push::Overflowed);
    }

    #[test]
    fn write_queue_close_flushes_then_ends() {
        let q = WriteQueue::new(8);
        assert_eq!(q.push("a".into()), Push::Enqueued);
        q.close();
        assert_eq!(q.push("b".into()), Push::Closed);
        assert_eq!(q.pop_wait(), Some(vec!["a".to_string()]));
        assert_eq!(q.pop_wait(), None);
        // close is idempotent.
        q.close();
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn write_queue_pop_blocks_until_push() {
        let q = Arc::new(WriteQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_wait());
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.push("x".into()), Push::Enqueued);
        assert_eq!(h.join().unwrap(), Some(vec!["x".to_string()]));
    }

    // ---- framing ----

    fn read_all(input: &[u8], max: usize) -> Vec<(String, bool)> {
        let mut r = BufReader::new(input);
        let mut buf = Vec::new();
        let mut out = Vec::new();
        loop {
            match read_line_limited(&mut r, &mut buf, max).unwrap() {
                ReadLine::Eof => return out,
                ReadLine::Line => out.push((String::from_utf8_lossy(&buf).into_owned(), false)),
                ReadLine::Oversized => out.push((String::new(), true)),
            }
        }
    }

    #[test]
    fn line_reader_frames_and_caps() {
        let lines = read_all(b"one\ntwo\r\nthree", 16);
        assert_eq!(
            lines,
            vec![
                ("one".to_string(), false),
                ("two".to_string(), false),
                // Half-written final frame (no newline, then EOF) still
                // comes out as a line; the caller parses or errors it.
                ("three".to_string(), false),
            ]
        );
    }

    #[test]
    fn line_reader_discards_oversized_but_keeps_framing() {
        let big = vec![b'x'; 64];
        let mut input = b"ok\n".to_vec();
        input.extend_from_slice(&big);
        input.extend_from_slice(b"\nafter\n");
        let lines = read_all(&input, 16);
        assert_eq!(
            lines,
            vec![
                ("ok".to_string(), false),
                (String::new(), true),
                ("after".to_string(), false),
            ]
        );
        // Oversized *final* frame without a newline: reported, no hang.
        let lines = read_all(&[b'y'; 64], 16);
        assert_eq!(lines, vec![(String::new(), true)]);
    }
}
