//! The model store: warm estimator states keyed by canonical query.
//!
//! A **cold** request pays for the reusable assets — proxy training,
//! population scoring/ordering, pilot labeling, stratification design
//! (`lts_core::warm`). The store keeps those assets; every later
//! request for the same canonical query **warm-starts**: it resumes the
//! stored state with a fresh per-request seed and spends only the
//! stage-2 share of the budget. Entries record the table version they
//! were prepared against and are dropped when it bumps.
//!
//! Persistence: a warm state is a deterministic function of
//! `(estimator profile, prepare seed, known labels)` — every `fit` and
//! every design pass replays bit-identically from the same seed once
//! the labels are free. The export format therefore carries *labels
//! and seeds, not weights*: restoring re-runs `prepare` with the labels
//! preloaded, which touches the oracle zero times and reproduces the
//! exact state. (Weight-level classifier persistence exists separately
//! in `lts_learn::persist` for the families with flat parameter sets.)

use lts_core::{LssWarm, LwsWarm, ShardedLssWarm, ShardedLwsWarm};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Identity of one stored warm state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Dataset name.
    pub dataset: String,
    /// Canonical predicate string the state estimates: the full query
    /// for monolithic plans, the **residual** for prefiltered plans —
    /// so every decomposed spelling of a query shares one warm lineage.
    pub canonical: String,
    /// Plan scope: empty for monolithic states; the canonical
    /// **prefilter** string for states prepared over a prefiltered
    /// (restricted) population. The same residual estimated under
    /// different prefilters samples different populations — the states
    /// are not interchangeable.
    pub scope: String,
    /// Budget the state was prepared under (requests planned at a
    /// different budget prepare their own state).
    pub budget: usize,
}

/// A warm estimator state (the estimator the planner routed to).
pub enum WarmState {
    /// Learned stratified sampling (the service default).
    Lss(LssWarm),
    /// Learned weighted sampling.
    Lws(LwsWarm),
    /// Sharded LSS: one [`LssWarm`] per shard (the cold path when the
    /// service is configured with more than one shard).
    LssSharded(ShardedLssWarm),
    /// Sharded LWS.
    LwsSharded(ShardedLwsWarm),
}

impl WarmState {
    /// Content digest — the "model version" stamp carried by results
    /// computed from this state.
    pub fn digest(&self) -> u64 {
        match self {
            WarmState::Lss(w) => w.digest(),
            WarmState::Lws(w) => w.digest(),
            WarmState::LssSharded(w) => w.digest(),
            WarmState::LwsSharded(w) => w.digest(),
        }
    }

    /// Oracle evaluations the prepare phase spent (the cold-start
    /// premium this state amortizes).
    pub fn prepare_evals(&self) -> usize {
        match self {
            WarmState::Lss(w) => w.prepare_evals,
            WarmState::Lws(w) => w.prepare_evals,
            WarmState::LssSharded(w) => w.prepare_evals,
            WarmState::LwsSharded(w) => w.prepare_evals,
        }
    }

    /// Fresh oracle evaluations one resume spends.
    pub fn resume_evals(&self) -> usize {
        match self {
            WarmState::Lss(w) => w.split.stage2,
            WarmState::Lws(w) => w.sample_budget,
            WarmState::LssSharded(w) => w.resume_evals(),
            WarmState::LwsSharded(w) => w.resume_evals(),
        }
    }

    /// All exactly-known `(object id, label)` pairs — the persistence
    /// payload. Sharded states report **global** object ids, so export
    /// and restore are shard-layout-transparent.
    pub fn known_labels(&self) -> Vec<(usize, bool)> {
        match self {
            WarmState::Lss(w) => w.known_labels(),
            WarmState::Lws(w) => w.known_labels(),
            WarmState::LssSharded(w) => w.known_labels(),
            WarmState::LwsSharded(w) => w.known_labels(),
        }
    }

    /// Estimator-family tag for responses (`lss` / `lws`, sharded or
    /// not — the route names the estimator, not the execution layout).
    pub fn tag(&self) -> &'static str {
        match self {
            WarmState::Lss(_) | WarmState::LssSharded(_) => "lss",
            WarmState::Lws(_) | WarmState::LwsSharded(_) => "lws",
        }
    }

    /// Full tag for store exports: the family plus the shard count for
    /// sharded states (`lss@4`), so restore rebuilds the same plan.
    pub fn export_tag(&self) -> String {
        match self {
            WarmState::Lss(_) | WarmState::Lws(_) => self.tag().to_string(),
            WarmState::LssSharded(w) => format!("lss@{}", w.plan().k()),
            WarmState::LwsSharded(w) => format!("lws@{}", w.plan().k()),
        }
    }
}

/// One store entry.
pub struct StoredModel {
    /// The resumable state.
    pub state: WarmState,
    /// Table version it was prepared against.
    pub table_version: u64,
    /// The seed `prepare` ran under (restoring replays it).
    pub prepare_seed: u64,
    /// The raw condition text that first created the entry (restores
    /// re-parse this; the canonical string is not a parser input).
    pub raw_condition: String,
    /// Times this state has been resumed.
    pub resumes: u64,
}

/// The service's model store.
#[derive(Default)]
pub struct ModelStore {
    entries: HashMap<StoreKey, StoredModel>,
}

/// Percent-encode the characters that would break the line format.
pub(crate) fn enc_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0a"),
            '\r' => out.push_str("%0d"),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn dec_text(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let (a, b) = (chars.next()?, chars.next()?);
        let byte = u8::from_str_radix(&format!("{a}{b}"), 16).ok()?;
        out.push(char::from(byte));
    }
    Some(out)
}

/// One line of the portable store export, parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreExportEntry {
    /// Dataset name.
    pub dataset: String,
    /// Raw condition text (parser input).
    pub condition: String,
    /// Budget the state was prepared under.
    pub budget: usize,
    /// Prepare seed to replay.
    pub prepare_seed: u64,
    /// Table version the state was prepared against.
    pub table_version: u64,
    /// Estimator tag: the family (`lss` / `lws`), an optional shard
    /// suffix (`lss@4`), and an optional `+pf` suffix marking a state
    /// prepared over a prefiltered (restricted) population.
    pub estimator: String,
    /// The known `(object id, label)` pairs.
    pub labels: Vec<(usize, bool)>,
}

impl ModelStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored states.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a state servable at `table_version` (a stale entry is
    /// evicted and `None` returned).
    pub fn lookup(&mut self, key: &StoreKey, table_version: u64) -> Option<&mut StoredModel> {
        if self
            .entries
            .get(key)
            .is_some_and(|e| e.table_version != table_version)
        {
            self.entries.remove(key);
            return None;
        }
        self.entries.get_mut(key)
    }

    /// Read-only access to an entry (the parallel execution wave reads
    /// through this; staleness eviction happens in the sequential
    /// planning pass via [`ModelStore::lookup`]).
    pub fn get(&self, key: &StoreKey) -> Option<&StoredModel> {
        self.entries.get(key)
    }

    /// Whether a current entry exists (no eviction, no counting).
    pub fn contains(&self, key: &StoreKey, table_version: u64) -> bool {
        self.entries
            .get(key)
            .is_some_and(|e| e.table_version == table_version)
    }

    /// Insert a freshly prepared state.
    pub fn insert(&mut self, key: StoreKey, stored: StoredModel) {
        self.entries.insert(key, stored);
    }

    /// Drop every state of a dataset (version bump / explicit flush).
    pub fn invalidate_dataset(&mut self, dataset: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.dataset != dataset);
        before - self.entries.len()
    }

    /// Render the portable export: one `entry` line per state —
    /// dataset, budget, seeds, versions, estimator tag, raw condition,
    /// and the known labels. Lines are sorted for stable diffs.
    pub fn export(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .iter()
            .map(|(k, e)| {
                let mut labels = String::new();
                for (i, (id, l)) in e.state.known_labels().iter().enumerate() {
                    if i > 0 {
                        labels.push(',');
                    }
                    let _ = write!(labels, "{id}:{}", u8::from(*l));
                }
                // Prefiltered states carry a `+pf` tag suffix; the
                // importer re-decomposes the raw condition to rebuild
                // the restricted population, so the scope string itself
                // needs no extra field.
                let tag_suffix = if k.scope.is_empty() { "" } else { "+pf" };
                format!(
                    "entry\t{}\t{}\t{}\t{}\t{}{tag_suffix}\t{}\t{labels}",
                    enc_text(&k.dataset),
                    k.budget,
                    e.prepare_seed,
                    e.table_version,
                    e.state.export_tag(),
                    enc_text(&e.raw_condition),
                )
            })
            .collect();
        lines.sort();
        let mut out = String::from("lts-store/v1\n");
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// Parse a store export into its entries (the service replays each
    /// through `prepare_with_known` to rebuild live states).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_export(text: &str) -> Result<Vec<StoreExportEntry>, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("lts-store/v1") => {}
            other => return Err(format!("expected lts-store/v1 header, found {other:?}")),
        }
        let mut out = Vec::new();
        for (no, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let bad = |what: &str| format!("line {}: {what}", no + 2);
            if fields.len() != 8 || fields[0] != "entry" {
                return Err(bad("expected 8 tab-separated fields starting with `entry`"));
            }
            let labels = if fields[7].is_empty() {
                Vec::new()
            } else {
                fields[7]
                    .split(',')
                    .map(|kv| {
                        let (id, l) = kv.split_once(':')?;
                        Some((id.parse().ok()?, l == "1"))
                    })
                    .collect::<Option<Vec<(usize, bool)>>>()
                    .ok_or_else(|| bad("malformed label pair"))?
            };
            out.push(StoreExportEntry {
                dataset: dec_text(fields[1]).ok_or_else(|| bad("bad dataset encoding"))?,
                budget: fields[2].parse().map_err(|_| bad("bad budget"))?,
                prepare_seed: fields[3].parse().map_err(|_| bad("bad seed"))?,
                table_version: fields[4].parse().map_err(|_| bad("bad version"))?,
                estimator: fields[5].to_string(),
                condition: dec_text(fields[6]).ok_or_else(|| bad("bad condition encoding"))?,
                labels,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_encoding_roundtrips() {
        for s in ["plain", "with\ttab", "pct % and\nnewline", ""] {
            assert_eq!(dec_text(&enc_text(s)).as_deref(), Some(s));
        }
        assert!(dec_text("%zz").is_none());
    }

    #[test]
    fn export_header_and_parse_errors() {
        let store = ModelStore::new();
        let text = store.export();
        assert!(text.starts_with("lts-store/v1\n"));
        assert!(ModelStore::parse_export(&text).unwrap().is_empty());
        assert!(ModelStore::parse_export("garbage").is_err());
        assert!(ModelStore::parse_export("lts-store/v1\nentry\tonly-two").is_err());
        assert!(ModelStore::parse_export("lts-store/v1\nentry\td\t1\t2\t3\tlss\tc\tx:y").is_err());
    }

    #[test]
    fn parse_export_reads_labels() {
        let text = "lts-store/v1\nentry\tds\t200\t7\t0\tlss\t(x%20%3c%201)\t3:1,9:0\n";
        // %20/%3c decode as space and '<'.
        let entries = ModelStore::parse_export(text).unwrap();
        assert_eq!(entries.len(), 1);
        let e = &entries[0];
        assert_eq!(e.dataset, "ds");
        assert_eq!(e.budget, 200);
        assert_eq!(e.prepare_seed, 7);
        assert_eq!(e.estimator, "lss");
        assert_eq!(e.condition, "(x < 1)");
        assert_eq!(e.labels, vec![(3, true), (9, false)]);
    }
}
