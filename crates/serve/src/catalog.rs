//! The query catalog: every distinct canonical query the service has
//! seen, with its ready-to-run [`CountingProblem`].
//!
//! The catalog is the dedup point of the pipeline: requests are
//! canonicalized ([`mod@crate::fingerprint`]) at admission and equivalent
//! requests resolve to one entry — one problem (one metered predicate,
//! one feature matrix), one model-store lineage, one result-cache
//! lineage. Entries key on the **canonical string** (collision-proof);
//! the 64-bit fingerprint is the compact id responses carry.

use lts_core::CountingProblem;
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of a catalog entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Dataset name.
    pub dataset: String,
    /// Canonical predicate string.
    pub canonical: String,
}

/// One distinct query the service knows.
pub struct QueryEntry {
    /// Compact id (hash of dataset, table version, canonical string).
    pub fingerprint: u64,
    /// The assembled problem: metered predicate + features, shared by
    /// every request that resolves here.
    pub problem: Arc<CountingProblem>,
    /// Table version the problem was assembled against.
    pub table_version: u64,
    /// Requests that resolved to this entry so far.
    pub hits: u64,
}

/// The service's query catalog.
#[derive(Default)]
pub struct QueryCatalog {
    entries: HashMap<QueryKey, QueryEntry>,
}

impl QueryCatalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct queries seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up an entry.
    pub fn get(&self, key: &QueryKey) -> Option<&QueryEntry> {
        self.entries.get(key)
    }

    /// Resolve a key, building the entry with `build` on first sight
    /// and counting the hit. An entry assembled against an older table
    /// version is rebuilt (its problem captured stale column data).
    ///
    /// # Errors
    ///
    /// Propagates `build` failures (unknown feature columns etc.).
    pub fn resolve<E>(
        &mut self,
        key: QueryKey,
        fingerprint: u64,
        table_version: u64,
        build: impl FnOnce() -> Result<Arc<CountingProblem>, E>,
    ) -> Result<&QueryEntry, E> {
        use std::collections::hash_map::Entry;
        match self.entries.entry(key) {
            Entry::Occupied(mut o) => {
                if o.get().table_version != table_version {
                    let problem = build()?;
                    let hits = o.get().hits;
                    o.insert(QueryEntry {
                        fingerprint,
                        problem,
                        table_version,
                        hits,
                    });
                }
                let e = o.into_mut();
                e.hits += 1;
                Ok(e)
            }
            Entry::Vacant(v) => {
                let problem = build()?;
                let e = v.insert(QueryEntry {
                    fingerprint,
                    problem,
                    table_version,
                    hits: 0,
                });
                e.hits += 1;
                Ok(e)
            }
        }
    }

    /// Drop every entry of a dataset.
    pub fn invalidate_dataset(&mut self, dataset: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.dataset != dataset);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_table::{table_of_floats, FnPredicate, ObjectPredicate, Table};

    fn problem() -> Arc<CountingProblem> {
        let t = Arc::new(table_of_floats(&[("x", &[1.0, 2.0, 3.0])]).unwrap());
        let p: Arc<dyn ObjectPredicate> = Arc::new(FnPredicate::new("p", |t: &Table, i| {
            Ok(t.floats("x")?[i] > 1.5)
        }));
        Arc::new(CountingProblem::new(t, p, &["x"]).unwrap())
    }

    fn key(ds: &str, canon: &str) -> QueryKey {
        QueryKey {
            dataset: ds.into(),
            canonical: canon.into(),
        }
    }

    #[test]
    fn resolve_builds_once_and_counts_hits() {
        let mut cat = QueryCatalog::new();
        let mut builds = 0;
        for _ in 0..3 {
            let e = cat
                .resolve::<()>(key("d", "q"), 1, 0, || {
                    builds += 1;
                    Ok(problem())
                })
                .unwrap();
            assert_eq!(e.fingerprint, 1);
        }
        assert_eq!(builds, 1, "one build for three hits");
        assert_eq!(cat.get(&key("d", "q")).unwrap().hits, 3);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn version_bump_rebuilds_but_keeps_hit_lineage() {
        let mut cat = QueryCatalog::new();
        cat.resolve::<()>(key("d", "q"), 1, 0, || Ok(problem()))
            .unwrap();
        let mut rebuilt = false;
        let e = cat
            .resolve::<()>(key("d", "q"), 2, 1, || {
                rebuilt = true;
                Ok(problem())
            })
            .unwrap();
        assert!(rebuilt);
        assert_eq!(e.table_version, 1);
        assert_eq!(e.hits, 2);
    }

    #[test]
    fn distinct_canonicals_stay_distinct() {
        let mut cat = QueryCatalog::new();
        cat.resolve::<()>(key("d", "a"), 1, 0, || Ok(problem()))
            .unwrap();
        cat.resolve::<()>(key("d", "b"), 1, 0, || Ok(problem()))
            .unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.invalidate_dataset("d"), 2);
        assert!(cat.is_empty());
    }
}
