//! The query catalog: every distinct canonical query the service has
//! seen, with its ready-to-run [`CountingProblem`].
//!
//! The catalog is the dedup point of the pipeline: requests are
//! canonicalized ([`mod@crate::fingerprint`]) at admission and equivalent
//! requests resolve to one entry — one problem (one metered predicate,
//! one feature matrix), one model-store lineage, one result-cache
//! lineage. Entries key on the **canonical string** (collision-proof);
//! the 64-bit fingerprint is the compact id responses carry.
//!
//! An entry also carries the query's **conjunctive decomposition**
//! (when it usefully splits, see `lts_table::decompose`) and, once a
//! prefilter scan has run, the memoized **plan state** — survivor
//! count and the restricted residual problem — so repeat requests of a
//! decomposed query never re-scan or rebuild the restricted problem.
//! Plan state is version-bound: a table-version rebuild drops it.

use lts_core::CountingProblem;
use lts_table::Expr;
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of a catalog entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Dataset name.
    pub dataset: String,
    /// Canonical predicate string.
    pub canonical: String,
}

/// A query's conjunctive split into a cheap exact prefilter and an
/// expensive residual, both derived from the **normalized** expression
/// (so commuted spellings of one query share one decomposition, and
/// the part canonicals are stable cache/store keys).
#[derive(Debug, Clone)]
pub struct QueryDecomposition {
    /// The subquery-free prefilter conjunction.
    pub prefilter: Expr,
    /// The oracle-bearing residual conjunction.
    pub residual: Expr,
    /// Canonical form of the prefilter (feedback/seed key).
    pub prefilter_canonical: String,
    /// Canonical form of the residual (model-store key).
    pub residual_canonical: String,
}

/// Memoized result of a prefilter scan: how many rows survived and the
/// restricted residual problem built over them (`None` when nothing
/// survived — the exact count is 0 and no problem exists).
pub struct PlanState {
    /// Prefilter survivor count `M`.
    pub survivors: usize,
    /// Population `N` the scan ran over.
    pub population: usize,
    /// The restricted residual problem (survivor rows, delegating
    /// predicate, gathered features).
    pub restricted: Option<Arc<CountingProblem>>,
}

impl PlanState {
    /// Observed selectivity `M/N` (0 for an empty population).
    pub fn selectivity(&self) -> f64 {
        if self.population == 0 {
            0.0
        } else {
            self.survivors as f64 / self.population as f64
        }
    }
}

/// One distinct query the service knows.
pub struct QueryEntry {
    /// Compact id (hash of dataset, table version, canonical string).
    pub fingerprint: u64,
    /// The assembled problem: metered predicate + features, shared by
    /// every request that resolves here.
    pub problem: Arc<CountingProblem>,
    /// Table version the problem was assembled against.
    pub table_version: u64,
    /// Requests that resolved to this entry so far.
    pub hits: u64,
    /// Conjunctive decomposition, present iff the query splits into
    /// both a cheap prefilter and an expensive residual.
    pub decomposition: Option<Arc<QueryDecomposition>>,
    /// Memoized prefilter-scan state, populated lazily by the first
    /// planned execution ([`QueryCatalog::set_plan`]).
    pub plan: Option<Arc<PlanState>>,
}

/// The service's query catalog.
#[derive(Default)]
pub struct QueryCatalog {
    entries: HashMap<QueryKey, QueryEntry>,
}

impl QueryCatalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct queries seen.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up an entry.
    pub fn get(&self, key: &QueryKey) -> Option<&QueryEntry> {
        self.entries.get(key)
    }

    /// Resolve a key, building the entry with `build` on first sight
    /// and counting the hit. `build` returns the assembled problem plus
    /// the query's decomposition (if it splits). An entry assembled
    /// against an older table version is rebuilt — its problem captured
    /// stale column data, and any memoized plan state is dropped with
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates `build` failures (unknown feature columns etc.).
    pub fn resolve<E>(
        &mut self,
        key: QueryKey,
        fingerprint: u64,
        table_version: u64,
        build: impl FnOnce() -> Result<(Arc<CountingProblem>, Option<Arc<QueryDecomposition>>), E>,
    ) -> Result<&QueryEntry, E> {
        use std::collections::hash_map::Entry;
        match self.entries.entry(key) {
            Entry::Occupied(mut o) => {
                if o.get().table_version != table_version {
                    let (problem, decomposition) = build()?;
                    let hits = o.get().hits;
                    o.insert(QueryEntry {
                        fingerprint,
                        problem,
                        table_version,
                        hits,
                        decomposition,
                        plan: None,
                    });
                }
                let e = o.into_mut();
                e.hits += 1;
                Ok(e)
            }
            Entry::Vacant(v) => {
                let (problem, decomposition) = build()?;
                let e = v.insert(QueryEntry {
                    fingerprint,
                    problem,
                    table_version,
                    hits: 0,
                    decomposition,
                    plan: None,
                });
                e.hits += 1;
                Ok(e)
            }
        }
    }

    /// Memoize the plan state of an entry (no-op for unknown keys —
    /// the entry was invalidated between resolve and scan).
    pub fn set_plan(&mut self, key: &QueryKey, plan: Arc<PlanState>) {
        if let Some(e) = self.entries.get_mut(key) {
            e.plan = Some(plan);
        }
    }

    /// Drop every entry of a dataset.
    pub fn invalidate_dataset(&mut self, dataset: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.dataset != dataset);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lts_table::{table_of_floats, FnPredicate, ObjectPredicate, Table};

    fn problem() -> Arc<CountingProblem> {
        let t = Arc::new(table_of_floats(&[("x", &[1.0, 2.0, 3.0])]).unwrap());
        let p: Arc<dyn ObjectPredicate> = Arc::new(FnPredicate::new("p", |t: &Table, i| {
            Ok(t.floats("x")?[i] > 1.5)
        }));
        Arc::new(CountingProblem::new(t, p, &["x"]).unwrap())
    }

    fn key(ds: &str, canon: &str) -> QueryKey {
        QueryKey {
            dataset: ds.into(),
            canonical: canon.into(),
        }
    }

    #[test]
    fn resolve_builds_once_and_counts_hits() {
        let mut cat = QueryCatalog::new();
        let mut builds = 0;
        for _ in 0..3 {
            let e = cat
                .resolve::<()>(key("d", "q"), 1, 0, || {
                    builds += 1;
                    Ok((problem(), None))
                })
                .unwrap();
            assert_eq!(e.fingerprint, 1);
        }
        assert_eq!(builds, 1, "one build for three hits");
        assert_eq!(cat.get(&key("d", "q")).unwrap().hits, 3);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn version_bump_rebuilds_but_keeps_hit_lineage() {
        let mut cat = QueryCatalog::new();
        cat.resolve::<()>(key("d", "q"), 1, 0, || Ok((problem(), None)))
            .unwrap();
        // Memoized plan state from the old version…
        cat.set_plan(
            &key("d", "q"),
            Arc::new(PlanState {
                survivors: 2,
                population: 3,
                restricted: None,
            }),
        );
        let mut rebuilt = false;
        let e = cat
            .resolve::<()>(key("d", "q"), 2, 1, || {
                rebuilt = true;
                Ok((problem(), None))
            })
            .unwrap();
        assert!(rebuilt);
        assert_eq!(e.table_version, 1);
        assert_eq!(e.hits, 2);
        // …does not survive the rebuild: the scan must rerun.
        assert!(e.plan.is_none());
    }

    #[test]
    fn distinct_canonicals_stay_distinct() {
        let mut cat = QueryCatalog::new();
        cat.resolve::<()>(key("d", "a"), 1, 0, || Ok((problem(), None)))
            .unwrap();
        cat.resolve::<()>(key("d", "b"), 1, 0, || Ok((problem(), None)))
            .unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.invalidate_dataset("d"), 2);
        assert!(cat.is_empty());
    }

    #[test]
    fn set_plan_memoizes_until_invalidation() {
        let mut cat = QueryCatalog::new();
        cat.resolve::<()>(key("d", "q"), 1, 0, || Ok((problem(), None)))
            .unwrap();
        cat.set_plan(
            &key("d", "q"),
            Arc::new(PlanState {
                survivors: 1,
                population: 3,
                restricted: None,
            }),
        );
        let plan = cat.get(&key("d", "q")).unwrap().plan.as_ref().unwrap();
        assert_eq!(plan.survivors, 1);
        assert!((plan.selectivity() - 1.0 / 3.0).abs() < 1e-12);
        // Unknown keys are a no-op, not a panic.
        cat.set_plan(
            &key("d", "missing"),
            Arc::new(PlanState {
                survivors: 0,
                population: 0,
                restricted: None,
            }),
        );
        assert_eq!(cat.len(), 1);
    }
}
