//! The result cache: finished estimates keyed by canonical query.
//!
//! A repeated request (same dataset, same canonical predicate, same
//! planned budget, not marked `fresh`) is answered straight from here —
//! zero oracle evaluations, zero estimator work. Every entry records
//! the **model version** (digest of the warm state that produced it)
//! and the **table version** it was computed against; a bumped table
//! version invalidates on sight, and the [`StalenessPolicy`] bounds how
//! long / how often one estimate may be re-served before the service
//! recomputes it from the (still warm) model store.

use std::collections::HashMap;
use std::time::{Duration, Instant};

/// When a cached result stops being servable.
#[derive(Debug, Clone, Copy, Default)]
pub struct StalenessPolicy {
    /// Maximum times one entry may be served (`None` = unlimited).
    /// Deterministic — the CI thread-sweep relies on serve counts, not
    /// wall time.
    pub max_serves: Option<u64>,
    /// Maximum wall-clock age (`None` = unlimited). Wall-clock based —
    /// off by default; useful for live deployments, not for replayable
    /// benchmarks.
    pub max_age: Option<Duration>,
}

/// A finished estimate, ready to re-serve.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// Point estimate.
    pub count: f64,
    /// Standard error.
    pub std_error: f64,
    /// Interval bounds and level.
    pub lo: f64,
    /// Upper interval bound.
    pub hi: f64,
    /// Confidence level of the interval.
    pub level: f64,
    /// Oracle evaluations the original computation spent (a cache hit
    /// spends zero; this field is what it *saved*).
    pub evals_spent: usize,
    /// Digest of the warm state (model + design) that produced it.
    pub model_version: u64,
    /// Table version it was computed against.
    pub table_version: u64,
    /// Route that produced it (`"exact"`, `"lss"`, `"srs"`).
    pub route: &'static str,
    served: u64,
    created: Instant,
}

impl CachedResult {
    /// Times this entry has been re-served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// Key of one cacheable computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Dataset name.
    pub dataset: String,
    /// Canonical predicate string.
    pub canonical: String,
    /// Planned budget (0 for the exact route).
    pub budget: usize,
}

/// The staleness-aware result cache.
pub struct ResultCache {
    entries: HashMap<ResultKey, CachedResult>,
    policy: StalenessPolicy,
}

impl ResultCache {
    /// Create with a staleness policy.
    pub fn new(policy: StalenessPolicy) -> Self {
        Self {
            entries: HashMap::new(),
            policy,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert (or replace) the result of a finished computation.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &mut self,
        key: ResultKey,
        count: f64,
        std_error: f64,
        lo: f64,
        hi: f64,
        level: f64,
        evals_spent: usize,
        model_version: u64,
        table_version: u64,
        route: &'static str,
    ) {
        self.entries.insert(
            key,
            CachedResult {
                count,
                std_error,
                lo,
                hi,
                level,
                evals_spent,
                model_version,
                table_version,
                route,
                served: 0,
                created: Instant::now(),
            },
        );
    }

    /// Look up a servable entry: present, computed against the current
    /// table version, and not stale under the policy. A hit increments
    /// the serve counter; a stale or version-mismatched entry is
    /// evicted and `None` returned (the caller recomputes).
    pub fn lookup(&mut self, key: &ResultKey, table_version: u64) -> Option<CachedResult> {
        let stale = match self.entries.get(key) {
            None => return None,
            Some(e) => {
                e.table_version != table_version
                    || self.policy.max_serves.is_some_and(|m| e.served >= m)
                    || self.policy.max_age.is_some_and(|a| e.created.elapsed() > a)
            }
        };
        if stale {
            self.entries.remove(key);
            return None;
        }
        let e = self.entries.get_mut(key).expect("present");
        e.served += 1;
        Some(e.clone())
    }

    /// Iterate over every live entry (unordered) — the export path of
    /// the durable-state snapshot. Does not count as a serve.
    pub fn entries(&self) -> impl Iterator<Item = (&ResultKey, &CachedResult)> {
        self.entries.iter()
    }

    /// Drop every entry of a dataset (invalidation on version bump or
    /// explicit flush).
    pub fn invalidate_dataset(&mut self, dataset: &str) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.dataset != dataset);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(c: &str) -> ResultKey {
        ResultKey {
            dataset: "d".into(),
            canonical: c.into(),
            budget: 100,
        }
    }

    fn insert(cache: &mut ResultCache, c: &str, version: u64) {
        cache.insert(key(c), 10.0, 1.0, 8.0, 12.0, 0.95, 100, 7, version, "lss");
    }

    #[test]
    fn hit_then_version_bump_invalidates() {
        let mut cache = ResultCache::new(StalenessPolicy::default());
        insert(&mut cache, "q", 0);
        assert!(cache.lookup(&key("q"), 0).is_some());
        assert!(cache.lookup(&key("other"), 0).is_none());
        // Same query, new table version: evicted, must recompute.
        assert!(cache.lookup(&key("q"), 1).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn max_serves_bounds_reuse() {
        let mut cache = ResultCache::new(StalenessPolicy {
            max_serves: Some(2),
            max_age: None,
        });
        insert(&mut cache, "q", 0);
        assert_eq!(cache.lookup(&key("q"), 0).unwrap().served(), 1);
        assert_eq!(cache.lookup(&key("q"), 0).unwrap().served(), 2);
        // Third serve exceeds the policy: entry evicted.
        assert!(cache.lookup(&key("q"), 0).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn max_age_expires_entries() {
        let mut cache = ResultCache::new(StalenessPolicy {
            max_serves: None,
            max_age: Some(Duration::ZERO),
        });
        insert(&mut cache, "q", 0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(cache.lookup(&key("q"), 0).is_none());
    }

    #[test]
    fn dataset_invalidation_is_scoped() {
        let mut cache = ResultCache::new(StalenessPolicy::default());
        insert(&mut cache, "a", 0);
        let other = ResultKey {
            dataset: "e".into(),
            canonical: "a".into(),
            budget: 100,
        };
        cache
            .entries
            .insert(other.clone(), cache.entries[&key("a")].clone());
        assert_eq!(cache.invalidate_dataset("d"), 1);
        assert!(cache.lookup(&other, 0).is_some());
    }
}
