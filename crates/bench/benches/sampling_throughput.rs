//! Criterion benches for the sampling substrate: SRS, the two
//! weighted-without-replacement implementations, and stratified
//! allocation + drawing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lts_sampling::{
    draw_stratified, group_by_stratum, proportional_allocation, sample_without_replacement,
    weighted_sample_es, weighted_sample_fenwick,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_srs(c: &mut Criterion) {
    let mut group = c.benchmark_group("srs");
    group.sample_size(20);
    for &(n, pop) in &[
        (100usize, 100_000usize),
        (1_000, 100_000),
        (10_000, 100_000),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}_of_{pop}")),
            &(n, pop),
            |b, &(n, pop)| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| sample_without_replacement(&mut rng, black_box(n), pop).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_weighted(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_without_replacement");
    group.sample_size(20);
    let weights: Vec<f64> = (0..100_000)
        .map(|i| 0.05 + (i % 97) as f64 / 97.0)
        .collect();
    for &n in &[100usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("efraimidis_spirakis", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| weighted_sample_es(&mut rng, black_box(&weights), n).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fenwick_sequential", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| weighted_sample_fenwick(&mut rng, black_box(&weights), n).unwrap())
        });
    }
    group.finish();
}

fn bench_stratified(c: &mut Criterion) {
    let mut group = c.benchmark_group("stratified");
    group.sample_size(20);
    // 100k objects, 16 strata.
    let assignments: Vec<usize> = (0..100_000).map(|i| i % 16).collect();
    let strata = group_by_stratum(&assignments, 16);
    let sizes: Vec<usize> = strata.iter().map(Vec::len).collect();
    group.bench_function("allocate_proportional_16", |b| {
        b.iter(|| proportional_allocation(black_box(&sizes), 2_000, 2).unwrap())
    });
    let alloc = proportional_allocation(&sizes, 2_000, 2).unwrap();
    group.bench_function("draw_stratified_2000_of_100k", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| draw_stratified(&mut rng, black_box(&strata), &alloc).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_srs, bench_weighted, bench_stratified);
criterion_main!(benches);
