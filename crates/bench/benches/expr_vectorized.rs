//! Row-wise vs vectorized expression evaluation (the ISSUE-2 tentpole).
//!
//! Every pair of benchmarks below evaluates the *same* expression over
//! the *same* table through the two engines:
//!
//! * `row_wise/…` — `Expr::eval_bool` interpreted per row (schema
//!   lookup + `Value` boxing + dynamic dispatch per AST node per row);
//! * `vectorized/…` — `lts_table::vector::eval_bool_columnar`, typed
//!   column-at-a-time kernels.
//!
//! The acceptance bar is ≥ 3× throughput for a numeric comparison
//! predicate over a 1M-row table; the setup asserts the two paths are
//! label-identical before timing anything.

use criterion::{criterion_group, criterion_main, Criterion};
use lts_table::table::table_of_floats;
use lts_table::vector::eval_bool_columnar;
use lts_table::{AggThresholdPredicate, CmpOp, Expr, ObjectPredicate, RowCtx, Table};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 1_000_000;

fn million_row_table() -> Table {
    let xs: Vec<f64> = (0..ROWS).map(|i| (i % 1013) as f64 / 1013.0).collect();
    let ys: Vec<f64> = (0..ROWS).map(|i| (i % 733) as f64 / 733.0).collect();
    table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap()
}

fn row_wise_mask(e: &Expr, t: &Table) -> Vec<bool> {
    (0..t.len())
        .map(|i| e.eval_bool(RowCtx::top(t, i)).unwrap())
        .collect()
}

fn bench_pair(c: &mut Criterion, group: &str, t: &Table, e: &Expr) {
    // Correctness gate: identical labels before any timing.
    assert_eq!(
        row_wise_mask(e, t),
        eval_bool_columnar(e, t, None).unwrap(),
        "{group}: engines disagree"
    );
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("row_wise", |b| b.iter(|| row_wise_mask(black_box(e), t)));
    g.bench_function("vectorized", |b| {
        b.iter(|| eval_bool_columnar(black_box(e), t, None).unwrap())
    });
    g.finish();
}

/// The acceptance-criterion case: one numeric comparison over 1M rows.
fn bench_numeric_cmp(c: &mut Criterion) {
    let t = million_row_table();
    bench_pair(
        c,
        "expr_1m_numeric_cmp",
        &t,
        &Expr::col("x").gt(Expr::lit(0.5)),
    );
}

/// Compound mask: comparisons combined with AND (mask combination vs
/// per-row short-circuit).
fn bench_compound_mask(c: &mut Criterion) {
    let t = million_row_table();
    let e = Expr::col("x")
        .gt(Expr::lit(0.25))
        .and(Expr::col("y").le(Expr::lit(0.75)));
    bench_pair(c, "expr_1m_compound_and", &t, &e);
}

/// Arithmetic feeding a comparison: `x * 2 + y < 1.2`.
fn bench_arith_cmp(c: &mut Criterion) {
    let t = million_row_table();
    let e = Expr::col("x")
        .mul(Expr::lit(2.0))
        .add(Expr::col("y"))
        .lt(Expr::lit(1.2));
    bench_pair(c, "expr_1m_arith_cmp", &t, &e);
}

/// The SQL-form correlated-subquery predicate (skyband): interpreted
/// nested loop (`eval` per object) vs one vectorized inner scan per
/// object (`eval_batch`). Small N — the row-wise path is quadratic in
/// interpreted row visits.
fn bench_subquery_predicate(c: &mut Criterion) {
    let n = 1_500usize;
    let xs: Vec<f64> = (0..n).map(|i| (i % 89) as f64).collect();
    let ys: Vec<f64> = (0..n).map(|i| ((i * 7) % 97) as f64).collect();
    let t = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
    let dominate = Expr::col("x")
        .ge(Expr::outer("x"))
        .and(Expr::col("y").ge(Expr::outer("y")))
        .and(
            Expr::col("x")
                .gt(Expr::outer("x"))
                .or(Expr::col("y").gt(Expr::outer("y"))),
        );
    let q = AggThresholdPredicate::count("skyband", Arc::clone(&t), dominate, CmpOp::Lt, 8);
    let all: Vec<usize> = (0..n).collect();
    let row: Vec<bool> = all.iter().map(|&i| q.eval(&t, i).unwrap()).collect();
    assert_eq!(row, q.eval_batch(&t, &all).unwrap(), "engines disagree");
    let mut g = c.benchmark_group("sql_subquery_skyband_1500");
    g.sample_size(10);
    g.bench_function("row_wise", |b| {
        b.iter(|| -> Vec<bool> {
            all.iter()
                .map(|&i| q.eval(black_box(&t), i).unwrap())
                .collect()
        })
    });
    g.bench_function("vectorized_batch", |b| {
        b.iter(|| q.eval_batch(black_box(&t), &all).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_numeric_cmp,
    bench_compound_mask,
    bench_arith_cmp,
    bench_subquery_predicate
);
criterion_main!(benches);
