//! Per-row score loop vs the shared batched scoring pipeline (the
//! ISSUE-4 tentpole).
//!
//! Every benchmark scores the *same* 100k-row population with the
//! *same* fitted proxy:
//!
//! * `per_row` — the loop the learned estimators ran before the
//!   refactor: one dynamic `score` call per object;
//! * `batch/pN` — `ScoredPopulation::score_members_partitioned` with
//!   `N` member-range partitions driven by the rayon shim over the
//!   model's vectorized `score_batch`;
//! * `score+order` — the full pipeline including the stable
//!   `(score, id)` sort.
//!
//! The setup asserts batch scores are bit-identical to the per-row loop
//! at every partition count before timing anything.

use criterion::{criterion_group, criterion_main, Criterion};
use lts_core::{CountingProblem, ScoredPopulation};
use lts_learn::{Classifier, Knn, Mlp, RandomForest};
use lts_table::table::table_of_floats;
use lts_table::{FnPredicate, ObjectPredicate, Table};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 100_000;
const PARTITIONS: [usize; 3] = [1, 4, 8];

fn population() -> CountingProblem {
    let xs: Vec<f64> = (0..ROWS).map(|i| (i % 1013) as f64 / 1013.0).collect();
    let ys: Vec<f64> = (0..ROWS).map(|i| (i % 733) as f64 / 733.0).collect();
    let table = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
    let q: Arc<dyn ObjectPredicate> = Arc::new(FnPredicate::new("band", |t: &Table, i| {
        Ok(t.floats("x")?[i] + 0.3 * t.floats("y")?[i] < 0.8)
    }));
    CountingProblem::new(table, q, &["x", "y"]).unwrap()
}

fn fitted<M: Classifier>(problem: &CountingProblem, model: &mut M) {
    let ids: Vec<usize> = (0..problem.n()).step_by(400).collect();
    let labels: Vec<bool> = ids.iter().map(|&i| problem.label(i).unwrap()).collect();
    model
        .fit(&problem.features().gather(&ids), &labels)
        .unwrap();
}

fn bench_model(c: &mut Criterion, group: &str, problem: &CountingProblem, model: &dyn Classifier) {
    let members: Vec<usize> = (0..problem.n()).collect();
    // Determinism gate: bit-identical scores at every partition count.
    let features = problem.features();
    let per_row: Vec<f64> = (0..problem.n())
        .map(|i| model.score(features.row(i)).unwrap())
        .collect();
    for parts in PARTITIONS {
        let sp =
            ScoredPopulation::score_members_partitioned(problem, model, members.clone(), parts)
                .unwrap();
        assert!(
            sp.scores()
                .iter()
                .zip(&per_row)
                .all(|(b, r)| b.to_bits() == r.to_bits()),
            "{group}: batch scores diverged at {parts} partitions"
        );
    }

    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("per_row", |b| {
        b.iter(|| {
            let mut scores = Vec::with_capacity(problem.n());
            for i in 0..problem.n() {
                scores.push(model.score(black_box(features.row(i))).unwrap());
            }
            scores
        })
    });
    for parts in PARTITIONS {
        g.bench_function(format!("batch/p{parts}"), |b| {
            b.iter(|| {
                ScoredPopulation::score_members_partitioned(
                    problem,
                    black_box(model),
                    members.clone(),
                    parts,
                )
                .unwrap()
            })
        });
    }
    g.bench_function("score+order", |b| {
        b.iter(|| {
            ScoredPopulation::score_members(problem, black_box(model), members.clone())
                .unwrap()
                .into_ordered()
        })
    });
    g.finish();
}

fn bench_forest(c: &mut Criterion) {
    let problem = population();
    let mut model = RandomForest::with_trees(50, 7);
    fitted(&problem, &mut model);
    bench_model(c, "score_100k_forest", &problem, &model);
}

fn bench_mlp(c: &mut Criterion) {
    let problem = population();
    let mut model = Mlp::with_seed(7);
    fitted(&problem, &mut model);
    bench_model(c, "score_100k_mlp", &problem, &model);
}

fn bench_knn(c: &mut Criterion) {
    let problem = population();
    let mut model = Knn::new(5).unwrap();
    fitted(&problem, &mut model);
    bench_model(c, "score_100k_knn", &problem, &model);
}

criterion_group!(benches, bench_forest, bench_mlp, bench_knn);
criterion_main!(benches);
