//! Criterion benches for the stratification-design algorithms:
//! DirSol, LogBdr, DynPgm (per T-selection), DynPgmP, and the
//! brute-force oracle, plus the ε-granularity ablation.
//!
//! These anchor the paper's complexity claims (§4.2.1): DirSol ~ m²
//! pairs, DynPgm ~ |B|²·H per bound, DynPgmP a single separable pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lts_strata::{
    brute_force, dirsol, dynpgm, dynpgmp, logbdr, Allocation, DesignParams, PilotIndex, TSelection,
};
use std::hint::black_box;

fn pilot(n_objects: usize, m: usize, seed: u64) -> PilotIndex {
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let entries: Vec<(usize, bool)> = (0..m)
        .map(|k| {
            let pos = k * n_objects / m;
            let frac = pos as f64 / n_objects as f64;
            (pos, next() < frac)
        })
        .collect();
    PilotIndex::new(n_objects, entries).unwrap()
}

fn params(h: usize, n_objects: usize) -> DesignParams {
    DesignParams {
        n_strata: h,
        budget: n_objects / 20,
        min_stratum_size: n_objects / 10,
        min_pilots_per_stratum: 3,
        epsilon: 1.0,
    }
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("strata_design");
    group.sample_size(10);

    for &(n, m) in &[(2_000usize, 40usize), (20_000, 120), (60_000, 300)] {
        let p = pilot(n, m, 7);
        group.bench_with_input(
            BenchmarkId::new("dirsol_h3", format!("N{n}_m{m}")),
            &p,
            |b, p| b.iter(|| dirsol(black_box(p), &params(3, n), Allocation::Neyman).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("dynpgm_h4_pruned", format!("N{n}_m{m}")),
            &p,
            |b, p| b.iter(|| dynpgm(black_box(p), &params(4, n), TSelection::Pruned(6)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("dynpgm_h4_unconstrained", format!("N{n}_m{m}")),
            &p,
            |b, p| {
                b.iter(|| dynpgm(black_box(p), &params(4, n), TSelection::Unconstrained).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dynpgmp_h4", format!("N{n}_m{m}")),
            &p,
            |b, p| b.iter(|| dynpgmp(black_box(p), &params(4, n)).unwrap()),
        );
    }

    // Full T-grid on a mid-size input (the Theorem-3 configuration).
    let p = pilot(20_000, 120, 7);
    group.bench_function("dynpgm_h4_full_T", |b| {
        b.iter(|| dynpgm(black_box(&p), &params(4, 20_000), TSelection::Full).unwrap())
    });

    // LogBdr is exponential in H: bench the small-m regime it is meant for.
    let p_small = pilot(2_000, 18, 7);
    group.bench_function("logbdr_h3_m18", |b| {
        b.iter(|| logbdr(black_box(&p_small), &params(3, 2_000), Allocation::Neyman).unwrap())
    });

    // Brute force: only tiny inputs are tractable.
    let p_tiny = pilot(80, 12, 7);
    let tiny_params = DesignParams {
        n_strata: 3,
        budget: 4,
        min_stratum_size: 8,
        min_pilots_per_stratum: 2,
        epsilon: 1.0,
    };
    group.bench_function("bruteforce_h3_N80", |b| {
        b.iter(|| brute_force(black_box(&p_tiny), &tiny_params, Allocation::Neyman).unwrap())
    });

    group.finish();
}

fn bench_epsilon_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("strata_epsilon");
    group.sample_size(10);
    let p = pilot(20_000, 120, 9);
    for &eps in &[0.25f64, 0.5, 1.0, 3.0] {
        let params = DesignParams {
            epsilon: eps,
            ..params(4, 20_000)
        };
        group.bench_with_input(
            BenchmarkId::new("dynpgmp", format!("eps{eps}")),
            &p,
            |b, p| b.iter(|| dynpgmp(black_box(p), &params).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_epsilon_ablation);
criterion_main!(benches);
