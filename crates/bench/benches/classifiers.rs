//! Criterion benches for the ML substrate: classifier training and
//! whole-population scoring (the dominant LSS phase-2 overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lts_learn::{Classifier, GaussianNb, Gbm, Knn, Logistic, Matrix, Mlp, RandomForest};
use std::hint::black_box;

fn blob_data(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let cls = next() < 0.4;
        let (cx, cy) = if cls { (2.0, 2.0) } else { (0.0, 0.0) };
        rows.push(vec![cx + next() * 1.6 - 0.8, cy + next() * 1.6 - 0.8]);
        labels.push(cls);
    }
    (Matrix::from_rows(&rows).unwrap(), labels)
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier_fit");
    group.sample_size(10);
    let (x, y) = blob_data(1_000, 5);
    group.bench_function("knn_k5_n1000", |b| {
        b.iter(|| {
            let mut m = Knn::new(5).unwrap();
            m.fit(black_box(&x), &y).unwrap();
            m
        })
    });
    group.bench_function("rf_100trees_n1000", |b| {
        b.iter(|| {
            let mut m = RandomForest::with_trees(100, 1);
            m.fit(black_box(&x), &y).unwrap();
            m
        })
    });
    group.bench_function("mlp_200epochs_n1000", |b| {
        b.iter(|| {
            let mut m = Mlp::with_seed(1);
            m.fit(black_box(&x), &y).unwrap();
            m
        })
    });
    group.bench_function("logistic_n1000", |b| {
        b.iter(|| {
            let mut m = Logistic::default();
            m.fit(black_box(&x), &y).unwrap();
            m
        })
    });
    group.bench_function("gnb_n1000", |b| {
        b.iter(|| {
            let mut m = GaussianNb::default();
            m.fit(black_box(&x), &y).unwrap();
            m
        })
    });
    group.bench_function("gbm_50rounds_n1000", |b| {
        b.iter(|| {
            let mut m = Gbm::default();
            m.fit(black_box(&x), &y).unwrap();
            m
        })
    });
    group.finish();
}

fn bench_score_population(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_population");
    group.sample_size(10);
    let (x_train, y) = blob_data(1_000, 5);
    let (x_pop, _) = blob_data(50_000, 9);

    let mut knn = Knn::new(5).unwrap();
    knn.fit(&x_train, &y).unwrap();
    let mut rf = RandomForest::with_trees(100, 1);
    rf.fit(&x_train, &y).unwrap();
    let mut nn = Mlp::with_seed(1);
    nn.fit(&x_train, &y).unwrap();
    let mut gnb = GaussianNb::default();
    gnb.fit(&x_train, &y).unwrap();
    let mut gbm = Gbm::default();
    gbm.fit(&x_train, &y).unwrap();

    for (name, model) in [
        ("knn", &knn as &dyn Classifier),
        ("rf100", &rf as &dyn Classifier),
        ("mlp", &nn as &dyn Classifier),
        ("gnb", &gnb as &dyn Classifier),
        ("gbm50", &gbm as &dyn Classifier),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "50k_rows"), &x_pop, |b, x| {
            b.iter(|| model.score_batch(black_box(x)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_score_population);
criterion_main!(benches);
