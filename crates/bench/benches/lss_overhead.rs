//! Criterion bench for end-to-end estimator runs — the machine-readable
//! companion to the Figure-3 overhead experiment. Compares full LSS
//! against the baselines at the same budget on the Neighbors scenario
//! (fast predicate, so the measured time is dominated by the estimator
//! machinery rather than `q`).

use criterion::{criterion_group, criterion_main, Criterion};
use lts_core::estimators::{CountEstimator, Lss, Lws, Srs, Ssp};
use lts_data::{neighbors_scenario, SelectivityLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_end_to_end");
    group.sample_size(10);
    let scenario = neighbors_scenario(8_000, SelectivityLevel::S, 17).unwrap();
    let budget = 160; // 2% of 8 000
    let problem = &scenario.problem;

    let estimators: Vec<(&str, Box<dyn CountEstimator>)> = vec![
        ("srs", Box::new(Srs::default())),
        ("ssp", Box::new(Ssp::default())),
        ("lws", Box::new(Lws::default())),
        ("lss", Box::new(Lss::default())),
    ];
    for (name, est) in &estimators {
        group.bench_function(*name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                problem.reset_meter();
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                est.estimate(black_box(problem), budget, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
