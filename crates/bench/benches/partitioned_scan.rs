//! Single-partition vs partitioned parallel scan (the ISSUE-3
//! tentpole).
//!
//! Every benchmark evaluates the *same* predicate over the *same*
//! 1M-row table:
//!
//! * `serial` — `lts_table::vector::eval_bool_columnar`, the PR-2
//!   single-pass vectorized scan (≡ one partition);
//! * `partitioned/pN` — `PartitionedTable::par_eval_bool` with `N`
//!   row-range partitions driven in parallel by the rayon shim.
//!
//! The acceptance bar is ≥ 2× throughput at ≥ 4 partitions on a ≥
//! 4-thread host (on one hardware thread the executor degenerates to
//! the inline serial scan; expect ≈ 1×). The setup asserts the
//! partitioned labels are identical to the serial labels at every
//! partition count before timing anything — the determinism contract
//! the `bench_partitioned_scan` binary re-checks across thread counts.

use criterion::{criterion_group, criterion_main, Criterion};
use lts_table::partition::PartitionedTable;
use lts_table::table::table_of_floats;
use lts_table::vector::eval_bool_columnar;
use lts_table::{Expr, Table};
use std::hint::black_box;
use std::sync::Arc;

const ROWS: usize = 1_000_000;
const PARTITIONS: [usize; 3] = [2, 4, 8];

fn million_row_table() -> Arc<Table> {
    let xs: Vec<f64> = (0..ROWS).map(|i| (i % 1013) as f64 / 1013.0).collect();
    let ys: Vec<f64> = (0..ROWS).map(|i| (i % 733) as f64 / 733.0).collect();
    Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap())
}

fn bench_scan(c: &mut Criterion, group: &str, t: &Arc<Table>, e: &Expr) {
    // Determinism gate: identical labels at every partition count.
    let serial = eval_bool_columnar(e, t, None).unwrap();
    for parts in PARTITIONS {
        let pt = PartitionedTable::new(Arc::clone(t), parts);
        assert_eq!(
            pt.par_eval_bool(e).unwrap(),
            serial,
            "{group}: partitioned scan diverged at {parts} partitions"
        );
    }
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| eval_bool_columnar(black_box(e), t, None).unwrap())
    });
    for parts in PARTITIONS {
        let pt = PartitionedTable::new(Arc::clone(t), parts);
        g.bench_function(format!("partitioned/p{parts}"), |b| {
            b.iter(|| pt.par_eval_bool(black_box(e)).unwrap())
        });
    }
    g.finish();
}

/// The acceptance-criterion case: one numeric comparison over 1M rows.
fn bench_numeric_cmp(c: &mut Criterion) {
    let t = million_row_table();
    bench_scan(
        c,
        "pscan_1m_numeric_cmp",
        &t,
        &Expr::col("x").gt(Expr::lit(0.5)),
    );
}

/// Compound mask with arithmetic: `x * 2 + y < 1.2 AND y > 0.1`.
fn bench_compound(c: &mut Criterion) {
    let t = million_row_table();
    let e = Expr::col("x")
        .mul(Expr::lit(2.0))
        .add(Expr::col("y"))
        .lt(Expr::lit(1.2))
        .and(Expr::col("y").gt(Expr::lit(0.1)));
    bench_scan(c, "pscan_1m_compound", &t, &e);
}

criterion_group!(benches, bench_numeric_cmp, bench_compound);
criterion_main!(benches);
