//! Machine-readable benchmark artifacts.
//!
//! Every harness run can drop a `BENCH_<name>.json` file into the
//! output directory: one record per estimator/cell with the median,
//! IQR, mean unique evals, and mean wall time. Future PRs diff these
//! files to track the perf trajectory without re-parsing stdout tables.
//! The full schema (fields, units, execution-mode caveats) is
//! documented in `docs/benchmarks.md` at the repository root.
//!
//! The JSON is hand-formatted (the workspace's serde is a no-op shim;
//! the schema here is flat enough that formatting beats a dependency).

use crate::harness::Cell;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One benchmark measurement: an estimator on a cell.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Estimator (row) label.
    pub label: String,
    /// Cell (column) label; empty when not cell-structured.
    pub cell: String,
    /// Median point estimate (or the metric being tracked).
    pub median: f64,
    /// Interquartile range of the per-trial values.
    pub iqr: f64,
    /// Mean unique `q` evaluations per trial (NaN when not applicable).
    pub mean_evals: f64,
    /// Mean wall time per trial, in seconds. Measured under the
    /// execution mode named by the document's `trial_execution` field:
    /// parallel-mode times include core contention, so compare
    /// trajectories only between runs with matching mode, trial count,
    /// and host. The estimate statistics (`median`, `iqr`,
    /// `mean_evals`) are deterministic and mode-independent.
    pub wall_seconds: f64,
}

impl BenchRecord {
    /// Extract the benchmark-relevant numbers from a harness cell.
    pub fn from_cell(cell: &Cell) -> Self {
        BenchRecord {
            label: cell.label.clone(),
            cell: cell.column.clone(),
            median: cell.stats.median(),
            iqr: cell.stats.iqr(),
            mean_evals: cell.stats.mean_evals,
            wall_seconds: cell.stats.mean_timings.total.as_secs_f64(),
        }
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn num(v: f64) -> String {
    // JSON has no NaN/inf; encode them as null.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render records as a `BENCH_*.json` document. `trial_execution`
/// names the mode wall times were measured under (`"parallel"` /
/// `"sequential"`), so trajectory diffs compare like with like.
pub fn render_bench_json(name: &str, trial_execution: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"{}\",", esc(name));
    let _ = writeln!(out, "  \"schema_version\": 1,");
    let _ = writeln!(out, "  \"trial_execution\": \"{}\",", esc(trial_execution));
    let _ = writeln!(out, "  \"records\": [");
    for (k, r) in records.iter().enumerate() {
        let comma = if k + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"label\": \"{}\", \"cell\": \"{}\", \"median\": {}, \"iqr\": {}, \
             \"mean_evals\": {}, \"wall_seconds\": {}}}{comma}",
            esc(&r.label),
            esc(&r.cell),
            num(r.median),
            num(r.iqr),
            num(r.mean_evals),
            num(r.wall_seconds),
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = write!(out, "}}");
    out
}

/// Write `BENCH_<name>.json` into `dir` (creating it), returning the
/// path.
///
/// # Errors
///
/// Returns IO errors.
pub fn write_bench_json(
    dir: &str,
    name: &str,
    trial_execution: &str,
    records: &[BenchRecord],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = Path::new(dir).join(format!("BENCH_{name}.json"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(f, "{}", render_bench_json(name, trial_execution, records))?;
    f.flush()?;
    Ok(path)
}

/// Write records and log the outcome, never failing the experiment
/// (benchmark artifacts are best-effort by design).
pub fn emit_records_json(dir: &str, name: &str, trial_execution: &str, records: &[BenchRecord]) {
    match write_bench_json(dir, name, trial_execution, records) {
        Ok(path) => println!("   perf artifact: {}", path.display()),
        Err(e) => eprintln!("   [warn] could not write BENCH_{name}.json: {e}"),
    }
}

/// Convenience: convert cells and [`emit_records_json`] them.
/// Harness cells are measured by `run_trials`, whose default is
/// parallel execution.
pub fn emit_cells_json(dir: &str, name: &str, cells: &[Cell]) {
    let records: Vec<BenchRecord> = cells.iter().map(BenchRecord::from_cell).collect();
    emit_records_json(dir, name, "parallel", &records);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, median: f64) -> BenchRecord {
        BenchRecord {
            label: label.into(),
            cell: "Sports/XS @1%".into(),
            median,
            iqr: 1.5,
            mean_evals: 60.0,
            wall_seconds: 0.25,
        }
    }

    #[test]
    fn renders_valid_flat_json() {
        let doc = render_bench_json(
            "fig2",
            "parallel",
            &[record("SRS", 10.0), record("LSS", 9.5)],
        );
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"bench\": \"fig2\""));
        assert!(doc.contains("\"trial_execution\": \"parallel\""));
        assert!(doc.contains("\"label\": \"SRS\""));
        assert!(doc.contains("\"wall_seconds\": 0.25"));
        // Exactly one separating comma between the two records.
        assert_eq!(doc.matches("}},").count() + doc.matches("},\n").count(), 1);
    }

    #[test]
    fn escapes_and_nonfinite() {
        let mut r = record("quo\"te", f64::NAN);
        r.cell = "a\\b".into();
        let doc = render_bench_json("x", "sequential", &[r]);
        assert!(doc.contains("quo\\\"te"));
        assert!(doc.contains("a\\\\b"));
        assert!(doc.contains("\"median\": null"));
    }

    #[test]
    fn writes_file() {
        let dir = std::env::temp_dir().join("lts_bench_json_test");
        let dir = dir.to_str().unwrap();
        let path = write_bench_json(dir, "smoke", "parallel", &[record("SRS", 1.0)]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap() == "BENCH_smoke.json");
        assert!(content.contains("\"schema_version\": 1"));
    }
}
