//! Runs every reproduction experiment in paper order: Table 1 then
//! Figures 1–8. Accepts the shared flags (`--trials`, `--scale`,
//! `--seed`, `--out`, `--full`).

use lts_bench::experiments;
use lts_bench::RunConfig;

type Step = (&'static str, fn(&RunConfig) -> lts_core::CoreResult<()>);

fn main() {
    let cfg = RunConfig::from_env();
    println!(
        "Reproducing all experiments (trials={}, scale={}, seed={}, out={})",
        cfg.trials, cfg.scale, cfg.seed, cfg.out_dir
    );
    let start = std::time::Instant::now();
    let steps: Vec<Step> = vec![
        ("Table 1", experiments::table1::run),
        ("Figure 1", experiments::fig1::run),
        ("Figure 2", experiments::fig2::run),
        ("Figure 3", experiments::fig3::run),
        ("Figure 4 (layouts)", experiments::fig4_layout::run),
        ("Figure 4 (strata)", experiments::fig4_strata::run),
        ("Figure 5", experiments::fig5::run),
        ("Figure 6", experiments::fig6::run),
        ("Figure 7", experiments::fig7::run),
        ("Figure 8", experiments::fig8::run),
        ("Ablations", experiments::ablations::run),
    ];
    let mut failures = 0usize;
    for (name, run) in steps {
        println!();
        let t0 = std::time::Instant::now();
        match run(&cfg) {
            Ok(()) => println!("   [{name} done in {:.1}s]", t0.elapsed().as_secs_f64()),
            Err(e) => {
                failures += 1;
                eprintln!("   [{name} FAILED: {e}]");
            }
        }
    }
    println!(
        "\nAll experiments finished in {:.1}s ({failures} failure(s)).",
        start.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
