//! Regenerates the paper's Figure 8 experiment.
fn main() {
    let cfg = lts_bench::RunConfig::from_env();
    if let Err(e) = lts_bench::experiments::fig8::run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
