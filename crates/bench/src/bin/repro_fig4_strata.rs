//! Regenerates the paper's Figure 4_strata experiment.
fn main() {
    let cfg = lts_bench::RunConfig::from_env();
    if let Err(e) = lts_bench::experiments::fig4_strata::run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
