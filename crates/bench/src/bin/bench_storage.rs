//! Out-of-core storage benchmark: paged scans with zone-map page
//! skipping versus the in-RAM partitioned scan, plus warm-restart cost.
//!
//! For each `ScaledTier` in {x30, x100}, the Sports population is
//! written out as a paged table and the same selective conjunctive
//! query — a `player_id` range prefilter (the generator emits
//! `player_id` nondecreasing, so pages have tight zone maps) AND an
//! arithmetic residual — is counted three ways:
//!
//! * `inram_scan` — `PartitionedTable::par_count` over the resident
//!   table (the best case: no I/O, no decode);
//! * `cold_full_scan` — a freshly opened `PagedTable` with zone
//!   skipping **off**: every page is faulted, checksummed, decoded,
//!   and evaluated;
//! * `zone_skipped_scan` — a freshly opened `PagedTable` with zone
//!   skipping **on**: pages whose zone maps prove the prefilter false
//!   are never read.
//!
//! All three must agree on the exact count (the storage determinism
//! contract), the skipped scan must read **≤ 50 % of the pages**, and
//! it must post a lower wall time than the cold full scan — all
//! asserted *before* `BENCH_storage.json` is written.
//!
//! The warm-restart pair measures the serving layer's durable state:
//! `cold_prepare` is a fresh service registering the dataset and
//! answering one cold query; `state_restore` is a new service loading
//! the snapshot (`lts_serve::state`, the `--state-dir` path) and
//! serving the same query from the restored result cache —
//! bit-identical, zero oracle evaluations.
//!
//! `mean_evals` carries pages-read for scan rows and oracle
//! evaluations for restart rows. Wall times are the only
//! non-deterministic fields: CI diffs the artifact between thread
//! counts with `wall_seconds` masked (schema in `docs/benchmarks.md`).
//!
//! Usage: `cargo run --release -p lts-bench --bin bench_storage --
//! [--seed S] [--out DIR]` (`--scale`/`--trials` accepted, unused —
//! the tiers fix the sizes).

use lts_bench::{emit_records_json, BenchRecord, RunConfig, TextTable};
use lts_data::{scaled_scenario, DatasetKind, ScaledTier, SelectivityLevel};
use lts_serve::{state, DatasetSpec, Request, Service, ServiceConfig, Target};
use lts_table::{Expr, PagedTable, PartitionedTable, Table};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Rows per page: small enough that the x30 tier has a few dozen
/// pages, large enough that a page is a meaningful unit of I/O.
const PAGE_ROWS: usize = 1024;

fn record(label: &str, cell: &str, value: f64, reads: f64, wall: f64) -> BenchRecord {
    BenchRecord {
        label: label.to_string(),
        cell: cell.to_string(),
        median: value,
        iqr: 0.0,
        mean_evals: reads,
        wall_seconds: wall,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lts_bench_storage_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct ScanOut {
    count: usize,
    wall: f64,
    pages_read: u64,
    pages_total: u64,
}

fn paged_scan(dir: &Path, pool_pages: usize, zone_skipping: bool, expr: &Expr) -> ScanOut {
    // A fresh open per scan: an empty buffer pool, so every page the
    // scan touches is a real disk fault (cold-cache semantics).
    let paged = PagedTable::open(dir, pool_pages)
        .expect("open paged table")
        .with_zone_skipping(zone_skipping);
    let t0 = Instant::now();
    let count = paged.par_count(expr).expect("paged count");
    let wall = t0.elapsed().as_secs_f64();
    let scan = paged.scan_snapshot();
    ScanOut {
        count,
        wall,
        pages_read: scan.pages_evaluated,
        pages_total: scan.pages_evaluated + scan.pages_skipped,
    }
}

struct TierOut {
    records: Vec<BenchRecord>,
    rows: Vec<Vec<String>>,
}

fn run_tier(tier: ScaledTier, seed: u64) -> TierOut {
    let scenario = scaled_scenario(DatasetKind::Sports, tier, SelectivityLevel::M, seed)
        .expect("sports scenario");
    let table: &Arc<Table> = &scenario.table;
    let n = table.len();

    // Selective prefilter: keep the first ~quarter of the population by
    // `player_id` (nondecreasing in row order, so the page zone maps
    // are tight ranges and pages past the boundary are provably false).
    let ids = table.ints("player_id").expect("player_id column");
    let cutoff = ids[n / 4];
    // Row-local arithmetic residual — expensive enough per row that
    // skipped pages save evaluation as well as I/O, and subquery-free
    // so the scan never depends on rows outside the page.
    let residual = (Expr::col("strikeouts").sub(Expr::lit(100.0)))
        .power(Expr::lit(2.0))
        .add((Expr::col("wins").sub(Expr::lit(8.0))).power(Expr::lit(2.0)))
        .sqrt()
        .lt(Expr::lit(60.0));
    let expr = Expr::col("player_id")
        .lt(Expr::lit(cutoff as f64))
        .and(residual);

    // In-RAM baseline.
    let pt = PartitionedTable::auto(Arc::clone(table));
    let t0 = Instant::now();
    let inram_count = pt.par_count(&expr).expect("in-RAM count");
    let inram_wall = t0.elapsed().as_secs_f64();

    // Page out the table; the buffer pool holds one column's worth of
    // pages while the query touches three columns, so the full scan
    // cycles the pool (genuine out-of-core pressure).
    let dir = temp_dir(tier.label());
    PagedTable::create(&dir, table, PAGE_ROWS).expect("create paged table");
    let n_pages = n.div_ceil(PAGE_ROWS);

    let full = paged_scan(&dir, n_pages, false, &expr);
    let skipped = paged_scan(&dir, n_pages, true, &expr);
    let _ = std::fs::remove_dir_all(&dir);

    // ------------------------------------------------------------------
    // Acceptance gates — all BEFORE any artifact is written.
    // ------------------------------------------------------------------
    assert_eq!(
        full.count,
        inram_count,
        "{}: cold full scan count",
        tier.label()
    );
    assert_eq!(
        skipped.count,
        inram_count,
        "{}: zone-skipped count",
        tier.label()
    );
    assert_eq!(
        full.pages_read,
        n_pages as u64,
        "{}: full scan must read every page",
        tier.label()
    );
    assert!(
        skipped.pages_read * 2 <= skipped.pages_total,
        "{}: zone-skipped scan must read <= 50% of pages, read {}/{}",
        tier.label(),
        skipped.pages_read,
        skipped.pages_total
    );
    assert!(
        skipped.wall < full.wall,
        "{}: zone-skipped scan must beat the cold full scan, {:.4}s vs {:.4}s",
        tier.label(),
        skipped.wall,
        full.wall
    );

    let cell = tier.label();
    let fraction = skipped.pages_read as f64 / skipped.pages_total as f64;
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (label, count, reads, wall) in [
        ("inram_scan", inram_count, 0u64, inram_wall),
        ("cold_full_scan", full.count, full.pages_read, full.wall),
        (
            "zone_skipped_scan",
            skipped.count,
            skipped.pages_read,
            skipped.wall,
        ),
    ] {
        rows.push(vec![
            cell.to_string(),
            label.to_string(),
            format!("{count}"),
            format!("{reads}/{n_pages}"),
            format!("{:.2}", wall * 1e3),
        ]);
        records.push(record(label, cell, count as f64, reads as f64, wall));
    }
    records.push(record(
        "zone_skip_page_fraction",
        cell,
        fraction,
        f64::NAN,
        0.0,
    ));
    TierOut { records, rows }
}

/// Cold service prepare versus `--state-dir` snapshot restore, over the
/// x30 Sports population.
fn run_restart(seed: u64) -> (Vec<BenchRecord>, Vec<Vec<String>>) {
    let spec = DatasetSpec {
        kind: "sports".to_string(),
        rows: ScaledTier::X30.rows(),
        level: "M".to_string(),
        seed,
    };
    let condition = "strikeouts < 120";
    let run = |svc: &mut Service, id: u64| {
        let r = svc.run(Request {
            id,
            dataset: "s".to_string(),
            condition: condition.to_string(),
            target: Target::Budget(200),
            fresh: false,
        });
        assert!(r.ok, "request failed: {:?}", r.error);
        r
    };

    // Cold prepare: generate + register + answer one cold query.
    let t0 = Instant::now();
    let mut cold_svc = Service::new(ServiceConfig {
        seed,
        ..ServiceConfig::default()
    });
    cold_svc.register_generated("s", &spec).expect("register");
    let cold = run(&mut cold_svc, 1);
    let cold_wall = t0.elapsed().as_secs_f64();
    assert_eq!(cold.served, "cold");
    let reference = run(&mut cold_svc, 2);
    assert_eq!(reference.served, "cached");

    let dir = temp_dir("state");
    state::save(&cold_svc, &dir).expect("save snapshot");

    // Restore: load the snapshot and serve the same query, first try.
    let t0 = Instant::now();
    let mut warm_svc = Service::new(ServiceConfig {
        seed,
        ..ServiceConfig::default()
    });
    state::load(&mut warm_svc, &dir)
        .expect("load snapshot")
        .expect("snapshot present");
    let restored = run(&mut warm_svc, 3);
    let restore_wall = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);

    // Acceptance: first warm request replays the pre-restart bits with
    // zero oracle evaluations — asserted before the artifact exists.
    assert_eq!(restored.served, "cached");
    assert_eq!(restored.evals, 0);
    assert_eq!(warm_svc.stats().oracle_evals, 0);
    assert_eq!(restored.estimate.to_bits(), reference.estimate.to_bits());
    assert_eq!(restored.lo.to_bits(), reference.lo.to_bits());
    assert_eq!(restored.hi.to_bits(), reference.hi.to_bits());

    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (label, r, wall) in [
        ("cold_prepare", &cold, cold_wall),
        ("state_restore", &restored, restore_wall),
    ] {
        rows.push(vec![
            "warm_restart".to_string(),
            label.to_string(),
            format!("{:.1}", r.estimate),
            format!("{}", r.evals),
            format!("{:.2}", wall * 1e3),
        ]);
        records.push(record(
            label,
            "warm_restart",
            r.estimate,
            r.evals as f64,
            wall,
        ));
    }
    (records, rows)
}

fn main() {
    let config = RunConfig::from_env();

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut table = TextTable::new(&["cell", "mode", "count/est", "reads|evals", "ms"]);
    for tier in [ScaledTier::X30, ScaledTier::X100] {
        let out = run_tier(tier, config.seed);
        for row in out.rows {
            table.row(row);
        }
        records.extend(out.records);
    }
    let (restart_records, restart_rows) = run_restart(config.seed);
    for row in restart_rows {
        table.row(row);
    }
    records.extend(restart_records);

    println!(
        "storage benchmark: {} rows/page, tiers x30/x100, sports selective prefilter\n",
        PAGE_ROWS
    );
    print!("{}", table.render());
    println!(
        "\nzone-skipped scan read <= 50% of pages on every tier and beat the cold \
         full scan; snapshot restore served the first request at zero oracle cost"
    );
    emit_records_json(&config.out_dir, "storage", "parallel", &records);
}
