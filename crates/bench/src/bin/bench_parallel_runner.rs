//! Wall-clock comparison of the parallel trial runner against the
//! sequential path, on the estimator suite's headline members.
//!
//! Asserts bit-identical per-seed estimates between the two modes, then
//! reports per-estimator sequential/parallel wall times and the speedup
//! (expect ≥ 2× with ≥ 8 trials on a multi-core host; ≈ 1× on a single
//! core, where the parallel path degenerates to inline execution).
//! Emits `BENCH_runner_parallel.json` for trajectory tracking.
//!
//! Usage: `cargo run --release -p lts-bench --bin bench_parallel_runner
//! -- [--trials N] [--scale F] [--seed N] [--out DIR]`

use lts_bench::{BenchRecord, RunConfig, TextTable};
use lts_core::estimators::{CountEstimator, Lss, Lws, Srs, Ssp};
use lts_core::{run_trials_with, ClassifierSpec, LearnPhaseConfig, TrialExecution};
use lts_data::{neighbors_scenario, SelectivityLevel};
use std::time::Instant;

fn main() {
    let cfg = RunConfig::from_env();
    if let Err(e) = run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(cfg: &RunConfig) -> lts_core::CoreResult<()> {
    let trials = cfg.trials.max(8);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== parallel trial runner: {trials} trials, {threads} hardware thread(s) ==");

    let n = (8_000.0 * cfg.scale / 0.2) as usize;
    let scenario = neighbors_scenario(n.max(1_000), SelectivityLevel::S, cfg.seed)?;
    let problem = &scenario.problem;
    let budget = (problem.n() / 50).max(60);
    let learn = LearnPhaseConfig {
        spec: ClassifierSpec::Knn { k: 5 },
        augment: None,
        model_seed: cfg.seed,
    };
    let estimators: Vec<(&str, Box<dyn CountEstimator>)> = vec![
        ("SRS", Box::new(Srs::default())),
        ("SSP", Box::new(Ssp::default())),
        (
            "LWS",
            Box::new(Lws {
                learn,
                ..Lws::default()
            }),
        ),
        (
            "LSS",
            Box::new(Lss {
                learn,
                ..Lss::default()
            }),
        ),
    ];

    let mut table = TextTable::new(&["estimator", "seq (s)", "par (s)", "speedup", "identical"]);
    let mut records = Vec::new();
    for (name, est) in &estimators {
        let t0 = Instant::now();
        let seq = run_trials_with(
            problem,
            est.as_ref(),
            budget,
            trials,
            cfg.seed,
            None,
            TrialExecution::Sequential,
        )?;
        let seq_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let par = run_trials_with(
            problem,
            est.as_ref(),
            budget,
            trials,
            cfg.seed,
            None,
            TrialExecution::Parallel,
        )?;
        let par_s = t1.elapsed().as_secs_f64();

        let identical = seq.estimates == par.estimates && seq.mean_evals == par.mean_evals;
        assert!(
            identical,
            "{name}: parallel estimates diverged from sequential — determinism bug"
        );
        let speedup = seq_s / par_s.max(1e-12);
        table.row(vec![
            (*name).to_string(),
            format!("{seq_s:.3}"),
            format!("{par_s:.3}"),
            format!("{speedup:.2}x"),
            "yes".into(),
        ]);
        records.push(BenchRecord {
            label: (*name).to_string(),
            cell: format!("{trials} trials @{budget}"),
            median: speedup,
            iqr: 0.0,
            mean_evals: par.mean_evals,
            wall_seconds: par_s,
        });
    }
    print!("{}", table.render());
    println!("   (median field of BENCH_runner_parallel.json = seq/par speedup)");
    if threads > 1 {
        println!("   expect: speedup ≥ 2x with {threads} threads and {trials} trials.");
    } else {
        println!("   single hardware thread: parallel path runs inline; speedup ≈ 1x.");
    }
    lts_bench::emit_records_json(&cfg.out_dir, "runner_parallel", "parallel", &records);
    Ok(())
}
