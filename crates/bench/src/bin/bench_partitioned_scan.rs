//! Wall-clock comparison of the partitioned parallel scan executor
//! against the single-pass vectorized scan, plus the determinism check
//! CI relies on.
//!
//! Builds a large two-column table, evaluates three predicates (a
//! numeric comparison, a compound mask, and an arithmetic-fed
//! comparison) serially and at several partition counts, and:
//!
//! * **asserts** the selected-row count is bit-identical at every
//!   partition count (the determinism contract of
//!   `lts_table::partition`);
//! * reports per-configuration wall times and the speedup of the best
//!   ≥ 4-partition run over the serial scan (expect ≥ 2× on a ≥
//!   4-thread host; ≈ 1× on a single hardware thread, where the
//!   executor degenerates to the inline serial scan);
//! * emits `BENCH_partitioned_scan.json` whose estimate fields
//!   (`median` = selected-row count, `mean_evals` = rows scanned) are
//!   thread-count-independent — CI runs this binary under
//!   `RAYON_NUM_THREADS=1` and default threads and diffs everything
//!   but the wall times.
//!
//! Usage: `cargo run --release -p lts-bench --bin bench_partitioned_scan
//! -- [--scale F] [--out DIR]` (rows ≈ 1M at `--scale 1.0`).

use lts_bench::{BenchRecord, RunConfig, TextTable};
use lts_table::partition::PartitionedTable;
use lts_table::table::table_of_floats;
use lts_table::vector::eval_bool_columnar;
use lts_table::{Expr, Table};
use std::sync::Arc;
use std::time::Instant;

fn build_table(rows: usize) -> Arc<Table> {
    let xs: Vec<f64> = (0..rows).map(|i| (i % 1013) as f64 / 1013.0).collect();
    let ys: Vec<f64> = (0..rows).map(|i| (i % 733) as f64 / 733.0).collect();
    Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).expect("valid columns"))
}

fn predicates() -> Vec<(&'static str, Expr)> {
    vec![
        ("numeric_cmp", Expr::col("x").gt(Expr::lit(0.5))),
        (
            "compound_and",
            Expr::col("x")
                .gt(Expr::lit(0.25))
                .and(Expr::col("y").le(Expr::lit(0.75))),
        ),
        (
            "arith_cmp",
            Expr::col("x")
                .mul(Expr::lit(2.0))
                .add(Expr::col("y"))
                .lt(Expr::lit(1.2)),
        ),
    ]
}

/// Best-of-3 wall time for `f`.
fn time_best<F: FnMut() -> usize>(mut f: F) -> (usize, f64) {
    let mut best = f64::INFINITY;
    let mut value = 0usize;
    for _ in 0..3 {
        let t0 = Instant::now();
        value = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (value, best)
}

fn main() {
    let cfg = RunConfig::from_env();
    let rows = ((1_000_000.0 * cfg.scale) as usize).max(50_000);
    let threads = rayon::current_num_threads();
    println!("== partitioned scan: {rows} rows, {threads} rayon thread(s) ==");

    let table = build_table(rows);
    let partition_counts = [1usize, 2, 4, 8];
    let mut records = Vec::new();
    let mut out = TextTable::new(&["predicate", "config", "count", "wall (s)", "speedup"]);
    let mut worst_speedup_at_4 = f64::INFINITY;

    for (name, expr) in predicates() {
        let (serial_count, serial_s) = time_best(|| {
            eval_bool_columnar(&expr, &table, None)
                .expect("predicate evaluates")
                .into_iter()
                .filter(|&l| l)
                .count()
        });
        out.row(vec![
            name.into(),
            "serial".into(),
            serial_count.to_string(),
            format!("{serial_s:.4}"),
            "1.00x".into(),
        ]);
        records.push(BenchRecord {
            label: name.into(),
            cell: "serial".into(),
            median: serial_count as f64,
            iqr: 0.0,
            mean_evals: rows as f64,
            wall_seconds: serial_s,
        });

        for parts in partition_counts {
            let pt = PartitionedTable::new(Arc::clone(&table), parts);
            let (count, par_s) = time_best(|| pt.par_count(&expr).expect("predicate evaluates"));
            assert_eq!(
                count, serial_count,
                "{name}: count diverged at {parts} partitions — determinism bug"
            );
            let speedup = serial_s / par_s.max(1e-12);
            if parts >= 4 {
                worst_speedup_at_4 = worst_speedup_at_4.min(speedup);
            }
            out.row(vec![
                name.into(),
                format!("p{parts}"),
                count.to_string(),
                format!("{par_s:.4}"),
                format!("{speedup:.2}x"),
            ]);
            records.push(BenchRecord {
                label: name.into(),
                cell: format!("p{parts}"),
                median: count as f64,
                iqr: 0.0,
                mean_evals: rows as f64,
                wall_seconds: par_s,
            });
        }
    }

    print!("{}", out.render());
    println!("   (median field of BENCH_partitioned_scan.json = selected-row count; identical across partition AND thread counts)");
    if threads >= 4 {
        println!(
            "   worst ≥4-partition speedup: {worst_speedup_at_4:.2}x (expect ≥ 2x with {threads} threads)"
        );
    } else {
        println!(
            "   {threads} rayon thread(s): parallel path runs (near-)inline; speedup ≈ 1x. \
             Set RAYON_NUM_THREADS≥4 on a multi-core host for the ≥2x demonstration."
        );
    }
    lts_bench::emit_records_json(&cfg.out_dir, "partitioned_scan", "parallel", &records);
}
