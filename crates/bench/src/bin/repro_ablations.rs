//! Regenerates the implementation-decision ablations (ARCHITECTURE.md "Implementation decisions").
fn main() {
    let cfg = lts_bench::RunConfig::from_env();
    if let Err(e) = lts_bench::experiments::ablations::run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
