//! Regenerates the paper's Figure 6 experiment.
fn main() {
    let cfg = lts_bench::RunConfig::from_env();
    if let Err(e) = lts_bench::experiments::fig6::run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
