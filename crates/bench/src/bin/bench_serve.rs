//! Closed-loop load generator for the `lts-serve` counting service.
//!
//! Measures the system **as a service** rather than a kernel: a Sports
//! population is registered, a small working set of skyband-style
//! queries is submitted repeatedly (the paper's amortization scenario —
//! the same complex count query asked again and again), and the run
//! records, per query:
//!
//! * the **cold** start (train + order + pilot + design + stage 2);
//! * **warm** repeats (`fresh` requests: new independent estimates
//!   resumed from the model store, stage-2 labels only);
//! * **cached** repeats (exact re-asks answered from the result
//!   cache, zero oracle evaluations).
//!
//! `BENCH_serve.json` rows (schema in `docs/benchmarks.md`):
//! `label` = serving mode, `cell` = query, `median` = the count
//! estimate (per-mode medians over repeats), `mean_evals` = mean fresh
//! oracle evaluations per request, `wall_seconds` = mean request
//! latency. Three summary rows carry the service-level metrics:
//! `cache_hit_rate`, `evals_saved_factor` (cold ÷ warm oracle
//! evaluations — the acceptance bar is ≥ 5), and `oracle_evals_saved`.
//!
//! The second half measures the same working set **over a real
//! socket**: an in-process [`NetServer`] is bound on a loopback port
//! and 16 closed-loop TCP clients drive it concurrently through the
//! line protocol (`net_cold` / `net_warm` / `net_cached` rows, one per
//! query), followed by summary rows carrying client-observed
//! `net_latency_p50` / `net_latency_p99` (seconds) and sustained
//! `net_rps` (requests/second) per phase in their `wall_seconds` field.
//!
//! Everything except the wall times is a pure function of the seed —
//! the net phases use explicit request ids, so the estimate columns are
//! identical no matter how the 16 clients interleave: CI runs this
//! binary under `RAYON_NUM_THREADS=1` and default threads and diffs the
//! artifacts with wall times (and therefore p50/p99/RPS) masked.
//!
//! Usage: `cargo run --release -p lts-bench --bin bench_serve --
//! [--scale F] [--trials N] [--seed S] [--out DIR]`
//! (rows ≈ 8 000 at `--scale 1.0`; `--trials` = warm/cached repeats
//! per query).

use lts_bench::{emit_records_json, BenchRecord, RunConfig, TextTable};
use lts_serve::{
    NetConfig, NetServer, ReplOptions, Request, Response, Service, ServiceConfig, Target,
};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Concurrent closed-loop TCP clients in the network phases.
const NET_CLIENTS: usize = 16;

struct ModeAgg {
    estimates: Vec<f64>,
    evals: u64,
    requests: u64,
    wall_seconds: f64,
}

impl ModeAgg {
    fn new() -> Self {
        Self {
            estimates: Vec::new(),
            evals: 0,
            requests: 0,
            wall_seconds: 0.0,
        }
    }

    fn push(&mut self, r: &Response, wall: f64) {
        self.push_parts(r.estimate, r.evals as u64, wall);
    }

    fn push_parts(&mut self, estimate: f64, evals: u64, wall: f64) {
        self.estimates.push(estimate);
        self.evals += evals;
        self.requests += 1;
        self.wall_seconds += wall;
    }

    fn record(&self, label: &str, cell: &str) -> BenchRecord {
        let mut sorted = self.estimates.clone();
        sorted.sort_by(f64::total_cmp);
        let median = if sorted.is_empty() {
            f64::NAN
        } else {
            sorted[sorted.len() / 2]
        };
        let iqr = if sorted.len() >= 4 {
            sorted[(3 * sorted.len()) / 4] - sorted[sorted.len() / 4]
        } else {
            0.0
        };
        let n = self.requests.max(1) as f64;
        BenchRecord {
            label: label.to_string(),
            cell: cell.to_string(),
            median,
            iqr,
            mean_evals: self.evals as f64 / n,
            wall_seconds: self.wall_seconds / n,
        }
    }
}

/// One TCP client of the closed-loop load generator.
struct NetClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl NetClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to lts-served");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        NetClient { stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("send request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "server closed mid-benchmark on `{line}`");
        resp.trim_end().to_string()
    }
}

/// Numeric JSON field (`"key": 12.5`) from a response line.
fn field_num(line: &str, key: &str) -> f64 {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker).unwrap_or_else(|| {
        panic!("response is missing `{key}`: {line}");
    }) + marker.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().expect("numeric field")
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let config = match RunConfig::parse(std::env::args()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let rows = ((8_000.0 * config.scale) as usize).max(1_000);
    let repeats = config.trials.max(2);

    let scenario = lts_data::sports_scenario(rows, lts_data::SelectivityLevel::M, config.seed)
        .expect("sports scenario");
    let k = match scenario.param {
        lts_data::QueryParam::K(k) => k,
        lts_data::QueryParam::D(_) => unreachable!("sports calibrates k"),
    };
    let mut service = Service::new(ServiceConfig {
        seed: config.seed,
        ..ServiceConfig::default()
    });
    service
        .register_dataset("sports", scenario.table, &["strikeouts", "wins"])
        .expect("register dataset");

    // The working set: the calibrated skyband query (a correlated
    // aggregate subquery — the paper's Example 2) plus two cheap-filter
    // variants, as a mixed interactive workload.
    let skyband = format!(
        "(SELECT COUNT(*) FROM sports WHERE strikeouts >= o.strikeouts AND \
         wins >= o.wins AND (strikeouts > o.strikeouts OR wins > o.wins)) < {k}"
    );
    let queries: Vec<(&str, String, Target)> = vec![
        ("skyband", skyband, Target::Budget((rows / 20).max(120))),
        (
            "strikeouts_band",
            "strikeouts >= 60 AND strikeouts < 180".to_string(),
            Target::Budget((rows / 25).max(100)),
        ),
        (
            "wins_or_tail",
            "wins > 14 OR strikeouts > 200".to_string(),
            Target::Budget((rows / 25).max(100)),
        ),
    ];

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut table = TextTable::new(&["query", "mode", "median est", "mean evals", "mean ms"]);
    let mut next_id = 0u64;
    let mut id = || {
        next_id += 1;
        next_id
    };
    let (mut total_cold_evals, mut total_warm_evals) = (0u64, 0.0f64);

    for (name, condition, target) in &queries {
        let mut cold = ModeAgg::new();
        let mut warm = ModeAgg::new();
        let mut cached = ModeAgg::new();
        let run = |service: &mut Service, rid: u64, fresh: bool| -> (Response, f64) {
            let t0 = Instant::now();
            let r = service.run(Request {
                id: rid,
                dataset: "sports".into(),
                condition: condition.clone(),
                target: *target,
                fresh,
            });
            let wall = t0.elapsed().as_secs_f64();
            assert!(r.ok, "{name}: {:?}", r.error);
            (r, wall)
        };
        // Cold start: first sighting of the query.
        let (r, wall) = run(&mut service, id(), false);
        assert_eq!(r.served, "cold", "{name} first request must be cold");
        cold.push(&r, wall);
        // Warm repeats: independent fresh estimates from the stored
        // model + design.
        for _ in 0..repeats {
            let (r, wall) = run(&mut service, id(), true);
            assert_eq!(r.served, "warm", "{name} fresh repeat must be warm");
            warm.push(&r, wall);
        }
        // Cached repeats: exact re-asks.
        for _ in 0..repeats {
            let (r, wall) = run(&mut service, id(), false);
            assert_eq!(r.served, "cached", "{name} re-ask must hit the cache");
            assert_eq!(r.evals, 0);
            cached.push(&r, wall);
        }
        total_cold_evals += cold.evals;
        // Mean warm evals per request, in f64: integer truncation here
        // would understate the denominator of the saved factor.
        total_warm_evals += warm.evals as f64 / warm.requests.max(1) as f64;
        for (mode, agg) in [("cold", &cold), ("warm", &warm), ("cached", &cached)] {
            let rec = agg.record(mode, name);
            table.row(vec![
                (*name).to_string(),
                mode.to_string(),
                format!("{:.0}", rec.median),
                format!("{:.1}", rec.mean_evals),
                format!("{:.2}", rec.wall_seconds * 1e3),
            ]);
            records.push(rec);
        }
    }

    // Service-level metrics. `evals_saved_factor` compares one cold
    // start against one warm resume, summed over the working set — the
    // ≥ 5× acceptance bar of the serving layer.
    let stats = service.stats();
    let hit_rate = stats.cached as f64 / (stats.cached + stats.cold + stats.warm).max(1) as f64;
    let saved_factor = total_cold_evals as f64 / total_warm_evals.max(1.0);
    assert!(
        saved_factor >= 5.0,
        "warm path must save >= 5x oracle evals, got {saved_factor:.2} \
         (cold {total_cold_evals}, warm-per-request {total_warm_evals})"
    );
    let summary = |label: &str, value: f64, evals: f64| BenchRecord {
        label: label.to_string(),
        cell: "service".to_string(),
        median: value,
        iqr: 0.0,
        mean_evals: evals,
        wall_seconds: 0.0,
    };
    records.push(summary("cache_hit_rate", hit_rate, f64::NAN));
    records.push(summary("evals_saved_factor", saved_factor, f64::NAN));
    records.push(summary(
        "oracle_evals_saved",
        stats.oracle_evals_saved as f64,
        stats.oracle_evals as f64,
    ));

    // ------------------------------------------------------------------
    // Network phases: the same working set over a real socket, driven
    // by NET_CLIENTS concurrent closed-loop TCP clients. Explicit
    // request ids make every estimate a pure function of the seed, so
    // only the latency columns vary run to run.
    // ------------------------------------------------------------------
    let net_server = NetServer::bind(
        "127.0.0.1:0",
        NetConfig {
            service: ServiceConfig {
                seed: config.seed,
                ..ServiceConfig::default()
            },
            repl: ReplOptions {
                deterministic: true,
            },
            ..NetConfig::default()
        },
    )
    .expect("bind loopback benchmark server");
    let addr = net_server.local_addr();

    // The protocol's `register` regenerates the identical scenario from
    // (rows, level, seed), so the in-process and network phases count
    // the same population.
    let workload: Arc<Vec<(String, usize)>> = Arc::new(
        queries
            .iter()
            .map(|(_, condition, target)| {
                let Target::Budget(b) = target else {
                    unreachable!("serve workload uses budget targets")
                };
                (condition.clone(), *b)
            })
            .collect(),
    );
    let mut setup = NetClient::connect(addr);
    let resp = setup.roundtrip(&format!(
        "register sports sports rows={rows} level=M seed={}",
        config.seed
    ));
    assert!(
        resp.contains("\"registered\""),
        "net register failed: {resp}"
    );

    let mut net_cold = Vec::new();
    for (q, (name, _, _)) in queries.iter().enumerate() {
        let (condition, budget) = &workload[q];
        let mut agg = ModeAgg::new();
        let t0 = Instant::now();
        let resp = setup.roundtrip(&format!(
            "count sports budget={budget} id={} :: {condition}",
            900_000 + q as u64
        ));
        let wall = t0.elapsed().as_secs_f64();
        assert!(
            resp.contains("\"served\": \"cold\""),
            "{name}: first network request must be cold: {resp}"
        );
        agg.push_parts(
            field_num(&resp, "estimate"),
            field_num(&resp, "evals") as u64,
            wall,
        );
        net_cold.push(agg);
    }

    // One closed-loop phase: every client runs `repeats` rounds over
    // the whole working set. Returns per-query aggregates, the sorted
    // client-observed latencies, and the sustained requests/second.
    let run_net_phase = |fresh: bool, id_base: u64, expect: &'static str| {
        let barrier = Arc::new(Barrier::new(NET_CLIENTS + 1));
        let handles: Vec<_> = (0..NET_CLIENTS)
            .map(|c| {
                let barrier = Arc::clone(&barrier);
                let workload = Arc::clone(&workload);
                std::thread::spawn(move || {
                    let mut client = NetClient::connect(addr);
                    barrier.wait();
                    let mut samples = Vec::new();
                    for rep in 0..repeats {
                        for (q, (condition, budget)) in workload.iter().enumerate() {
                            let id = id_base + q as u64 * 100_000 + c as u64 * 1_000 + rep as u64;
                            let fresh_tok = if fresh { "fresh " } else { "" };
                            let line = format!(
                                "count sports budget={budget} {fresh_tok}id={id} :: {condition}"
                            );
                            let t0 = Instant::now();
                            let resp = client.roundtrip(&line);
                            let wall = t0.elapsed().as_secs_f64();
                            assert!(
                                resp.contains("\"ok\": true"),
                                "network request failed: {resp}"
                            );
                            samples.push((q, resp, wall));
                        }
                    }
                    samples
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        let mut aggs: Vec<ModeAgg> = queries.iter().map(|_| ModeAgg::new()).collect();
        let mut latencies = Vec::new();
        for handle in handles {
            for (q, resp, wall) in handle.join().expect("net client thread") {
                assert!(
                    resp.contains(&format!("\"served\": \"{expect}\"")),
                    "expected a {expect} response: {resp}"
                );
                aggs[q].push_parts(
                    field_num(&resp, "estimate"),
                    field_num(&resp, "evals") as u64,
                    wall,
                );
                latencies.push(wall);
            }
        }
        let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
        latencies.sort_by(f64::total_cmp);
        let rps = latencies.len() as f64 / elapsed;
        (aggs, latencies, rps)
    };

    let (net_warm, warm_lat, warm_rps) = run_net_phase(true, 2_000_000, "warm");
    let (net_cached, cached_lat, cached_rps) = run_net_phase(false, 3_000_000, "cached");
    net_server.shutdown();
    net_server.join();

    for (q, (name, _, _)) in queries.iter().enumerate() {
        for (mode, agg) in [
            ("net_cold", &net_cold[q]),
            ("net_warm", &net_warm[q]),
            ("net_cached", &net_cached[q]),
        ] {
            let rec = agg.record(mode, name);
            table.row(vec![
                (*name).to_string(),
                mode.to_string(),
                format!("{:.0}", rec.median),
                format!("{:.1}", rec.mean_evals),
                format!("{:.2}", rec.wall_seconds * 1e3),
            ]);
            records.push(rec);
        }
    }
    // Latency/throughput summaries: wall-derived values live in
    // `wall_seconds` only, so artifact diffs with wall times masked
    // stay byte-identical across hosts and thread counts.
    let net_summary = |label: &str, phase: &str, value: f64| BenchRecord {
        label: label.to_string(),
        cell: phase.to_string(),
        median: 0.0,
        iqr: 0.0,
        mean_evals: f64::NAN,
        wall_seconds: value,
    };
    records.push(summary("net_clients", NET_CLIENTS as f64, f64::NAN));
    for (phase, lat, rps) in [
        ("warm", &warm_lat, warm_rps),
        ("cached", &cached_lat, cached_rps),
    ] {
        records.push(net_summary("net_latency_p50", phase, percentile(lat, 0.50)));
        records.push(net_summary("net_latency_p99", phase, percentile(lat, 0.99)));
        records.push(net_summary("net_rps", phase, rps));
    }

    println!("serve load generator: {rows} rows, {repeats} repeats per mode\n");
    print!("{}", table.render());
    println!(
        "\ncache hit rate {:.1}%  ·  warm saves {saved_factor:.1}x oracle evals  ·  \
         {} oracle evals avoided by the result cache",
        hit_rate * 100.0,
        stats.oracle_evals_saved
    );
    println!(
        "net ({NET_CLIENTS} clients): warm p50 {:.2} ms, p99 {:.2} ms, {:.0} req/s  ·  \
         cached p50 {:.2} ms, p99 {:.2} ms, {:.0} req/s",
        percentile(&warm_lat, 0.50) * 1e3,
        percentile(&warm_lat, 0.99) * 1e3,
        warm_rps,
        percentile(&cached_lat, 0.50) * 1e3,
        percentile(&cached_lat, 0.99) * 1e3,
        cached_rps,
    );
    emit_records_json(&config.out_dir, "serve", "sequential", &records);
}
