//! Closed-loop load generator for the `lts-serve` counting service.
//!
//! Measures the system **as a service** rather than a kernel: a Sports
//! population is registered, a small working set of skyband-style
//! queries is submitted repeatedly (the paper's amortization scenario —
//! the same complex count query asked again and again), and the run
//! records, per query:
//!
//! * the **cold** start (train + order + pilot + design + stage 2);
//! * **warm** repeats (`fresh` requests: new independent estimates
//!   resumed from the model store, stage-2 labels only);
//! * **cached** repeats (exact re-asks answered from the result
//!   cache, zero oracle evaluations).
//!
//! `BENCH_serve.json` rows (schema in `docs/benchmarks.md`):
//! `label` = serving mode, `cell` = query, `median` = the count
//! estimate (per-mode medians over repeats), `mean_evals` = mean fresh
//! oracle evaluations per request, `wall_seconds` = mean request
//! latency. Three summary rows carry the service-level metrics:
//! `cache_hit_rate`, `evals_saved_factor` (cold ÷ warm oracle
//! evaluations — the acceptance bar is ≥ 5), and `oracle_evals_saved`.
//!
//! Everything except the wall times is a pure function of the seed:
//! CI runs this binary under `RAYON_NUM_THREADS=1` and default threads
//! and diffs the artifacts with wall times masked.
//!
//! Usage: `cargo run --release -p lts-bench --bin bench_serve --
//! [--scale F] [--trials N] [--seed S] [--out DIR]`
//! (rows ≈ 8 000 at `--scale 1.0`; `--trials` = warm/cached repeats
//! per query).

use lts_bench::{emit_records_json, BenchRecord, RunConfig, TextTable};
use lts_serve::{Request, Response, Service, ServiceConfig, Target};
use std::time::Instant;

struct ModeAgg {
    estimates: Vec<f64>,
    evals: u64,
    requests: u64,
    wall_seconds: f64,
}

impl ModeAgg {
    fn new() -> Self {
        Self {
            estimates: Vec::new(),
            evals: 0,
            requests: 0,
            wall_seconds: 0.0,
        }
    }

    fn push(&mut self, r: &Response, wall: f64) {
        self.estimates.push(r.estimate);
        self.evals += r.evals as u64;
        self.requests += 1;
        self.wall_seconds += wall;
    }

    fn record(&self, label: &str, cell: &str) -> BenchRecord {
        let mut sorted = self.estimates.clone();
        sorted.sort_by(f64::total_cmp);
        let median = if sorted.is_empty() {
            f64::NAN
        } else {
            sorted[sorted.len() / 2]
        };
        let iqr = if sorted.len() >= 4 {
            sorted[(3 * sorted.len()) / 4] - sorted[sorted.len() / 4]
        } else {
            0.0
        };
        let n = self.requests.max(1) as f64;
        BenchRecord {
            label: label.to_string(),
            cell: cell.to_string(),
            median,
            iqr,
            mean_evals: self.evals as f64 / n,
            wall_seconds: self.wall_seconds / n,
        }
    }
}

fn main() {
    let config = match RunConfig::parse(std::env::args()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let rows = ((8_000.0 * config.scale) as usize).max(1_000);
    let repeats = config.trials.max(2);

    let scenario = lts_data::sports_scenario(rows, lts_data::SelectivityLevel::M, config.seed)
        .expect("sports scenario");
    let k = match scenario.param {
        lts_data::QueryParam::K(k) => k,
        lts_data::QueryParam::D(_) => unreachable!("sports calibrates k"),
    };
    let mut service = Service::new(ServiceConfig {
        seed: config.seed,
        ..ServiceConfig::default()
    });
    service
        .register_dataset("sports", scenario.table, &["strikeouts", "wins"])
        .expect("register dataset");

    // The working set: the calibrated skyband query (a correlated
    // aggregate subquery — the paper's Example 2) plus two cheap-filter
    // variants, as a mixed interactive workload.
    let skyband = format!(
        "(SELECT COUNT(*) FROM sports WHERE strikeouts >= o.strikeouts AND \
         wins >= o.wins AND (strikeouts > o.strikeouts OR wins > o.wins)) < {k}"
    );
    let queries: Vec<(&str, String, Target)> = vec![
        ("skyband", skyband, Target::Budget((rows / 20).max(120))),
        (
            "strikeouts_band",
            "strikeouts >= 60 AND strikeouts < 180".to_string(),
            Target::Budget((rows / 25).max(100)),
        ),
        (
            "wins_or_tail",
            "wins > 14 OR strikeouts > 200".to_string(),
            Target::Budget((rows / 25).max(100)),
        ),
    ];

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut table = TextTable::new(&["query", "mode", "median est", "mean evals", "mean ms"]);
    let mut next_id = 0u64;
    let mut id = || {
        next_id += 1;
        next_id
    };
    let (mut total_cold_evals, mut total_warm_evals) = (0u64, 0.0f64);

    for (name, condition, target) in &queries {
        let mut cold = ModeAgg::new();
        let mut warm = ModeAgg::new();
        let mut cached = ModeAgg::new();
        let run = |service: &mut Service, rid: u64, fresh: bool| -> (Response, f64) {
            let t0 = Instant::now();
            let r = service.run(Request {
                id: rid,
                dataset: "sports".into(),
                condition: condition.clone(),
                target: *target,
                fresh,
            });
            let wall = t0.elapsed().as_secs_f64();
            assert!(r.ok, "{name}: {:?}", r.error);
            (r, wall)
        };
        // Cold start: first sighting of the query.
        let (r, wall) = run(&mut service, id(), false);
        assert_eq!(r.served, "cold", "{name} first request must be cold");
        cold.push(&r, wall);
        // Warm repeats: independent fresh estimates from the stored
        // model + design.
        for _ in 0..repeats {
            let (r, wall) = run(&mut service, id(), true);
            assert_eq!(r.served, "warm", "{name} fresh repeat must be warm");
            warm.push(&r, wall);
        }
        // Cached repeats: exact re-asks.
        for _ in 0..repeats {
            let (r, wall) = run(&mut service, id(), false);
            assert_eq!(r.served, "cached", "{name} re-ask must hit the cache");
            assert_eq!(r.evals, 0);
            cached.push(&r, wall);
        }
        total_cold_evals += cold.evals;
        // Mean warm evals per request, in f64: integer truncation here
        // would understate the denominator of the saved factor.
        total_warm_evals += warm.evals as f64 / warm.requests.max(1) as f64;
        for (mode, agg) in [("cold", &cold), ("warm", &warm), ("cached", &cached)] {
            let rec = agg.record(mode, name);
            table.row(vec![
                (*name).to_string(),
                mode.to_string(),
                format!("{:.0}", rec.median),
                format!("{:.1}", rec.mean_evals),
                format!("{:.2}", rec.wall_seconds * 1e3),
            ]);
            records.push(rec);
        }
    }

    // Service-level metrics. `evals_saved_factor` compares one cold
    // start against one warm resume, summed over the working set — the
    // ≥ 5× acceptance bar of the serving layer.
    let stats = service.stats();
    let hit_rate = stats.cached as f64 / (stats.cached + stats.cold + stats.warm).max(1) as f64;
    let saved_factor = total_cold_evals as f64 / total_warm_evals.max(1.0);
    assert!(
        saved_factor >= 5.0,
        "warm path must save >= 5x oracle evals, got {saved_factor:.2} \
         (cold {total_cold_evals}, warm-per-request {total_warm_evals})"
    );
    let summary = |label: &str, value: f64, evals: f64| BenchRecord {
        label: label.to_string(),
        cell: "service".to_string(),
        median: value,
        iqr: 0.0,
        mean_evals: evals,
        wall_seconds: 0.0,
    };
    records.push(summary("cache_hit_rate", hit_rate, f64::NAN));
    records.push(summary("evals_saved_factor", saved_factor, f64::NAN));
    records.push(summary(
        "oracle_evals_saved",
        stats.oracle_evals_saved as f64,
        stats.oracle_evals as f64,
    ));

    println!("serve load generator: {rows} rows, {repeats} repeats per mode\n");
    print!("{}", table.render());
    println!(
        "\ncache hit rate {:.1}%  ·  warm saves {saved_factor:.1}x oracle evals  ·  \
         {} oracle evals avoided by the result cache",
        hit_rate * 100.0,
        stats.oracle_evals_saved
    );
    emit_records_json(&config.out_dir, "serve", "sequential", &records);
}
