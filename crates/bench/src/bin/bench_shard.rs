//! Cold-start speedup curve of the sharded estimation layer.
//!
//! LSS's cold start is dominated at scale by the stratification-design
//! dynamic program, whose cost grows superlinearly in the pilot count.
//! Sharding a population `k` ways runs `k` independent designs on
//! pilots of size `m/k`, cutting that cost by ≈ `k` even on one core —
//! *before* any thread-level parallelism. This bench measures cold
//! `prepare + estimate` wall time for LSS and LWS at shard counts
//! {1, 2, 4, 8} on a scaled Sports tier and records the speedup curve.
//!
//! `BENCH_shard.json` rows (schema in `docs/benchmarks.md`):
//!
//! * `label` = `lss@k` / `lws@k`, `cell` = `cold`: `median` = merged
//!   count estimate (deterministic; diffed across thread counts in CI),
//!   `iqr` = CI half-width, `mean_evals` = oracle evaluations spent,
//!   `wall_seconds` = best-of-repeats cold wall time;
//! * `label` = `digest`, `cell` = `lss@k` / `lws@k`: `median` = the
//!   prepared state's content digest folded into the f64-exact 53-bit
//!   range (deterministic, diffable);
//! * `label` = `speedup`, `cell` = `lss@k` / `lws@k`: the k-shard
//!   speedup factor over `@1`, carried in `wall_seconds` (wall-derived,
//!   so the CI determinism diff masks it with the other wall fields).
//!
//! The ≥ 3× acceptance bar applies to LSS at 8 shards on the scaled
//! tier (`--scale ≥ 0.3`); smaller smoke runs skip the assertion.
//!
//! Usage: `cargo run --release -p lts-bench --bin bench_shard --
//! [--scale F] [--trials N] [--seed S] [--out DIR]`
//! (tier: `--scale < 0.3` → x10, `< 1.0` → x30, else x100).

use lts_bench::{emit_records_json, BenchRecord, RunConfig, TextTable};
use lts_core::{CountingProblem, Lss, Lws, ShardPlan};
use lts_data::{scaled_scenario, DatasetKind, ScaledTier, SelectivityLevel};
use std::time::Instant;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Fold a u64 digest into the f64-exact 53-bit range.
fn digest_f64(d: u64) -> f64 {
    (d & ((1u64 << 53) - 1)) as f64
}

struct ColdRun {
    estimate: f64,
    halfwidth: f64,
    evals: usize,
    digest: u64,
    wall: f64,
}

fn main() {
    let config = match RunConfig::parse(std::env::args()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let tier = if config.scale < 0.3 {
        ScaledTier::X10
    } else if config.scale < 1.0 {
        ScaledTier::X30
    } else {
        ScaledTier::X100
    };
    let scenario = scaled_scenario(DatasetKind::Sports, tier, SelectivityLevel::M, config.seed)
        .expect("scaled sports scenario");
    let rows = scenario.table.len();
    let truth = scenario.truth as f64;
    // Budget shaped so the design pilot is large at one shard (the
    // regime the serving layer actually cold-starts in at scale).
    let budget = rows / 12;
    let repeats = config.trials.clamp(1, 3);
    let problem = &scenario.problem;

    println!(
        "shard speedup bench: {} tier ({rows} rows, truth {truth}), budget {budget}, \
         best of {repeats} repeat(s) per point\n",
        tier.label()
    );

    let lss = Lss::default();
    let lws = Lws::default();
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut table = TextTable::new(&[
        "estimator",
        "shards",
        "estimate",
        "evals",
        "wall s",
        "speedup",
    ]);
    let mut lss_speedup_at_max = 0.0f64;

    for (family, run_cold) in [
        (
            "lss",
            Box::new(|problem: &CountingProblem, plan: &ShardPlan, seed: u64| {
                let t0 = Instant::now();
                let warm = lss.prepare_sharded(problem, plan, budget, seed).unwrap();
                let report = lss.estimate_prepared_sharded(problem, &warm, seed).unwrap();
                ColdRun {
                    estimate: report.estimate.count,
                    halfwidth: report.estimate.interval.width() / 2.0,
                    evals: warm.prepare_evals + report.evals,
                    digest: warm.digest(),
                    wall: t0.elapsed().as_secs_f64(),
                }
            }) as Box<dyn Fn(&CountingProblem, &ShardPlan, u64) -> ColdRun>,
        ),
        (
            "lws",
            Box::new(|problem: &CountingProblem, plan: &ShardPlan, seed: u64| {
                let t0 = Instant::now();
                let warm = lws.prepare_sharded(problem, plan, budget, seed).unwrap();
                let report = lws.estimate_prepared_sharded(problem, &warm, seed).unwrap();
                ColdRun {
                    estimate: report.estimate.count,
                    halfwidth: report.estimate.interval.width() / 2.0,
                    evals: warm.prepare_evals + report.evals,
                    digest: warm.digest(),
                    wall: t0.elapsed().as_secs_f64(),
                }
            }),
        ),
    ] {
        let mut base_wall = f64::NAN;
        for k in SHARD_COUNTS {
            let plan = ShardPlan::uniform(rows, k).expect("plan");
            let mut best: Option<ColdRun> = None;
            for _ in 0..repeats {
                let run = run_cold(problem, &plan, config.seed);
                if let Some(b) = &best {
                    // Estimates are deterministic; repeats only tighten
                    // the wall-time measurement.
                    assert_eq!(b.estimate.to_bits(), run.estimate.to_bits());
                    assert_eq!(b.digest, run.digest);
                }
                best = Some(match best {
                    Some(b) if b.wall <= run.wall => b,
                    _ => run,
                });
            }
            let best = best.expect("at least one repeat");
            if k == 1 {
                base_wall = best.wall;
            }
            let speedup = base_wall / best.wall;
            if family == "lss" && k == *SHARD_COUNTS.last().expect("non-empty") {
                lss_speedup_at_max = speedup;
            }
            let label = format!("{family}@{k}");
            assert!(
                (best.estimate - truth).abs() <= 0.3 * rows as f64,
                "{label}: estimate {} too far from truth {truth}",
                best.estimate
            );
            table.row(vec![
                family.to_string(),
                k.to_string(),
                format!("{:.0}", best.estimate),
                best.evals.to_string(),
                format!("{:.3}", best.wall),
                format!("{speedup:.2}x"),
            ]);
            records.push(BenchRecord {
                label: label.clone(),
                cell: "cold".to_string(),
                median: best.estimate,
                iqr: best.halfwidth,
                mean_evals: best.evals as f64,
                wall_seconds: best.wall,
            });
            records.push(BenchRecord {
                label: "digest".to_string(),
                cell: label.clone(),
                median: digest_f64(best.digest),
                iqr: 0.0,
                mean_evals: f64::NAN,
                wall_seconds: 0.0,
            });
            records.push(BenchRecord {
                label: "speedup".to_string(),
                cell: label,
                median: 0.0,
                iqr: 0.0,
                mean_evals: f64::NAN,
                wall_seconds: speedup,
            });
        }
    }

    print!("{}", table.render());
    if config.scale >= 0.3 {
        assert!(
            lss_speedup_at_max >= 3.0,
            "cold LSS at {} shards must be >= 3x faster than unsharded on the scaled tier, \
             got {lss_speedup_at_max:.2}x",
            SHARD_COUNTS.last().expect("non-empty")
        );
        println!("\ncold LSS speedup at 8 shards: {lss_speedup_at_max:.2}x (bar: >= 3x)");
    } else {
        println!(
            "\ncold LSS speedup at 8 shards: {lss_speedup_at_max:.2}x \
             (smoke scale; >= 3x bar enforced at --scale >= 0.3)"
        );
    }
    emit_records_json(&config.out_dir, "shard", "sequential", &records);
}
