//! Observability overhead on the warm serving path.
//!
//! The telemetry layer promises to be effectively free where it
//! matters: the **warm path** (fresh estimates resumed from the model
//! store — the steady state of an amortizing service). This bench
//! runs the identical warm workload through two services that differ
//! only in observability — one fully disabled, one with the default
//! registry + trace ring + slow log — and
//!
//! * asserts the two response streams are **bit-identical** (telemetry
//!   must never perturb an estimate), and
//! * asserts the enabled service's warm-path wall time is within
//!   **3%** of the disabled baseline (exit 1 otherwise).
//!
//! Measurement is pair-interleaved at request granularity: each fresh
//! id runs through both services back to back, with the order
//! alternating every id so neither side systematically inherits a
//! warmer cache. Consecutive ids form order-balanced blocks (one
//! disabled-first, one enabled-first), each block yields one overhead
//! ratio, and each sweep reports the **median over blocks** — clock
//! drift and transient host load perturb both sides of a block equally
//! and drop out of the median. The asserted figure is the **minimum
//! over repeated sweeps**: contention noise only inflates a sweep's
//! median, so the cleanest sweep is the tightest available bound on
//! the intrinsic overhead.
//!
//! `BENCH_obs.json` rows: `obs_disabled` / `obs_enabled` carry the
//! median warm wall time per request in `wall_seconds`;
//! the `overhead_pct` summary row carries the measured overhead in
//! `median` (a deterministic-fields diff masks `wall_seconds`, and
//! `overhead_pct` is wall-derived, so its median is masked too — see
//! the `wall` in its cell label).
//!
//! Usage: `cargo run --release -p lts-bench --bin bench_obs --
//! [--scale F] [--trials N] [--seed S] [--out DIR]`

use lts_bench::{emit_records_json, BenchRecord, RunConfig};
use lts_serve::{Observability, Request, Response, Service, ServiceConfig, Target};
use std::time::Instant;

const SWEEPS: usize = 3;

fn build_service(
    seed: u64,
    obs: Observability,
    table: &std::sync::Arc<lts_table::Table>,
) -> Service {
    let mut s = Service::with_observability(
        ServiceConfig {
            seed,
            ..ServiceConfig::default()
        },
        obs,
    );
    s.register_dataset(
        "sports",
        std::sync::Arc::clone(table),
        &["strikeouts", "wins"],
    )
    .expect("register dataset");
    s
}

fn bits(r: &Response) -> (u64, u64, u64, u64, usize) {
    (
        r.estimate.to_bits(),
        r.std_error.to_bits(),
        r.lo.to_bits(),
        r.hi.to_bits(),
        r.evals,
    )
}

fn main() {
    let config = match RunConfig::parse(std::env::args()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let rows = ((8_000.0 * config.scale) as usize).max(1_000);
    let threshold_pct = 3.0;

    let scenario = lts_data::sports_scenario(rows, lts_data::SelectivityLevel::M, config.seed)
        .expect("sports scenario");
    let table = scenario.table;
    let condition = "strikeouts >= 60 AND strikeouts < 180";
    let budget = (rows / 25).max(100);
    let req = |id: u64, fresh: bool| Request {
        id,
        dataset: "sports".into(),
        condition: condition.to_string(),
        target: Target::Budget(budget),
        fresh,
    };

    let mut disabled = build_service(config.seed, Observability::disabled(), &table);
    let mut enabled = build_service(config.seed, Observability::default(), &table);

    // Cold-start both stores once, outside the measured region, and
    // warm up the allocator/thread pool with one unmeasured round.
    for s in [&mut disabled, &mut enabled] {
        let r = s.run(req(0, false));
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.served, "cold");
        for id in 1..=10u64 {
            assert_eq!(s.run(req(id, true)).served, "warm");
        }
    }

    // Pair-interleaved measurement: every fresh id runs through both
    // services back to back (order alternating by id). Identical ids →
    // identical seed streams → the response pairs must agree
    // bit-for-bit. Pairs of consecutive ids form order-balanced
    // blocks; each block contributes one overhead ratio.
    let per_sweep = {
        // An even request count so every block holds both orders. At
        // ~100 µs per warm request a sweep is well under a second, so
        // sample generously: the median's spread shrinks with the
        // block count.
        let n = (config.trials * 112).max(560);
        n + (n % 2)
    };

    let median = |v: &mut Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        }
    };

    let mut overhead_pct = f64::INFINITY;
    let mut per_req_dis = f64::INFINITY;
    let mut per_req_en = f64::INFINITY;
    for sweep in 0..SWEEPS {
        let mut wall_dis = Vec::with_capacity(per_sweep);
        let mut wall_en = Vec::with_capacity(per_sweep);
        for i in 0..per_sweep {
            let id = 1_000 + (sweep * per_sweep + i) as u64;
            let (dis, en) = if i % 2 == 0 {
                let t0 = Instant::now();
                let a = disabled.run(req(id, true));
                let td = t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                let b = enabled.run(req(id, true));
                let te = t0.elapsed().as_secs_f64();
                wall_dis.push(td);
                wall_en.push(te);
                (a, b)
            } else {
                let t0 = Instant::now();
                let b = enabled.run(req(id, true));
                let te = t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                let a = disabled.run(req(id, true));
                let td = t0.elapsed().as_secs_f64();
                wall_dis.push(td);
                wall_en.push(te);
                (a, b)
            };
            assert_eq!(dis.served, "warm");
            assert_eq!(
                bits(&dis),
                bits(&en),
                "observability perturbed a warm estimate (id {id})"
            );
        }
        // One ratio per order-balanced block of two ids.
        let mut ratios: Vec<f64> = (0..per_sweep / 2)
            .map(|b| {
                let d = wall_dis[2 * b] + wall_dis[2 * b + 1];
                let e = wall_en[2 * b] + wall_en[2 * b + 1];
                (e - d) / d * 100.0
            })
            .collect();
        let sweep_overhead = median(&mut ratios);
        println!("   sweep {sweep}: {sweep_overhead:+.2}%");
        if sweep_overhead < overhead_pct {
            overhead_pct = sweep_overhead;
            per_req_dis = median(&mut wall_dis);
            per_req_en = median(&mut wall_en);
        }
    }

    println!("bench_obs: warm path, {SWEEPS} sweeps x {per_sweep} request pairs, rows={rows}");
    println!(
        "   disabled: {:.3} µs/request (median, best sweep)",
        per_req_dis * 1e6
    );
    println!(
        "   enabled:  {:.3} µs/request (median, best sweep)",
        per_req_en * 1e6
    );
    println!("   overhead: {overhead_pct:.2}% (min over sweeps of median over order-balanced blocks, bar: ≤ {threshold_pct}%)");

    let records = vec![
        BenchRecord {
            label: "obs_disabled".into(),
            cell: "warm".into(),
            median: 0.0,
            iqr: 0.0,
            mean_evals: f64::NAN,
            wall_seconds: per_req_dis,
        },
        BenchRecord {
            label: "obs_enabled".into(),
            cell: "warm".into(),
            median: 0.0,
            iqr: 0.0,
            mean_evals: f64::NAN,
            wall_seconds: per_req_en,
        },
        // `median` here is wall-derived: the cell label marks it so
        // deterministic-fields diffs can mask the whole row.
        BenchRecord {
            label: "overhead_pct".into(),
            cell: "wall_summary".into(),
            median: overhead_pct,
            iqr: 0.0,
            mean_evals: f64::NAN,
            wall_seconds: per_req_en - per_req_dis,
        },
    ];
    emit_records_json(&config.out_dir, "obs", "sequential", &records);

    if !overhead_pct.is_finite() || overhead_pct > threshold_pct {
        eprintln!(
            "bench_obs: FAIL — observability overhead {overhead_pct:.2}% exceeds {threshold_pct}%"
        );
        std::process::exit(1);
    }
    println!("bench_obs: PASS");
}
