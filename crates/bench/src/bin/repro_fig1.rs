//! Regenerates the paper's Figure 1 experiment.
fn main() {
    let cfg = lts_bench::RunConfig::from_env();
    if let Err(e) = lts_bench::experiments::fig1::run(&cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
