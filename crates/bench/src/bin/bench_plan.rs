//! Head-to-head benchmark of the query planner: monolithic estimation
//! versus the decomposed prefilter + residual plan, at the **same
//! requested CI width**.
//!
//! Two identically seeded services answer the same conjunctive skyband
//! queries over the same Sports population. One service plans normally
//! (decomposed queries run the cheap conjunct as an exact vectorized
//! scan — zero oracle cost — and spend the oracle only on the
//! surviving residual population); the other has decomposition
//! disabled (`monolithic_selectivity = 0.0`), so every query is
//! estimated over the full population. The cheap-conjunct thresholds
//! are percentiles of the generated `strikeouts` column, so the
//! prefilter selectivities are stable across `--scale`.
//!
//! `BENCH_plan.json` rows (schema in `docs/benchmarks.md`): per-query
//! `monolithic_cold` / `planned_cold` / `monolithic_warm` /
//! `planned_warm` rows at the shared width target, a `census` /
//! `exact_prefilter` pair at a near-zero width (both answer exactly;
//! the planned side touches only the survivors), and summary rows
//! `plan_evals_saved_factor` (cold monolithic ÷ cold planned oracle
//! evaluations — the acceptance bar is ≥ 3), `census_evals_saved_factor`
//! and `prefilter_selectivity`. Wall times are the only
//! non-deterministic fields: CI runs this binary under
//! `RAYON_NUM_THREADS=1` and default threads and diffs the artifacts
//! with `wall_seconds` masked.
//!
//! Usage: `cargo run --release -p lts-bench --bin bench_plan --
//! [--scale F] [--trials N] [--seed S] [--out DIR]`
//! (rows ≈ 4 000 at `--scale 1.0`; `--trials` = warm repeats per
//! service).

use lts_bench::{emit_records_json, BenchRecord, RunConfig, TextTable};
use lts_serve::{Request, Response, Service, ServiceConfig, Target};
use std::time::Instant;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct RunOut {
    response: Response,
    wall: f64,
}

fn run_one(service: &mut Service, id: u64, condition: &str, target: Target, fresh: bool) -> RunOut {
    let t0 = Instant::now();
    let response = service.run(Request {
        id,
        dataset: "sports".into(),
        condition: condition.to_string(),
        target,
        fresh,
    });
    let wall = t0.elapsed().as_secs_f64();
    assert!(response.ok, "request failed: {:?}", response.error);
    RunOut { response, wall }
}

fn record(label: &str, cell: &str, estimate: f64, evals: f64, wall: f64) -> BenchRecord {
    BenchRecord {
        label: label.to_string(),
        cell: cell.to_string(),
        median: estimate,
        iqr: 0.0,
        mean_evals: evals,
        wall_seconds: wall,
    }
}

fn main() {
    let config = match RunConfig::parse(std::env::args()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let rows = ((4_000.0 * config.scale) as usize).max(1_500);
    let repeats = config.trials.max(2);

    let scenario = lts_data::sports_scenario(rows, lts_data::SelectivityLevel::M, config.seed)
        .expect("sports scenario");
    let k = match scenario.param {
        lts_data::QueryParam::K(k) => k,
        lts_data::QueryParam::D(_) => unreachable!("sports calibrates k"),
    };
    // Data-derived cheap-conjunct thresholds: percentiles of the
    // generated strikeouts column, so the prefilter keeps a stable
    // fraction of the population at every --scale.
    let mut so: Vec<f64> = scenario.table.floats("strikeouts").unwrap().to_vec();
    so.sort_by(f64::total_cmp);
    let t_mid = percentile(&so, 0.70); // prefilter keeps ~30 %
    let t_tight = percentile(&so, 0.975); // prefilter keeps ~2.5 %

    let skyband = format!(
        "(SELECT COUNT(*) FROM sports WHERE strikeouts >= o.strikeouts AND \
         wins >= o.wins AND (strikeouts > o.strikeouts OR wins > o.wins)) < {k}"
    );
    let q_mid = format!("strikeouts > {t_mid:.3} AND {skyband}");
    let q_tight = format!("strikeouts > {t_tight:.3} AND {skyband}");
    let width = Target::RelWidth(0.05);

    // Two identically seeded services; `monolithic_selectivity = 0.0`
    // disables decomposition on the baseline side.
    let mut planned_svc = Service::new(ServiceConfig {
        seed: config.seed,
        ..ServiceConfig::default()
    });
    let mut mono_svc = Service::new(ServiceConfig {
        seed: config.seed,
        planner: lts_serve::BudgetPlanner {
            monolithic_selectivity: 0.0,
            ..lts_serve::BudgetPlanner::default()
        },
        ..ServiceConfig::default()
    });
    for svc in [&mut planned_svc, &mut mono_svc] {
        svc.register_dataset(
            "sports",
            std::sync::Arc::clone(&scenario.table),
            &["strikeouts", "wins"],
        )
        .expect("register dataset");
    }

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut table = TextTable::new(&["query", "mode", "estimate", "evals", "plan", "ms"]);
    fn push(
        records: &mut Vec<BenchRecord>,
        table: &mut TextTable,
        label: &str,
        cell: &str,
        out: &RunOut,
    ) {
        let kind = out
            .response
            .plan
            .as_ref()
            .map_or("-", |p| p.kind)
            .to_string();
        table.row(vec![
            cell.to_string(),
            label.to_string(),
            format!("{:.1}", out.response.estimate),
            format!("{}", out.response.evals),
            kind,
            format!("{:.2}", out.wall * 1e3),
        ]);
        records.push(record(
            label,
            cell,
            out.response.estimate,
            out.response.evals as f64,
            out.wall,
        ));
    }

    // ------------------------------------------------------------------
    // Estimate head-to-head at the shared width target.
    // ------------------------------------------------------------------
    let mono_cold = run_one(&mut mono_svc, 1, &q_mid, width, false);
    assert_eq!(mono_cold.response.served, "cold");
    assert!(
        mono_cold.response.plan.is_none(),
        "baseline must not decompose"
    );
    let planned_cold = run_one(&mut planned_svc, 1, &q_mid, width, false);
    assert_eq!(planned_cold.response.served, "cold");
    let plan = planned_cold
        .response
        .plan
        .as_ref()
        .expect("planned side must decompose");
    assert_eq!(plan.kind, "prefilter_estimate", "expected a two-stage plan");
    let selectivity = plan.selectivity.expect("prefilter ran");
    push(
        &mut records,
        &mut table,
        "monolithic_cold",
        "skyband_mid",
        &mono_cold,
    );
    push(
        &mut records,
        &mut table,
        "planned_cold",
        "skyband_mid",
        &planned_cold,
    );

    let mut warm_aggs = [(0usize, 0.0f64, 0.0f64), (0usize, 0.0f64, 0.0f64)];
    for rep in 0..repeats {
        for (slot, svc) in [(0usize, &mut mono_svc), (1, &mut planned_svc)] {
            let out = run_one(svc, 100 + rep as u64, &q_mid, width, true);
            assert_eq!(out.response.served, "warm");
            warm_aggs[slot].0 += out.response.evals;
            warm_aggs[slot].1 += out.response.estimate;
            warm_aggs[slot].2 += out.wall;
        }
    }
    let n = repeats as f64;
    for (slot, label) in [(0usize, "monolithic_warm"), (1, "planned_warm")] {
        let (evals, est_sum, wall) = warm_aggs[slot];
        table.row(vec![
            "skyband_mid".to_string(),
            label.to_string(),
            format!("{:.1}", est_sum / n),
            format!("{:.1}", evals as f64 / n),
            "-".to_string(),
            format!("{:.2}", wall / n * 1e3),
        ]);
        records.push(record(
            label,
            "skyband_mid",
            est_sum / n,
            evals as f64 / n,
            wall / n,
        ));
    }

    // ------------------------------------------------------------------
    // Exact head-to-head at a near-zero width: both sides answer
    // exactly; the planned side pays only for the survivors.
    // ------------------------------------------------------------------
    let tiny = Target::RelWidth(0.000_01);
    let census = run_one(&mut mono_svc, 2, &q_tight, tiny, false);
    assert_eq!(census.response.served, "exact");
    let prefilter_exact = run_one(&mut planned_svc, 2, &q_tight, tiny, false);
    assert_eq!(prefilter_exact.response.served, "exact");
    let tight_plan = prefilter_exact
        .response
        .plan
        .as_ref()
        .expect("tight query must decompose");
    assert_eq!(tight_plan.kind, "exact_prefilter");
    assert_eq!(
        census.response.estimate, prefilter_exact.response.estimate,
        "both exact routes must agree on the count"
    );
    push(&mut records, &mut table, "census", "skyband_tight", &census);
    push(
        &mut records,
        &mut table,
        "exact_prefilter",
        "skyband_tight",
        &prefilter_exact,
    );

    // ------------------------------------------------------------------
    // Acceptance: at the same requested CI width, the planned path must
    // spend at least 3x fewer oracle evaluations than the monolithic
    // one — asserted BEFORE the artifact is written.
    // ------------------------------------------------------------------
    let saved_factor =
        mono_cold.response.evals as f64 / (planned_cold.response.evals.max(1)) as f64;
    assert!(
        saved_factor >= 3.0,
        "planned path must save >= 3x oracle evals at equal width, got {saved_factor:.2} \
         (monolithic {}, planned {})",
        mono_cold.response.evals,
        planned_cold.response.evals
    );
    let census_factor =
        census.response.evals as f64 / (prefilter_exact.response.evals.max(1)) as f64;
    let summary = |label: &str, value: f64| BenchRecord {
        label: label.to_string(),
        cell: "service".to_string(),
        median: value,
        iqr: 0.0,
        mean_evals: f64::NAN,
        wall_seconds: 0.0,
    };
    records.push(summary("plan_evals_saved_factor", saved_factor));
    records.push(summary("census_evals_saved_factor", census_factor));
    records.push(summary("prefilter_selectivity", selectivity));

    println!("query planner benchmark: {rows} rows, {repeats} warm repeats per service\n");
    print!("{}", table.render());
    println!(
        "\nplanned cold saves {saved_factor:.1}x oracle evals at equal width  ·  \
         exact plan saves {census_factor:.1}x  ·  prefilter keeps {:.1}% of rows",
        selectivity * 100.0
    );
    emit_records_json(&config.out_dir, "plan", "sequential", &records);
}
