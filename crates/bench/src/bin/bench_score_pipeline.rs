//! Wall-clock comparison of the shared batched scoring pipeline
//! (`lts_core::scoring::ScoredPopulation`) against the per-row score
//! loop the learned estimators used to run, plus the determinism check
//! CI relies on.
//!
//! Builds a large 2-feature population, trains the paper's two heavy
//! proxies (random forest, MLP) on a small labeled sample, then scores
//! the whole population both ways and:
//!
//! * **asserts** batch scores are bit-identical to the per-row loop and
//!   the `(score, id)` ordering is identical at every partition count
//!   (the scoring pipeline's determinism contract);
//! * reports per-configuration wall times and the speedup of the best
//!   batched run over the per-row loop — the refactor's acceptance bar
//!   is ≥ 4× at full scale (`--full` ⇒ 1M rows; vectorized kernels
//!   alone carry most of it on a single hardware thread, partition
//!   parallelism multiplies it on multi-core hosts);
//! * emits `BENCH_score_pipeline.json` whose estimate fields (`median`
//!   = score sum for scoring configs / FNV-1a ordering digest for the
//!   ordering config, `mean_evals` = rows scored) are identical across
//!   partition **and** thread counts — CI runs this binary under
//!   `RAYON_NUM_THREADS=1` and default threads and diffs everything but
//!   the wall times.
//!
//! Usage: `cargo run --release -p lts-bench --bin bench_score_pipeline
//! -- [--scale F] [--out DIR]` (rows ≈ 1M at `--scale 1.0`).

use lts_bench::{BenchRecord, RunConfig, TextTable};
use lts_core::{CountingProblem, ScoredPopulation};
use lts_learn::{Classifier, Mlp, RandomForest};
use lts_table::table::table_of_floats;
use lts_table::{FnPredicate, ObjectPredicate, Table};
use std::sync::Arc;
use std::time::Instant;

fn build_problem(rows: usize) -> CountingProblem {
    let xs: Vec<f64> = (0..rows).map(|i| (i % 1013) as f64 / 1013.0).collect();
    let ys: Vec<f64> = (0..rows).map(|i| (i % 733) as f64 / 733.0).collect();
    let table = Arc::new(table_of_floats(&[("x", &xs), ("y", &ys)]).expect("valid columns"));
    let q: Arc<dyn ObjectPredicate> = Arc::new(FnPredicate::new("band", |t: &Table, i| {
        Ok(t.floats("x")?[i] + 0.3 * t.floats("y")?[i] < 0.8)
    }));
    CountingProblem::new(table, q, &["x", "y"]).expect("valid problem")
}

/// Train a proxy on a small labeled SRS-like sample (every k-th row).
fn train<M: Classifier>(problem: &CountingProblem, model: &mut M) {
    let ids: Vec<usize> = (0..problem.n())
        .step_by((problem.n() / 300).max(1))
        .collect();
    let labels: Vec<bool> = ids
        .iter()
        .map(|&i| problem.label(i).expect("predicate total"))
        .collect();
    model
        .fit(&problem.features().gather(&ids), &labels)
        .expect("training succeeds");
}

/// Best-of-2 wall time for `f`.
fn time_best<T, F: FnMut() -> T>(mut f: F) -> (T, f64) {
    let t0 = Instant::now();
    drop(f());
    let first = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let value = f();
    (value, first.min(t1.elapsed().as_secs_f64()))
}

/// 32-bit FNV-1a digest of the ordering, exactly representable as f64
/// (thread- and partition-independent by the determinism contract).
fn ordering_digest(order: &[usize]) -> f64 {
    let mut h: u32 = 0x811c9dc5;
    for &id in order {
        for b in (id as u64).to_le_bytes() {
            h ^= u32::from(b);
            h = h.wrapping_mul(16777619);
        }
    }
    f64::from(h)
}

fn main() {
    let cfg = RunConfig::from_env();
    let rows = ((1_000_000.0 * cfg.scale) as usize).max(50_000);
    let threads = rayon::current_num_threads();
    println!("== score pipeline: {rows} rows, {threads} rayon thread(s) ==");

    let problem = build_problem(rows);
    let mut forest = RandomForest::with_trees(50, 7);
    train(&problem, &mut forest);
    let mut mlp = Mlp::with_seed(7);
    train(&problem, &mut mlp);
    let models: [(&str, &dyn Classifier); 2] = [("forest", &forest), ("mlp", &mlp)];

    let partition_counts = [1usize, 2, 4, 8];
    let members: Vec<usize> = (0..rows).collect();
    let mut records = Vec::new();
    let mut out = TextTable::new(&["model", "config", "score sum", "wall (s)", "speedup"]);
    let mut worst_speedup = f64::INFINITY;

    for (name, model) in models {
        // Baseline: the per-row loop the estimators ran before the
        // refactor (one dynamic dispatch + Result per object).
        let features = problem.features();
        let (per_row, per_row_s) = time_best(|| {
            let mut scores = Vec::with_capacity(rows);
            for i in 0..rows {
                scores.push(model.score(features.row(i)).expect("scoring succeeds"));
            }
            scores
        });
        let per_row_sum: f64 = per_row.iter().sum();
        out.row(vec![
            name.into(),
            "per_row".into(),
            format!("{per_row_sum:.4}"),
            format!("{per_row_s:.4}"),
            "1.00x".into(),
        ]);
        records.push(BenchRecord {
            label: name.into(),
            cell: "per_row".into(),
            median: per_row_sum,
            iqr: 0.0,
            mean_evals: rows as f64,
            wall_seconds: per_row_s,
        });

        let mut best_batch_s = f64::INFINITY;
        let mut reference_order: Option<Vec<usize>> = None;
        for parts in partition_counts {
            let (scored, batch_s) = time_best(|| {
                ScoredPopulation::score_members_partitioned(&problem, model, members.clone(), parts)
                    .expect("scoring succeeds")
            });
            // Determinism gate: bit-identical to the per-row loop at
            // every partition count.
            assert_eq!(
                scored.scores().len(),
                per_row.len(),
                "{name}: length diverged at {parts} partitions"
            );
            for (i, (b, r)) in scored.scores().iter().zip(&per_row).enumerate() {
                assert_eq!(
                    b.to_bits(),
                    r.to_bits(),
                    "{name}: score {i} diverged at {parts} partitions — determinism bug"
                );
            }
            best_batch_s = best_batch_s.min(batch_s);
            let speedup = per_row_s / batch_s.max(1e-12);
            out.row(vec![
                name.into(),
                format!("batch_p{parts}"),
                format!("{per_row_sum:.4}"),
                format!("{batch_s:.4}"),
                format!("{speedup:.2}x"),
            ]);
            records.push(BenchRecord {
                label: name.into(),
                cell: format!("batch_p{parts}"),
                median: per_row_sum,
                iqr: 0.0,
                mean_evals: rows as f64,
                wall_seconds: batch_s,
            });

            // Ordering identical at every partition count.
            let ordered = scored.into_ordered();
            match &reference_order {
                None => reference_order = Some(ordered.order().to_vec()),
                Some(reference) => assert_eq!(
                    ordered.order(),
                    reference.as_slice(),
                    "{name}: ordering diverged at {parts} partitions"
                ),
            }
        }
        worst_speedup = worst_speedup.min(per_row_s / best_batch_s.max(1e-12));

        // Full pipeline (score + stable order), recorded once per model
        // with the ordering digest as its determinism fingerprint.
        let (digest, order_s) = time_best(|| {
            let ordered = ScoredPopulation::score_members(&problem, model, members.clone())
                .expect("scoring succeeds")
                .into_ordered();
            ordering_digest(ordered.order())
        });
        out.row(vec![
            name.into(),
            "score+order".into(),
            format!("{digest:.0}"),
            format!("{order_s:.4}"),
            "-".into(),
        ]);
        records.push(BenchRecord {
            label: name.into(),
            cell: "score_order_digest".into(),
            median: digest,
            iqr: 0.0,
            mean_evals: rows as f64,
            wall_seconds: order_s,
        });
    }

    // Design-side stage: locate m pilots in the score order *without*
    // sorting the population — the partitioned bucket pass
    // (`pilot_index_from_scores`, O(N log m)) against the O(N log N)
    // argsort oracle. `median` = sum of pilot positions (exact in f64
    // at these sizes; identical across partition and thread counts).
    let scores = ScoredPopulation::score_members(&problem, &forest, members.clone())
        .expect("scoring succeeds")
        .scores()
        .to_vec();
    let pilots: Vec<(usize, bool)> = (0..rows)
        .step_by((rows / 1000).max(1))
        .map(|id| (id, id % 2 == 0))
        .collect();
    let ids: Vec<usize> = pilots.iter().map(|&(id, _)| id).collect();
    let (oracle, argsort_s) = time_best(|| lts_strata::pilot_positions_argsort(&scores, &ids));
    let position_sum = oracle.iter().sum::<usize>() as f64;
    out.row(vec![
        "pilot".into(),
        "argsort".into(),
        format!("{position_sum:.0}"),
        format!("{argsort_s:.4}"),
        "1.00x".into(),
    ]);
    records.push(BenchRecord {
        label: "pilot".into(),
        cell: "argsort".into(),
        median: position_sum,
        iqr: 0.0,
        mean_evals: rows as f64,
        wall_seconds: argsort_s,
    });
    for parts in [1usize, 8] {
        let (pilot, bucket_s) = time_best(|| {
            lts_strata::pilot_index_from_scores(&scores, &pilots, parts).expect("valid pilots")
        });
        assert_eq!(
            pilot.positions(),
            oracle.as_slice(),
            "bucket pass diverged from the argsort oracle at {parts} partitions"
        );
        out.row(vec![
            "pilot".into(),
            format!("bucket_p{parts}"),
            format!("{position_sum:.0}"),
            format!("{bucket_s:.4}"),
            format!("{:.2}x", argsort_s / bucket_s.max(1e-12)),
        ]);
        records.push(BenchRecord {
            label: "pilot".into(),
            cell: format!("bucket_p{parts}"),
            median: position_sum,
            iqr: 0.0,
            mean_evals: rows as f64,
            wall_seconds: bucket_s,
        });
    }

    print!("{}", out.render());
    println!(
        "   (median field of BENCH_score_pipeline.json = score sum / ordering digest / \
         pilot-position sum; identical across partition AND thread counts)"
    );
    println!(
        "   worst best-batch speedup over the per-row loop: {worst_speedup:.2}x \
         (acceptance bar: ≥ 4x at --full scale; {threads} thread(s) here)"
    );
    lts_bench::emit_records_json(&cfg.out_dir, "score_pipeline", "parallel", &records);
}
