//! Shared experiment machinery: standard estimator configurations,
//! per-cell execution, text tables, and CSV export.

use crate::cli::RunConfig;
use lts_core::estimators::{CountEstimator, Lss, Lws, Srs, Ssn, Ssp};
use lts_core::{run_trials, ClassifierSpec, CoreResult, LearnPhaseConfig, TrialStats};
use lts_data::Scenario;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One experimental cell: an estimator run on a scenario at a budget.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Row label (e.g. estimator or variant name).
    pub label: String,
    /// Column label (e.g. "Sports/XS @1%").
    pub column: String,
    /// Ground truth.
    pub truth: f64,
    /// Trial statistics.
    pub stats: TrialStats,
}

impl Cell {
    /// Median relative error in percent.
    pub fn median_rel_err_pct(&self) -> f64 {
        if self.truth == 0.0 {
            f64::NAN
        } else {
            (self.stats.median() - self.truth) / self.truth * 100.0
        }
    }

    /// IQR as a percentage of the truth (scale-free spread).
    pub fn iqr_pct(&self) -> f64 {
        if self.truth == 0.0 {
            f64::NAN
        } else {
            self.stats.iqr() / self.truth * 100.0
        }
    }
}

/// Run one cell.
///
/// # Errors
///
/// Propagates estimator errors.
pub fn run_cell(
    scenario: &Scenario,
    estimator: &dyn CountEstimator,
    label: impl Into<String>,
    column: impl Into<String>,
    budget: usize,
    cfg: &RunConfig,
) -> CoreResult<Cell> {
    let truth = scenario.truth as f64;
    let stats = run_trials(
        &scenario.problem,
        estimator,
        budget,
        cfg.trials,
        cfg.seed,
        Some(truth),
    )?;
    Ok(Cell {
        label: label.into(),
        column: column.into(),
        truth,
        stats,
    })
}

/// The paper's standard estimator lineup for Figure 2.
pub fn paper_estimators(seed: u64) -> Vec<(String, Box<dyn CountEstimator>)> {
    let learn = LearnPhaseConfig {
        spec: ClassifierSpec::RandomForest { n_trees: 100 },
        augment: None,
        model_seed: seed,
    };
    vec![
        (
            "SRS".into(),
            Box::new(Srs::default()) as Box<dyn CountEstimator>,
        ),
        ("SSP".into(), Box::new(Ssp::default())),
        ("SSN".into(), Box::new(Ssn::default())),
        (
            "LWS".into(),
            Box::new(Lws {
                learn,
                ..Lws::default()
            }),
        ),
        (
            "LSS".into(),
            Box::new(Lss {
                learn,
                ..Lss::default()
            }),
        ),
    ]
}

/// A simple aligned text table accumulated row by row.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create with a header row.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncol];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                let pad = widths[i].saturating_sub(cell.chars().count());
                let _ = write!(out, "{}{}  ", cell, " ".repeat(pad));
            }
            let _ = writeln!(out);
        };
        write_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * ncol;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Write as CSV to `dir/name.csv` (creates the directory).
    ///
    /// # Errors
    ///
    /// Returns IO errors.
    pub fn write_csv(&self, dir: &str, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{name}.csv"));
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        writeln!(
            f,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        f.flush()
    }
}

/// Format a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v.is_nan() {
        "-".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Standard cell row: label, median, IQR, IQR%, rel-err%, outliers,
/// coverage, evals.
pub fn cell_row(cell: &Cell) -> Vec<String> {
    vec![
        cell.label.clone(),
        cell.column.clone(),
        fmt(cell.truth),
        fmt(cell.stats.median()),
        fmt(cell.stats.iqr()),
        fmt(cell.iqr_pct()),
        fmt(cell.median_rel_err_pct()),
        cell.stats.outliers.to_string(),
        cell.stats.coverage.map_or("-".into(), |c| fmt(c * 100.0)),
        fmt(cell.stats.mean_evals),
    ]
}

/// Header matching [`cell_row`].
pub const CELL_HEADER: [&str; 10] = [
    "estimator",
    "cell",
    "truth",
    "median",
    "IQR",
    "IQR%",
    "relerr%",
    "outliers",
    "cover%",
    "evals",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.row(vec!["xx".into(), "y".into()]);
        t.row(vec!["1".into(), "22222".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("lts_bench_test");
        let dir = dir.to_str().unwrap();
        let mut t = TextTable::new(&["x", "y"]);
        t.row(vec!["a,b".into(), "c\"d".into()]);
        t.write_csv(dir, "t").unwrap();
        let content = std::fs::read_to_string(format!("{dir}/t.csv")).unwrap();
        assert!(content.contains("\"a,b\""));
        assert!(content.contains("\"c\"\"d\""));
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(f64::NAN), "-");
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(12.34), "12.3");
        assert_eq!(fmt(1.234), "1.234");
    }

    #[test]
    fn paper_estimator_lineup() {
        let ests = paper_estimators(1);
        let names: Vec<&str> = ests.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["SRS", "SSP", "SSN", "LWS", "LSS"]);
    }
}
