//! Reproduction harness for the paper's evaluation (§5).
//!
//! Every table and figure has a module under [`experiments`] and a thin
//! binary under `src/bin/` (`repro_table1`, `repro_fig1`, …,
//! `repro_all`). All binaries accept:
//!
//! ```text
//! --trials N    repeated runs per cell            (default 15)
//! --scale F     dataset-size multiplier vs paper  (default 0.2)
//! --seed N      master seed                       (default 7)
//! --full        paper-scale datasets (scale 1.0) and 30 trials
//! --out DIR     CSV output directory              (default ./results)
//! ```
//!
//! Violin plots are summarized as median / IQR / outlier counts — the
//! paper's own comparison metric (§5: "we commonly use interquartile
//! range").
//!
//! Runs also drop machine-readable `BENCH_<name>.json` perf artifacts
//! (module [`json`]); the schema — fields, units, and the
//! execution-mode caveats for comparing wall times — is documented in
//! `docs/benchmarks.md` at the repository root.

#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod harness;
pub mod json;

pub use cli::RunConfig;
pub use harness::{Cell, TextTable};
pub use json::{emit_cells_json, emit_records_json, write_bench_json, BenchRecord};
