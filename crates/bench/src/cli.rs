//! Minimal command-line parsing shared by all repro binaries.

/// Runtime configuration for a reproduction run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Trials per experimental cell.
    pub trials: usize,
    /// Dataset-size multiplier relative to paper scale
    /// (47 000 Sports rows, 73 000 Neighbors rows).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// CSV output directory.
    pub out_dir: String,
    /// Use the extended classifier lineup (adds LOGIT/GNB/GBM) in the
    /// classifier-comparison figures.
    pub extended: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            trials: 15,
            scale: 0.2,
            seed: 7,
            out_dir: "results".into(),
            extended: false,
        }
    }
}

impl RunConfig {
    /// Parse from `std::env::args`-style input (ignores `argv[0]`).
    ///
    /// Unknown flags abort with a usage message — a repro run silently
    /// ignoring a typo would waste minutes.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut it = args.into_iter().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--trials" => {
                    cfg.trials = it
                        .next()
                        .ok_or("--trials needs a value")?
                        .parse()
                        .map_err(|e| format!("--trials: {e}"))?;
                }
                "--scale" => {
                    cfg.scale = it
                        .next()
                        .ok_or("--scale needs a value")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?;
                }
                "--seed" => {
                    cfg.seed = it
                        .next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--out" => {
                    cfg.out_dir = it.next().ok_or("--out needs a value")?;
                }
                "--full" => {
                    cfg.scale = 1.0;
                    cfg.trials = 30;
                }
                "--extended" => {
                    cfg.extended = true;
                }
                "--help" | "-h" => {
                    return Err(USAGE.into());
                }
                other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
            }
        }
        if cfg.trials == 0 {
            return Err("--trials must be positive".into());
        }
        if !(cfg.scale > 0.0 && cfg.scale <= 1.0) {
            return Err("--scale must be in (0, 1]".into());
        }
        Ok(cfg)
    }

    /// Parse from the process arguments, exiting on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args()) {
            Ok(cfg) => cfg,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Sports dataset rows at this scale.
    pub fn sports_rows(&self) -> usize {
        ((47_000.0 * self.scale) as usize).max(2_000)
    }

    /// Neighbors dataset rows at this scale.
    pub fn neighbors_rows(&self) -> usize {
        ((73_000.0 * self.scale) as usize).max(2_000)
    }

    /// The paper's per-figure budgets: 1% and 2% of the population.
    pub fn budget_fractions(&self) -> [f64; 2] {
        [0.01, 0.02]
    }

    /// The classifier lineup for Figures 6–7: the paper's four, or the
    /// extended seven under `--extended`.
    pub fn classifier_lineup(&self) -> Vec<lts_core::ClassifierSpec> {
        if self.extended {
            lts_core::ClassifierSpec::extended_lineup()
        } else {
            lts_core::ClassifierSpec::paper_lineup()
        }
    }
}

/// Usage text.
pub const USAGE: &str =
    "usage: repro_* [--trials N] [--scale F] [--seed N] [--out DIR] [--full] [--extended]";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> impl Iterator<Item = String> + '_ {
        std::iter::once("prog".to_string()).chain(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults_and_overrides() {
        let cfg = RunConfig::parse(argv("")).unwrap();
        assert_eq!(cfg.trials, 15);
        let cfg = RunConfig::parse(argv("--trials 5 --scale 0.1 --seed 42 --out /tmp/x")).unwrap();
        assert_eq!(cfg.trials, 5);
        assert_eq!(cfg.scale, 0.1);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.out_dir, "/tmp/x");
    }

    #[test]
    fn full_flag() {
        let cfg = RunConfig::parse(argv("--full")).unwrap();
        assert_eq!(cfg.scale, 1.0);
        assert_eq!(cfg.trials, 30);
    }

    #[test]
    fn extended_flag_widens_the_lineup() {
        let cfg = RunConfig::parse(argv("")).unwrap();
        assert_eq!(cfg.classifier_lineup().len(), 4);
        let cfg = RunConfig::parse(argv("--extended")).unwrap();
        assert!(cfg.extended);
        assert_eq!(cfg.classifier_lineup().len(), 7);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(RunConfig::parse(argv("--bogus")).is_err());
        assert!(RunConfig::parse(argv("--trials")).is_err());
        assert!(RunConfig::parse(argv("--trials zero")).is_err());
        assert!(RunConfig::parse(argv("--trials 0")).is_err());
        assert!(RunConfig::parse(argv("--scale 2.0")).is_err());
    }

    #[test]
    fn row_scaling() {
        let cfg = RunConfig::parse(argv("--scale 1.0")).unwrap();
        assert_eq!(cfg.sports_rows(), 47_000);
        assert_eq!(cfg.neighbors_rows(), 73_000);
        let cfg = RunConfig::parse(argv("--scale 0.001")).unwrap();
        assert_eq!(cfg.sports_rows(), 2_000); // floor
    }
}
