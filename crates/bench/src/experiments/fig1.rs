//! Figure 1: uncertainty-sampling augmentation sharpens a k-NN
//! classifier's decision boundary.
//!
//! The paper shows three heat maps of the scoring function `g` over the
//! feature space as the training set grows 2500 → 2600 → 2700 via two
//! uncertainty-sampling steps. We print, per step: training size, test
//! accuracy, and the size of the uncertain band (objects with
//! `|g − 0.5| < 0.25`), and dump a score grid per step as CSV
//! (`fig1_step{0,1,2}.csv`) for plotting.

use super::build_scenario;
use crate::cli::RunConfig;
use crate::harness::TextTable;
use lts_core::{CoreResult, Labeler};
use lts_data::{DatasetKind, SelectivityLevel};
use lts_learn::{select_uncertain, Classifier, Knn};
use lts_sampling::sample_without_replacement;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Regenerate Figure 1.
///
/// # Errors
///
/// Propagates scenario/classifier errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Figure 1: active learning sharpens the kNN boundary ==");
    let sc = build_scenario(cfg, DatasetKind::Neighbors, SelectivityLevel::M)?;
    println!("   scenario: {}", sc.describe());
    let problem = &sc.problem;
    let n = problem.n();
    let features = problem.features();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut labeler = Labeler::new(problem);

    // Initial training set: 5% of O (paper: 2500 of 50k) and two
    // augmentation steps of 100 (scaled).
    let initial = ((n as f64) * 0.05) as usize;
    let step = ((100.0 * cfg.scale).round() as usize).max(20);

    let mut labeled = sample_without_replacement(&mut rng, initial, n)?;
    let mut labels = labeler.label_batch(&labeled)?;
    labels.reserve(2 * step);
    let mut model = Knn::new(5)?;
    model.fit(&features.gather(&labeled), &labels)?;

    // Held-out evaluation sample (diagnostic only; not budgeted).
    let eval_ids = sample_without_replacement(&mut rng, 2000.min(n / 2), n)?;
    let eval_truth = labeler.label_batch(&eval_ids)?;

    let mut table = TextTable::new(&[
        "step",
        "train size",
        "accuracy%",
        "uncertain band%",
        "boundary err%",
    ]);
    for step_no in 0..=2 {
        // Evaluate — one vectorized batch score over the gathered
        // evaluation rows instead of a per-row loop.
        let mut correct = 0usize;
        let mut uncertain = 0usize;
        let mut band_err = 0usize;
        let mut band_total = 0usize;
        let eval_scores = model.score_batch(&features.gather(&eval_ids))?;
        for (&g, &truth) in eval_scores.iter().zip(&eval_truth) {
            if (g >= 0.5) == truth {
                correct += 1;
            }
            if (g - 0.5).abs() < 0.25 {
                uncertain += 1;
                band_total += 1;
                if (g >= 0.5) != truth {
                    band_err += 1;
                }
            }
        }
        table.row(vec![
            step_no.to_string(),
            labeled.len().to_string(),
            format!("{:.2}", correct as f64 / eval_ids.len() as f64 * 100.0),
            format!("{:.2}", uncertain as f64 / eval_ids.len() as f64 * 100.0),
            if band_total == 0 {
                "-".into()
            } else {
                format!("{:.1}", band_err as f64 / band_total as f64 * 100.0)
            },
        ]);
        dump_heatmap(cfg, &model, &sc, step_no)?;

        if step_no == 2 {
            break;
        }
        // Uncertainty-sampling augmentation (paper: pool then pick the
        // smallest |g − 0.5|).
        let mut in_labeled = vec![false; n];
        for &i in &labeled {
            in_labeled[i] = true;
        }
        let mut pool: Vec<usize> = (0..n).filter(|&i| !in_labeled[i]).collect();
        let pool_size = 4000.min(pool.len());
        for i in 0..pool_size {
            let j = rng.random_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(pool_size);
        let picks = select_uncertain(&model, features, &pool, step)?;
        let pick_labels = labeler.label_batch(&picks)?;
        for (&i, l) in picks.iter().zip(pick_labels) {
            labeled.push(i);
            labels.push(l);
        }
        model.fit(&features.gather(&labeled), &labels)?;
    }
    print!("{}", table.render());
    println!(
        "   heat maps written to {}/fig1_step[0-2].csv (x, y, g)",
        cfg.out_dir
    );
    table
        .write_csv(&cfg.out_dir, "fig1")
        .map_err(|e| lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        })?;
    Ok(())
}

/// Write a `grid × grid` score heat map over the 2-d feature bounding
/// box.
fn dump_heatmap(
    cfg: &RunConfig,
    model: &Knn,
    sc: &lts_data::Scenario,
    step: usize,
) -> CoreResult<()> {
    const GRID: usize = 40;
    let features = sc.problem.features();
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for row in features.iter_rows() {
        min_x = min_x.min(row[0]);
        max_x = max_x.max(row[0]);
        min_y = min_y.min(row[1]);
        max_y = max_y.max(row[1]);
    }
    // Score the whole grid as one batch through the vectorized kernel.
    let mut grid_rows = Vec::with_capacity(GRID * GRID);
    for iy in 0..GRID {
        for ix in 0..GRID {
            let x = min_x + (max_x - min_x) * (ix as f64 + 0.5) / GRID as f64;
            let y = min_y + (max_y - min_y) * (iy as f64 + 0.5) / GRID as f64;
            grid_rows.push(vec![x, y]);
        }
    }
    let grid_matrix = lts_learn::Matrix::from_rows(&grid_rows)?;
    let scores = model.score_batch(&grid_matrix)?;
    let mut table = TextTable::new(&["x", "y", "g"]);
    for (row, &g) in grid_rows.iter().zip(&scores) {
        table.row(vec![
            format!("{:.4}", row[0]),
            format!("{:.4}", row[1]),
            format!("{g:.4}"),
        ]);
    }
    table
        .write_csv(&cfg.out_dir, &format!("fig1_step{step}"))
        .map_err(|e| lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        })
}
