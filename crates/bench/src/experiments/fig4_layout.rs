//! §5.4.1 (Figure 4, layout panel): strata layout strategies —
//! fixed width vs fixed height vs the optimized layout.
//!
//! Expected shape: fixed height is worst on skewed settings (XS/XXL,
//! where one label dominates and equal-count strata mix labels); the
//! optimized layout has the smallest IQR.

use super::{build_scenario, try_cell, FIGURE_LEVELS};
use crate::cli::RunConfig;
use crate::harness::{cell_row, TextTable, CELL_HEADER};
use lts_core::estimators::{Lss, LssLayout};
use lts_core::CoreResult;
use lts_data::DatasetKind;
use lts_strata::DesignAlgorithm;

/// Regenerate the strata-layout comparison.
///
/// # Errors
///
/// Propagates scenario-construction errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Figure 4 (layouts): fixed width / fixed height / optimized ==");
    let layouts: [(&str, LssLayout); 3] = [
        ("fixed-width", LssLayout::FixedWidth),
        ("fixed-height", LssLayout::FixedHeight),
        ("optimized", LssLayout::Optimized(DesignAlgorithm::DynPgm)),
    ];
    let mut table = TextTable::new(&CELL_HEADER);
    for dataset in [DatasetKind::Neighbors, DatasetKind::Sports] {
        for level in FIGURE_LEVELS {
            let scenario = build_scenario(cfg, dataset, level)?;
            println!("   {}", scenario.describe());
            let budget = ((scenario.problem.n() as f64 * 0.02) as usize).max(60);
            let column = format!("{}/{} @2%", dataset.label(), level.label());
            for (name, layout) in layouts {
                let est = Lss {
                    layout,
                    ..Lss::default()
                };
                if let Some(cell) = try_cell(&scenario, &est, name, &column, budget, cfg) {
                    table.row(cell_row(&cell));
                }
            }
        }
    }
    print!("{}", table.render());
    println!("   expect: optimized ≤ fixed-width < fixed-height IQR, worst gap at XS.");
    table.write_csv(&cfg.out_dir, "fig4_layout").map_err(|e| {
        lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        }
    })?;
    Ok(())
}
