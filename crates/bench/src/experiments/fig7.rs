//! Figure 7: quantification learning (QLCC / QLAC) across classifiers.
//!
//! Expected shape (paper §5.5.1): quantification estimates track the
//! classifier quality directly — the small NN sometimes produces
//! extremely poor estimates, where the equivalent LSS stays reasonable
//! (compare with Figure 6's rows).

use super::{build_scenario, try_cell, FIGURE_LEVELS};
use crate::cli::RunConfig;
use crate::harness::{cell_row, TextTable, CELL_HEADER};
use lts_core::estimators::{Qlac, Qlcc};
use lts_core::{CoreResult, LearnPhaseConfig};
use lts_data::DatasetKind;

/// Regenerate Figure 7.
///
/// # Errors
///
/// Propagates scenario-construction errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Figure 7: quantification learning across classifiers ==");
    let mut table = TextTable::new(&CELL_HEADER);
    for dataset in [DatasetKind::Neighbors, DatasetKind::Sports] {
        for level in FIGURE_LEVELS {
            let scenario = build_scenario(cfg, dataset, level)?;
            println!("   {}", scenario.describe());
            let budget = ((scenario.problem.n() as f64 * 0.02) as usize).max(60);
            let column = format!("{}/{} @2%", dataset.label(), level.label());
            for spec in cfg.classifier_lineup() {
                let learn = LearnPhaseConfig {
                    spec,
                    augment: None,
                    model_seed: cfg.seed,
                };
                let cc = Qlcc { learn };
                let label = format!("QLCC/{}", spec.kind().label());
                if let Some(cell) = try_cell(&scenario, &cc, &label, &column, budget, cfg) {
                    table.row(cell_row(&cell));
                }
                let ac = Qlac { learn, folds: 5 };
                let label = format!("QLAC/{}", spec.kind().label());
                if let Some(cell) = try_cell(&scenario, &ac, &label, &column, budget, cfg) {
                    table.row(cell_row(&cell));
                }
            }
        }
    }
    print!("{}", table.render());
    println!("   expect: estimate quality tied to classifier; Random rows skew badly.");
    table
        .write_csv(&cfg.out_dir, "fig7")
        .map_err(|e| lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        })?;
    Ok(())
}
