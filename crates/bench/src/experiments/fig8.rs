//! Figure 8: Classify-and-Count vs Adjusted Count, with and without
//! one uncertainty-sampling augmentation step.
//!
//! Expected shape (paper §5.5.2): CC is generally one of the better
//! quantification variants; AC sometimes has smaller IQRs but
//! occasionally produces an extreme value (the paper observed roughly a
//! 1-in-100 rate).

use super::{build_scenario, try_cell, FIGURE_LEVELS};
use crate::cli::RunConfig;
use crate::harness::{cell_row, TextTable, CELL_HEADER};
use lts_core::estimators::{Qlac, Qlcc};
use lts_core::{ClassifierSpec, CoreResult, LearnPhaseConfig};
use lts_data::DatasetKind;
use lts_learn::active::AugmentConfig;

/// Regenerate Figure 8.
///
/// # Errors
///
/// Propagates scenario-construction errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Figure 8: QLCC vs QLAC, with/without augmentation ==");
    let mut table = TextTable::new(&CELL_HEADER);
    let augment = AugmentConfig {
        steps: 1,
        per_step: ((100.0 * cfg.scale).round() as usize).max(20),
        pool_size: 2000,
    };
    for dataset in [DatasetKind::Neighbors, DatasetKind::Sports] {
        for level in FIGURE_LEVELS {
            let scenario = build_scenario(cfg, dataset, level)?;
            println!("   {}", scenario.describe());
            for frac in cfg.budget_fractions() {
                let budget = ((scenario.problem.n() as f64 * frac) as usize).max(60);
                let column = format!(
                    "{}/{} @{:.0}%",
                    dataset.label(),
                    level.label(),
                    frac * 100.0
                );
                for (aug_label, aug) in [("", None), ("+aug", Some(augment))] {
                    let learn = LearnPhaseConfig {
                        spec: ClassifierSpec::RandomForest { n_trees: 100 },
                        augment: aug,
                        model_seed: cfg.seed,
                    };
                    let cc = Qlcc { learn };
                    let label = format!("CC{aug_label}");
                    if let Some(cell) = try_cell(&scenario, &cc, &label, &column, budget, cfg) {
                        table.row(cell_row(&cell));
                    }
                    let ac = Qlac { learn, folds: 5 };
                    let label = format!("AC{aug_label}");
                    if let Some(cell) = try_cell(&scenario, &ac, &label, &column, budget, cfg) {
                        table.row(cell_row(&cell));
                    }
                }
            }
        }
    }
    print!("{}", table.render());
    println!("   expect: CC among the best; AC occasionally throws an extreme value.");
    table
        .write_csv(&cfg.out_dir, "fig8")
        .map_err(|e| lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        })?;
    Ok(())
}
