//! §5.4.2 (Figure 4, strata-count panel): LSS vs SSP as the number of
//! strata grows (4, 9, 25, 49, 100).
//!
//! SSP grids the two surrogate attributes (2×2 … 10×10); LSS stratifies
//! the score ordering with the same stratum count. For `H ≥ 9` LSS uses
//! the separable DynPgmP design with post-hoc Neyman allocation
//! (ARCHITECTURE.md decision 4). Cells whose scaled-down budget cannot support
//! `H` strata are skipped with a notice.

use super::{build_scenario, try_cell, FIGURE_LEVELS};
use crate::cli::RunConfig;
use crate::harness::{cell_row, TextTable, CELL_HEADER};
use lts_core::estimators::{Lss, LssLayout, Ssp};
use lts_core::CoreResult;
use lts_data::DatasetKind;
use lts_strata::DesignAlgorithm;

/// Regenerate the strata-count sweep.
///
/// # Errors
///
/// Propagates scenario-construction errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Figure 4 (strata count): LSS vs SSP with 4..100 strata ==");
    let mut table = TextTable::new(&CELL_HEADER);
    for dataset in [DatasetKind::Neighbors, DatasetKind::Sports] {
        for level in FIGURE_LEVELS {
            let scenario = build_scenario(cfg, dataset, level)?;
            println!("   {}", scenario.describe());
            let budget = ((scenario.problem.n() as f64 * 0.02) as usize).max(60);
            for strata in [4usize, 9, 25, 49, 100] {
                let column = format!("{}/{} H={strata}", dataset.label(), level.label());
                let algo = if strata >= 9 {
                    DesignAlgorithm::DynPgmP
                } else {
                    DesignAlgorithm::DynPgm
                };
                let lss = Lss {
                    n_strata: strata,
                    layout: LssLayout::Optimized(algo),
                    ..Lss::default()
                };
                if let Some(cell) = try_cell(&scenario, &lss, "LSS", &column, budget, cfg) {
                    table.row(cell_row(&cell));
                }
                let ssp = Ssp::with_strata(strata);
                if let Some(cell) = try_cell(&scenario, &ssp, "SSP", &column, budget, cfg) {
                    table.row(cell_row(&cell));
                }
            }
        }
    }
    print!("{}", table.render());
    println!("   expect: more strata helps mildly; LSS IQR below SSP throughout.");
    table.write_csv(&cfg.out_dir, "fig4_strata").map_err(|e| {
        lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        }
    })?;
    Ok(())
}
