//! Table 1: result-set sizes (percent and exact) for every selectivity
//! setting of both datasets.

use super::build_scenario;
use crate::cli::RunConfig;
use crate::harness::TextTable;
use lts_core::CoreResult;
use lts_data::{DatasetKind, SelectivityLevel};

/// Regenerate Table 1.
///
/// # Errors
///
/// Propagates scenario-construction errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Table 1: result set sizes, percent (exact) ==");
    println!(
        "   datasets at scale {} (Sports N={}, Neighbors N={})",
        cfg.scale,
        cfg.sports_rows(),
        cfg.neighbors_rows()
    );
    let mut table = TextTable::new(&["dataset", "level", "target%", "achieved%", "count", "param"]);
    for dataset in [DatasetKind::Sports, DatasetKind::Neighbors] {
        for level in SelectivityLevel::ALL {
            let sc = build_scenario(cfg, dataset, level)?;
            let param = match sc.param {
                lts_data::QueryParam::K(k) => format!("k={k}"),
                lts_data::QueryParam::D(d) => format!("d={d:.4}"),
            };
            table.row(vec![
                dataset.label().into(),
                level.label().into(),
                format!("{:.0}", level.target(dataset) * 100.0),
                format!("{:.1}", sc.selectivity * 100.0),
                sc.truth.to_string(),
                param,
            ]);
        }
    }
    print!("{}", table.render());
    table
        .write_csv(&cfg.out_dir, "table1")
        .map_err(|e| lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        })?;
    Ok(())
}
