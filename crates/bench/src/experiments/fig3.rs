//! Figure 3: LSS execution-time overhead versus sample size, broken
//! into the paper's three phases — P1 Learning, P1 Sample Design, and
//! P2 Overhead — against total runtime.
//!
//! This experiment uses the **SQL-expression predicate** (nested-loop
//! evaluation over the table engine), so per-label cost is realistic and
//! the paper's headline observation — overhead is a tiny fraction
//! (≈0.2%) of total runtime — can be checked directly.

use super::build_scenario;
use crate::cli::RunConfig;
use crate::harness::TextTable;
use lts_core::estimators::{CountEstimator, Lss};
use lts_core::{CoreResult, LearnPhaseConfig};
use lts_data::{DatasetKind, SelectivityLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Regenerate Figure 3.
///
/// # Errors
///
/// Propagates scenario/estimator errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Figure 3: LSS overhead by phase vs sample size ==");
    // The SQL predicate is orders of magnitude slower per label, so this
    // figure runs on a reduced dataset and few trials by design.
    let fig_cfg = RunConfig {
        scale: cfg.scale.min(0.1),
        trials: cfg.trials.min(3),
        ..cfg.clone()
    };
    let sc = build_scenario(&fig_cfg, DatasetKind::Sports, SelectivityLevel::M)?;
    let sql_problem = sc.sql_problem()?;
    println!(
        "   scenario: {} with SQL predicate (nested-loop), {} trials",
        sc.describe(),
        fig_cfg.trials
    );

    let mut table = TextTable::new(&[
        "sample",
        "budget",
        "P1 learn (ms)",
        "P1 design (ms)",
        "P2 overhead (ms)",
        "labeling (ms)",
        "total (ms)",
        "overhead %",
    ]);
    let lss = Lss {
        learn: LearnPhaseConfig::default(),
        ..Lss::default()
    };
    for frac in [0.005f64, 0.01, 0.02, 0.04] {
        let budget = ((sql_problem.n() as f64 * frac) as usize).max(60);
        // Average over trials.
        let mut learn = 0.0;
        let mut design = 0.0;
        let mut phase2 = 0.0;
        let mut labeling = 0.0;
        let mut total = 0.0;
        for t in 0..fig_cfg.trials {
            sql_problem.reset_meter();
            let mut rng = StdRng::seed_from_u64(fig_cfg.seed + t as u64);
            let report = lss.estimate(&sql_problem, budget, &mut rng)?;
            learn += report.timings.learn.as_secs_f64();
            design += report.timings.design.as_secs_f64();
            phase2 += report.timings.phase2.as_secs_f64();
            labeling += report.timings.labeling.as_secs_f64();
            total += report.timings.total.as_secs_f64();
        }
        let ms = |secs_sum: f64| secs_sum / fig_cfg.trials as f64 * 1000.0;
        let overhead_pct = (learn + design + phase2) / total * 100.0;
        table.row(vec![
            format!("{:.1}%", frac * 100.0),
            budget.to_string(),
            format!("{:.2}", ms(learn)),
            format!("{:.2}", ms(design)),
            format!("{:.2}", ms(phase2)),
            format!("{:.2}", ms(labeling)),
            format!("{:.2}", ms(total)),
            format!("{overhead_pct:.2}"),
        ]);
    }
    print!("{}", table.render());
    println!("   expect: overhead % small and shrinking as sample size grows.");
    table
        .write_csv(&cfg.out_dir, "fig3")
        .map_err(|e| lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        })?;
    Ok(())
}
