//! Figure 5: the learning : sampling budget split (10 / 25 / 50 / 75%
//! of the budget to classifier training).
//!
//! Expected shape (paper §5.4.3): 10% under-trains the classifier (more
//! extreme estimates), 75% starves the sampling phase; the middle
//! splits (25%, 50%) give the lowest IQR.

use super::{build_scenario, try_cell, FIGURE_LEVELS};
use crate::cli::RunConfig;
use crate::harness::{cell_row, TextTable, CELL_HEADER};
use lts_core::estimators::Lss;
use lts_core::CoreResult;
use lts_data::DatasetKind;

/// Regenerate Figure 5.
///
/// # Errors
///
/// Propagates scenario-construction errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Figure 5: training:sampling split ==");
    let mut table = TextTable::new(&CELL_HEADER);
    for dataset in [DatasetKind::Neighbors, DatasetKind::Sports] {
        for level in FIGURE_LEVELS {
            let scenario = build_scenario(cfg, dataset, level)?;
            println!("   {}", scenario.describe());
            for frac in cfg.budget_fractions() {
                let budget = ((scenario.problem.n() as f64 * frac) as usize).max(60);
                for split in [0.10f64, 0.25, 0.50, 0.75] {
                    let column = format!(
                        "{}/{} @{:.0}%",
                        dataset.label(),
                        level.label(),
                        frac * 100.0
                    );
                    let est = Lss {
                        train_frac: split,
                        ..Lss::default()
                    };
                    let label = format!("split {:.0}%", split * 100.0);
                    if let Some(cell) = try_cell(&scenario, &est, &label, &column, budget, cfg) {
                        table.row(cell_row(&cell));
                    }
                }
            }
        }
    }
    print!("{}", table.render());
    println!("   expect: 25% and 50% splits give the lowest IQR with fewest outliers.");
    table
        .write_csv(&cfg.out_dir, "fig5")
        .map_err(|e| lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        })?;
    Ok(())
}
