//! Figure 6: LSS robustness to classifier quality — KNN, the small NN,
//! RF, and the adversarial Random scorer.
//!
//! Expected shape (paper §5.4.4): better classifiers give tighter
//! estimates, but even Random-driven LSS stays unbiased with quality
//! comparable to plain stratified sampling.

use super::{build_scenario, try_cell, FIGURE_LEVELS};
use crate::cli::RunConfig;
use crate::harness::{cell_row, TextTable, CELL_HEADER};
use lts_core::estimators::Lss;
use lts_core::{CoreResult, LearnPhaseConfig};
use lts_data::DatasetKind;

/// Regenerate Figure 6.
///
/// # Errors
///
/// Propagates scenario-construction errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Figure 6: LSS across classifiers ==");
    let mut table = TextTable::new(&CELL_HEADER);
    for dataset in [DatasetKind::Neighbors, DatasetKind::Sports] {
        for level in FIGURE_LEVELS {
            let scenario = build_scenario(cfg, dataset, level)?;
            println!("   {}", scenario.describe());
            let budget = ((scenario.problem.n() as f64 * 0.02) as usize).max(60);
            let column = format!("{}/{} @2%", dataset.label(), level.label());
            for spec in cfg.classifier_lineup() {
                let est = Lss {
                    learn: LearnPhaseConfig {
                        spec,
                        augment: None,
                        model_seed: cfg.seed,
                    },
                    ..Lss::default()
                };
                if let Some(cell) =
                    try_cell(&scenario, &est, spec.kind().label(), &column, budget, cfg)
                {
                    table.row(cell_row(&cell));
                }
            }
        }
    }
    print!("{}", table.render());
    println!("   expect: RF/KNN tightest; Random widest but unbiased (median ≈ truth).");
    table
        .write_csv(&cfg.out_dir, "fig6")
        .map_err(|e| lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        })?;
    Ok(())
}
