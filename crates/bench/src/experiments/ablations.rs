//! Ablations for the implementation decisions ARCHITECTURE.md documents:
//!
//! * **A1 — pilot handling**: exact-remainder (decision 2) vs the
//!   paper's textbook composition;
//! * **A2 — DynPgm T-selection** (decision 3): pruned vs full grid vs a
//!   single unconstrained pass, quality and design time;
//! * **A3 — boundary granularity ε** (decision 5): finer candidate
//!   ladders vs quality;
//! * **A4 — sequential LWS** (future-work extension): budget saved by
//!   early stopping vs fixed-budget LWS accuracy;
//! * **A5 — pilot reuse** (footnote-3 extension): fresh SRS pilot vs
//!   reusing the learning-phase labels as free extra design pilots,
//!   including the reuse+smaller-pilot regime that shifts budget to
//!   stage 2;
//! * **A6 — Des Raj vs Horvitz–Thompson** for learned weighted
//!   sampling: the paper picks Des Raj for its running estimates (§4.1);
//!   LWS-HT pairs the same weights with a fixed-size systematic PPS
//!   design and the HT estimator.

use super::{build_scenario, try_cell};
use crate::cli::RunConfig;
use crate::harness::{cell_row, TextTable, CELL_HEADER};
use lts_core::estimators::{Lss, Lws, LwsHt, LwsSequential, PilotHandling, PilotSource};
use lts_core::CoreResult;
use lts_data::{DatasetKind, SelectivityLevel};
use lts_strata::TSelection;

/// Run all ablations.
///
/// # Errors
///
/// Propagates scenario-construction errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Ablations: implementation decisions ==");
    let scenario = build_scenario(cfg, DatasetKind::Neighbors, SelectivityLevel::S)?;
    println!("   {}", scenario.describe());
    let budget = ((scenario.problem.n() as f64 * 0.02) as usize).max(60);
    let column = "Neighbors/S @2%";
    let mut table = TextTable::new(&CELL_HEADER);

    // A1: pilot handling.
    for (label, handling) in [
        ("A1 exact-remainder", PilotHandling::ExactRemainder),
        ("A1 textbook", PilotHandling::Textbook),
    ] {
        let est = Lss {
            pilot_handling: handling,
            ..Lss::default()
        };
        if let Some(cell) = try_cell(&scenario, &est, label, column, budget, cfg) {
            table.row(cell_row(&cell));
        }
    }

    // A2: T-selection (quality side; the time side lives in the
    // `strata_algorithms` criterion bench).
    for (label, t) in [
        ("A2 T=unconstrained", TSelection::Unconstrained),
        ("A2 T=pruned(6)", TSelection::Pruned(6)),
        ("A2 T=full", TSelection::Full),
    ] {
        let est = Lss {
            t_selection: t,
            ..Lss::default()
        };
        if let Some(cell) = try_cell(&scenario, &est, label, column, budget, cfg) {
            table.row(cell_row(&cell));
        }
    }

    // A3: boundary granularity ε.
    for eps in [0.25f64, 1.0, 3.0] {
        let est = Lss {
            epsilon: eps,
            ..Lss::default()
        };
        let label = format!("A3 eps={eps}");
        if let Some(cell) = try_cell(&scenario, &est, &label, column, budget, cfg) {
            table.row(cell_row(&cell));
        }
    }

    // A4: sequential LWS vs fixed-budget LWS. Two regimes: a hard cell
    // (Neighbors/S — the target is unreachable, the full budget is
    // spent) and an easy cell (Sports/L — the classifier is excellent
    // and the stop rule saves a large share of the budget).
    let easy = build_scenario(cfg, DatasetKind::Sports, SelectivityLevel::L)?;
    println!("   {}", easy.describe());
    let easy_budget = ((easy.problem.n() as f64 * 0.02) as usize).max(60);
    for (sc, col, b) in [
        (&scenario, column, budget),
        (&easy, "Sports/L @2%", easy_budget),
    ] {
        let lws = Lws::default();
        if let Some(cell) = try_cell(sc, &lws, "A4 LWS fixed", col, b, cfg) {
            table.row(cell_row(&cell));
        }
        for target in [0.25f64, 0.10] {
            let est = LwsSequential {
                target_relative_halfwidth: target,
                ..LwsSequential::default()
            };
            let label = format!("A4 LWS-seq ±{:.0}%", target * 100.0);
            if let Some(cell) = try_cell(sc, &est, &label, col, b, cfg) {
                table.row(cell_row(&cell));
            }
        }
    }

    // A5: pilot source — fresh SRS vs reuse of the learning-phase
    // labels (footnote 3). Reuse gives the design |S_L| free labels;
    // the third row additionally shrinks the fresh pilot to spend the
    // savings on stage 2.
    for (label, source, pilot_frac) in [
        ("A5 pilot=fresh", PilotSource::Fresh, 0.3),
        ("A5 pilot=reuse", PilotSource::ReuseLearning, 0.3),
        ("A5 reuse+small-SI", PilotSource::ReuseLearning, 0.15),
    ] {
        let est = Lss {
            pilot_source: source,
            pilot_frac,
            ..Lss::default()
        };
        if let Some(cell) = try_cell(&scenario, &est, label, column, budget, cfg) {
            table.row(cell_row(&cell));
        }
    }

    // A6: Des Raj vs Horvitz–Thompson over the same learned weights, on
    // both the hard and the easy cell.
    for (sc, col, b) in [
        (&scenario, column, budget),
        (&easy, "Sports/L @2%", easy_budget),
    ] {
        if let Some(cell) = try_cell(sc, &Lws::default(), "A6 LWS (Des Raj)", col, b, cfg) {
            table.row(cell_row(&cell));
        }
        if let Some(cell) = try_cell(sc, &LwsHt::default(), "A6 LWS-HT", col, b, cfg) {
            table.row(cell_row(&cell));
        }
    }

    print!("{}", table.render());
    println!(
        "   read: A1 variants should agree (both unbiased); A2/A3 quality should be \
flat (pruning/granularity trade time, not quality); A4 LWS-seq should spend fewer \
evals (see `evals` column) at a modest IQR cost; A5 reuse should match or beat \
fresh at equal budget (free design labels) while staying unbiased; A6 variants \
should agree in the median (both unbiased), with design-dependent IQRs."
    );
    println!("   A2 time ablation: cargo bench -p lts-bench strata_algorithms");
    table
        .write_csv(&cfg.out_dir, "ablations")
        .map_err(|e| lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        })?;
    Ok(())
}
