//! Figure 2: estimate distributions of LWS and LSS against the SRS and
//! SSP (plus SSN) baselines, across sample sizes (1%, 2%) and result
//! sizes (XS, S, L), on both datasets.
//!
//! Expected shape (paper §5.2): LSS and LWS generate estimate
//! distributions with consistently smaller IQRs than SSP and SRS; LWS is
//! more prone to outliers; LSS is the most consistent overall.

use super::{build_scenario, try_cell, FIGURE_LEVELS};
use crate::cli::RunConfig;
use crate::harness::{cell_row, paper_estimators, TextTable, CELL_HEADER};
use lts_core::CoreResult;
use lts_data::DatasetKind;

/// Regenerate Figure 2.
///
/// # Errors
///
/// Propagates scenario-construction errors.
pub fn run(cfg: &RunConfig) -> CoreResult<()> {
    println!("== Figure 2: LWS & LSS vs SRS, SSP, SSN ==");
    let mut table = TextTable::new(&CELL_HEADER);
    let mut cells = Vec::new();
    for dataset in [DatasetKind::Neighbors, DatasetKind::Sports] {
        for level in FIGURE_LEVELS {
            let scenario = build_scenario(cfg, dataset, level)?;
            println!("   {}", scenario.describe());
            for frac in cfg.budget_fractions() {
                let budget = ((scenario.problem.n() as f64 * frac) as usize).max(40);
                let column = format!(
                    "{}/{} @{:.0}%",
                    dataset.label(),
                    level.label(),
                    frac * 100.0
                );
                for (name, est) in paper_estimators(cfg.seed) {
                    if let Some(cell) =
                        try_cell(&scenario, est.as_ref(), &name, &column, budget, cfg)
                    {
                        table.row(cell_row(&cell));
                        cells.push(cell);
                    }
                }
            }
        }
    }
    print!("{}", table.render());
    crate::json::emit_cells_json(&cfg.out_dir, "fig2", &cells);
    table
        .write_csv(&cfg.out_dir, "fig2")
        .map_err(|e| lts_core::CoreError::InvalidConfig {
            message: format!("csv write failed: {e}"),
        })?;
    println!("   expect: LSS lowest IQR nearly everywhere; LWS next; occasional LWS outliers.");
    Ok(())
}
