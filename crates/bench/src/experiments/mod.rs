//! One module per table/figure of the paper's evaluation.
//!
//! Each module exposes `run(cfg) -> CoreResult<()>`, printing the
//! paper-style rows to stdout and dropping a CSV into `cfg.out_dir`.

pub mod ablations;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4_layout;
pub mod fig4_strata;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;

use crate::cli::RunConfig;
use crate::harness::{run_cell, Cell};
use lts_core::estimators::CountEstimator;
use lts_data::{neighbors_scenario, sports_scenario, DatasetKind, Scenario, SelectivityLevel};

/// Build the scenario for a dataset/level under this run configuration.
///
/// # Errors
///
/// Propagates generation errors.
pub fn build_scenario(
    cfg: &RunConfig,
    dataset: DatasetKind,
    level: SelectivityLevel,
) -> lts_core::CoreResult<Scenario> {
    match dataset {
        DatasetKind::Sports => sports_scenario(cfg.sports_rows(), level, cfg.seed),
        DatasetKind::Neighbors => neighbors_scenario(cfg.neighbors_rows(), level, cfg.seed),
    }
}

/// The three result-size columns most figures use (XS, S, L).
pub const FIGURE_LEVELS: [SelectivityLevel; 3] = [
    SelectivityLevel::XS,
    SelectivityLevel::S,
    SelectivityLevel::L,
];

/// Run a cell, degrading gracefully: infeasible configurations (e.g.
/// 100 strata at a tiny scaled-down budget) yield `None` with a notice
/// instead of aborting the whole figure.
pub fn try_cell(
    scenario: &Scenario,
    estimator: &dyn CountEstimator,
    label: &str,
    column: &str,
    budget: usize,
    cfg: &RunConfig,
) -> Option<Cell> {
    match run_cell(scenario, estimator, label, column, budget, cfg) {
        Ok(cell) => Some(cell),
        Err(e) => {
            println!("  [skip] {label} @ {column}: {e}");
            None
        }
    }
}
