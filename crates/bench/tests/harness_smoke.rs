//! Smoke tests for the reproduction harness: every experiment module
//! must run end-to-end at a tiny scale without erroring, so the repro
//! binaries cannot silently rot.

use lts_bench::experiments;
use lts_bench::RunConfig;

fn tiny_cfg(name: &str) -> RunConfig {
    RunConfig {
        trials: 2,
        scale: 0.03, // floors at 2 000 / 2 000 rows
        seed: 11,
        out_dir: std::env::temp_dir()
            .join(format!("lts_smoke_{name}"))
            .to_string_lossy()
            .into_owned(),
        extended: false,
    }
}

#[test]
fn table1_runs() {
    experiments::table1::run(&tiny_cfg("table1")).unwrap();
}

#[test]
fn fig1_runs_and_writes_heatmaps() {
    let cfg = tiny_cfg("fig1");
    experiments::fig1::run(&cfg).unwrap();
    for step in 0..=2 {
        let path = format!("{}/fig1_step{step}.csv", cfg.out_dir);
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.lines().count() > 100, "{path} too small");
    }
}

#[test]
fn fig3_runs() {
    experiments::fig3::run(&tiny_cfg("fig3")).unwrap();
}

#[test]
fn fig4_layout_runs() {
    experiments::fig4_layout::run(&tiny_cfg("fig4l")).unwrap();
}

#[test]
fn ablations_run_and_write_csv() {
    let cfg = tiny_cfg("ablations");
    experiments::ablations::run(&cfg).unwrap();
    let csv = std::fs::read_to_string(format!("{}/ablations.csv", cfg.out_dir)).unwrap();
    assert!(csv.contains("A1 exact-remainder"));
    assert!(csv.contains("A4 LWS-seq"));
}
