//! # learning-to-sample
//!
//! A from-scratch Rust implementation of **“Learning to Sample: Counting
//! with Complex Queries”** (Walenz, Sintos, Roy, Yang — PVLDB 12, 2019).
//!
//! The problem: estimate `C(O, q)` — how many objects of a population
//! satisfy an *expensive* predicate (correlated aggregate subqueries,
//! self-joins with HAVING, user-defined functions) — using as few
//! predicate evaluations as possible, **with confidence intervals**.
//!
//! The paper's idea: train a cheap classifier on a small labeled sample
//! and use its confidence score `g : O → [0, 1]` *to design a sampling
//! scheme* rather than trusting its predictions:
//!
//! * **LWS** (learned weighted sampling) draws objects PPS to
//!   `max(g, ε)` and estimates with the Des Raj ordered estimator;
//! * **LSS** (learned stratified sampling) orders objects by `g`,
//!   jointly optimizes stratum boundaries and sample allocation from a
//!   pilot (algorithms DirSol / LogBdr / DynPgm / DynPgmP, Theorems
//!   1–4), and runs a stratified estimator.
//!
//! Either way the estimates stay unbiased with valid intervals even if
//! the classifier is garbage — a bad `g` only costs efficiency.
//!
//! ## Quick start
//!
//! A compact version of `examples/quickstart.rs` (run that with
//! `cargo run --release --example quickstart`); this block runs as a
//! doctest, so `cargo test` exercises the documented API end to end:
//!
//! ```
//! use learning_to_sample::prelude::*;
//! use std::sync::Arc;
//!
//! // A population of 2-d points with pseudo-random structure.
//! let n = 2_000usize;
//! let mut state = 42u64;
//! let mut next = move || {
//!     state = state
//!         .wrapping_mul(6364136223846793005)
//!         .wrapping_add(1442695040888963407);
//!     (state >> 11) as f64 / (1u64 << 53) as f64
//! };
//! let xs: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
//! let ys: Vec<f64> = (0..n).map(|_| next() * 10.0).collect();
//! let table = Arc::new(lts_table::table_of_floats(&[("x", &xs), ("y", &ys)])?);
//!
//! // The expensive predicate q (the paper's Example 1): "at most 12
//! // points within distance 0.5". Honest evaluation scans neighbours.
//! let q = lts_data::neighborhood::neighbors_fast_predicate(&table, "x", "y", 0.5, 12)?;
//! let problem = CountingProblem::new(Arc::clone(&table), Arc::new(q), &["x", "y"])?;
//!
//! // Ground truth for reference (normally too expensive to compute).
//! let truth = lts_data::neighborhood::exact_neighbors_count(&xs, &ys, 0.5, 12);
//! problem.reset_meter();
//!
//! // Learned stratified sampling under a 5% labeling budget.
//! let budget = n / 20;
//! let lss = Lss { min_pilots_per_stratum: 2, ..Lss::default() };
//! let mut rng = StdRng::seed_from_u64(7);
//! let report = lss.estimate(&problem, budget, &mut rng)?;
//!
//! // The budget is respected (in unique q evaluations) and the
//! // estimate comes with a confidence interval around it.
//! assert!(report.evals <= budget);
//! assert!(report.estimate.interval.lo <= report.count());
//! assert!(report.count() <= report.estimate.interval.hi);
//! println!(
//!     "true {truth}, estimate {:.0} ∈ [{:.0}, {:.0}]",
//!     report.count(), report.estimate.interval.lo, report.estimate.interval.hi,
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`lts_core`] | the estimator suite (SRS, SSP, SSN, QLCC, QLAC, LWS, LWS-HT, LWS-SEQ, LSS), the batched labeling pipeline, the parallel trial runner |
//! | [`lts_strata`] | stratification-design algorithms (§4.2, Theorems 1–4) |
//! | [`lts_sampling`] | SRS / weighted / stratified sampling, Des Raj, Horvitz–Thompson |
//! | [`lts_learn`] | from-scratch kNN, random forest, MLP, logistic, CV, active learning |
//! | [`lts_table`] | mini table engine: correlated aggregate subqueries, metered predicates, vectorized kernels ([`lts_table::vector`]) |
//! | [`lts_stats`] | distributions, confidence intervals, summaries |
//! | [`lts_data`] | synthetic Sports/Neighbors datasets + the paper's two queries |
//! | [`lts_serve`] | the serving layer: query catalog + fingerprints, model store (warm starts), result cache, budget planner, one line protocol behind the `lts-serve` REPL and the `lts-served` TCP server |
//! | [`lts_obs`] | the observability layer: metrics registry, per-phase eval attribution, deterministic per-request trace spans, Prometheus exposition |
//!
//! (`lts-bench`, not re-exported here, holds a repro binary per paper
//! table/figure plus criterion benches and `BENCH_*.json` artifacts.)
//!
//! See `ARCHITECTURE.md` for the crate dataflow, the labeling pipeline,
//! and implementation decisions; `docs/benchmarks.md` for the perf
//! artifact schema. `cargo run --release -p lts-bench --bin repro_all`
//! regenerates every table and figure.

#![warn(missing_docs)]

pub use lts_core as core;
pub use lts_data as data;
pub use lts_learn as learn;
pub use lts_obs as obs;
pub use lts_sampling as sampling;
pub use lts_serve as serve;
pub use lts_stats as stats;
pub use lts_strata as strata;
pub use lts_table as table;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use lts_core::estimators::{
        CountEstimator, Lss, LssLayout, Lws, LwsHt, LwsSequential, PilotHandling, PilotSource,
        Qlac, Qlcc, Srs, Ssn, Ssp,
    };
    pub use lts_core::{
        run_trials, run_trials_with, shard_seed, ClassifierSpec, CountingProblem, EstimateReport,
        LearnPhaseConfig, OrderedPopulation, QualityForecast, ScoredPopulation, ShardPlan,
        ShardedLssWarm, ShardedLwsWarm, TrialExecution, TrialStats,
    };
    pub use lts_obs::{MetricsRegistry, Observability, Trace, TraceEvent};
    pub use lts_sampling::CountEstimate;
    pub use lts_serve::{
        serve_lss_profile, BudgetPlanner, NetConfig, NetServer, Request, Response, Route, Service,
        ServiceConfig, StalenessPolicy, Target,
    };
    pub use lts_stats::{ConfidenceInterval, IntervalKind};
    pub use lts_strata::{Allocation, DesignAlgorithm, TSelection};
    pub use lts_table::{
        parse_condition, Expr, FnPredicate, ObjectPredicate, Table, TableRegistry,
    };
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::prelude::*;
        let _srs = Srs::default();
        let _lss = Lss::default();
        let _spec = ClassifierSpec::default();
    }
}
