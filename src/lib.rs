//! # learning-to-sample
//!
//! A from-scratch Rust implementation of **“Learning to Sample: Counting
//! with Complex Queries”** (Walenz, Sintos, Roy, Yang — PVLDB 12, 2019).
//!
//! The problem: estimate `C(O, q)` — how many objects of a population
//! satisfy an *expensive* predicate (correlated aggregate subqueries,
//! self-joins with HAVING, user-defined functions) — using as few
//! predicate evaluations as possible, **with confidence intervals**.
//!
//! The paper's idea: train a cheap classifier on a small labeled sample
//! and use its confidence score `g : O → [0, 1]` *to design a sampling
//! scheme* rather than trusting its predictions:
//!
//! * **LWS** (learned weighted sampling) draws objects PPS to
//!   `max(g, ε)` and estimates with the Des Raj ordered estimator;
//! * **LSS** (learned stratified sampling) orders objects by `g`,
//!   jointly optimizes stratum boundaries and sample allocation from a
//!   pilot (algorithms DirSol / LogBdr / DynPgm / DynPgmP, Theorems
//!   1–4), and runs a stratified estimator.
//!
//! Either way the estimates stay unbiased with valid intervals even if
//! the classifier is garbage — a bad `g` only costs efficiency.
//!
//! ## Quick start
//!
//! ```
//! use learning_to_sample::prelude::*;
//! use std::sync::Arc;
//!
//! // A population of 2-d points; q(o) = "fewer than 25 points dominate o".
//! let xs: Vec<f64> = (0..600).map(|i| f64::from(i % 53)).collect();
//! let ys: Vec<f64> = (0..600).map(|i| f64::from((i * 7) % 41)).collect();
//! let table = Arc::new(lts_table::table::table_of_floats(&[("x", &xs), ("y", &ys)]).unwrap());
//! let q = lts_data::skyband::skyband_fast_predicate(&table, "x", "y", 25).unwrap();
//! let problem = CountingProblem::new(table, Arc::new(q), &["x", "y"]).unwrap();
//!
//! // Estimate with LSS under a budget of 120 predicate evaluations.
//! let lss = Lss { min_pilots_per_stratum: 2, ..Lss::default() };
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let report = lss.estimate(&problem, 120, &mut rng).unwrap();
//! assert!(report.evals <= 120);
//! println!("count ≈ {:.0} ∈ [{:.0}, {:.0}]",
//!     report.count(), report.estimate.interval.lo, report.estimate.interval.hi);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`lts_core`] | the estimator suite (SRS, SSP, SSN, QLCC, QLAC, LWS, LWS-HT, LSS) |
//! | [`lts_strata`] | stratification-design algorithms (§4.2, Theorems 1–4) |
//! | [`lts_sampling`] | SRS / weighted / stratified sampling, Des Raj, Horvitz–Thompson |
//! | [`lts_learn`] | from-scratch kNN, random forest, MLP, logistic, CV, active learning |
//! | [`lts_table`] | mini table engine with correlated aggregate subqueries |
//! | [`lts_stats`] | distributions, confidence intervals, summaries |
//! | [`lts_data`] | synthetic Sports/Neighbors datasets + the paper's two queries |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record; `cargo run --release -p lts-bench --bin
//! repro_all` regenerates every table and figure.

#![warn(missing_docs)]

pub use lts_core as core;
pub use lts_data as data;
pub use lts_learn as learn;
pub use lts_sampling as sampling;
pub use lts_stats as stats;
pub use lts_strata as strata;
pub use lts_table as table;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use lts_core::estimators::{
        CountEstimator, Lss, LssLayout, Lws, LwsHt, LwsSequential, PilotHandling, PilotSource,
        Qlac, Qlcc, Srs, Ssn, Ssp,
    };
    pub use lts_core::{
        run_trials, run_trials_with, ClassifierSpec, CountingProblem, EstimateReport,
        LearnPhaseConfig, QualityForecast, TrialExecution, TrialStats,
    };
    pub use lts_sampling::CountEstimate;
    pub use lts_stats::{ConfidenceInterval, IntervalKind};
    pub use lts_strata::{Allocation, DesignAlgorithm, TSelection};
    pub use lts_table::{
        parse_condition, Expr, FnPredicate, ObjectPredicate, Table, TableRegistry,
    };
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::prelude::*;
        let _srs = Srs::default();
        let _lss = Lss::default();
        let _spec = ClassifierSpec::default();
    }
}
